//! Unified logging infrastructure — a Rust reproduction of
//! *The Unified Logging Infrastructure for Data Analytics at Twitter*
//! (Lee, Lin, Liu, Lorek, Ryaboy — PVLDB 5(12), 2012).
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Paper § |
//! |---|---|---|
//! | [`thrift`] | `uli-thrift` | Thrift-style serialization (§3) |
//! | [`coord`] | `uli-coord` | ZooKeeper-lite coordination (§2) |
//! | [`scribe`] | `uli-scribe` | Scribe delivery pipeline (§2, Fig. 1) |
//! | [`warehouse`] | `uli-warehouse` | HDFS-lite data warehouse (§2) |
//! | [`dataflow`] | `uli-dataflow` | Pig-like engine + MapReduce cost model (§3) |
//! | [`oink`] | `uli-oink` | Workflow manager + roll-ups (§3, §3.2) |
//! | [`core`] | `uli-core` | Client events + session sequences (§3.2, §4) |
//! | [`analytics`] | `uli-analytics` | Counting, funnels, user modeling (§5) |
//! | [`index`] | `uli-index` | Elephant Twin indexing (§6) |
//! | [`serve`] | `uli-serve` | Interactive serving layer with incremental indexes (§6) |
//! | [`obs`] | `uli-obs` | Deterministic metrics + span tracing across all layers |
//! | [`workload`] | `uli-workload` | Synthetic traffic with ground truth |
//!
//! # Quickstart
//!
//! ```
//! use unified_logging::prelude::*;
//!
//! // 1. Generate a small synthetic day and land it in the warehouse.
//! let wh = Warehouse::new();
//! let config = WorkloadConfig { users: 40, ..Default::default() };
//! let day = generate_day(&config, 0);
//! write_client_events(&wh, &day.events, 4).unwrap();
//!
//! // 2. Materialize session sequences (the §4 pipeline).
//! let report = Materializer::new(wh.clone()).run_day(0).unwrap();
//! assert_eq!(report.sessions, day.truth.sessions);
//!
//! // 3. Ask a question the paper's way: how many profile clicks today?
//! let dict = Materializer::new(wh.clone()).load_dictionary(0).unwrap();
//! let clicks = EventCharSet::expand(
//!     &EventPattern::parse("*:profile_click").unwrap(), &dict);
//! let seqs = load_sequences(&wh, 0).unwrap();
//! let total: u64 = seqs.iter().map(|s| clicks.count_in(&s.sequence)).sum();
//! let truth = day.events.iter()
//!     .filter(|e| e.name.action() == "profile_click").count() as u64;
//! assert_eq!(total, truth);
//! ```

pub use uli_analytics as analytics;
pub use uli_coord as coord;
pub use uli_core as core;
pub use uli_dataflow as dataflow;
pub use uli_index as index;
pub use uli_obs as obs;
pub use uli_oink as oink;
pub use uli_scribe as scribe;
pub use uli_serve as serve;
pub use uli_thrift as thrift;
pub use uli_warehouse as warehouse;
pub use uli_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use uli_analytics::{
        load_sequences, ClientEventsFunnel, CollocationMiner, CountClientEvents, DailySummary,
        EventCharSet, NgramModel,
    };
    pub use uli_core::catalog::ClientEventCatalog;
    pub use uli_core::client_event::{ClientEvent, ClientEventLoader, CLIENT_EVENT_SCHEMA};
    pub use uli_core::event::{EventInitiator, EventName, EventPattern};
    pub use uli_core::session::{
        EventDictionary, Materializer, SessionSequence, SessionSequenceLoader, Sessionizer,
        SESSION_SEQUENCE_SCHEMA,
    };
    pub use uli_core::time::Timestamp;
    pub use uli_dataflow::prelude::*;
    pub use uli_obs::{Registry, Snapshot};
    pub use uli_oink::{compute_rollups, Oink, RollupTable};
    pub use uli_scribe::pipeline::PipelineConfig;
    pub use uli_scribe::{BatchPolicy, LogEntry, PipelineReport, ScribePipeline};
    pub use uli_serve::{IndexMaintainer, ServeHandle};
    pub use uli_warehouse::{Warehouse, WhPath};
    pub use uli_workload::{
        generate_day, signup_funnel, write_client_events, write_legacy_events, WorkloadConfig,
    };
}
