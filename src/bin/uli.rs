//! `uli` — explore the unified logging stack from the command line.
//!
//! The warehouse is in-memory, so every invocation generates a fresh
//! deterministic workload (fixed seed unless `--seed` is given), lands it,
//! materializes session sequences, and then runs the requested view:
//!
//! ```text
//! uli demo                         end-to-end day summary
//! uli script FILE [--param K=V]    run a Pig script against the day
//! uli catalog [--search PATTERN] [--browse C[:P[:S…]]]
//! uli flow [--depth N]             LifeFlow-style session overview
//! uli funnel                       signup funnel vs ground truth
//! uli scrape                       §3.1 legacy-JSON format archaeology
//! uli grammar                      §6 Re-Pair motifs over sessions
//! uli ingest                       drive a day through the Scribe tier
//! uli serve                        land a day columnar, index it, answer
//!                                  point lookups from stdin (REPL)
//! ```
//!
//! Common flags: `--users N` (default 300), `--seed S`, `--days D`,
//! `--workers W` (scan/execute worker threads; default: all cores, `1`
//! restores the serial path — results are identical either way),
//! `--no-pushdown` (disable projection/predicate pushdown and zone-map
//! pruning in `script` queries; results are identical, only the amount of
//! decode work changes), `--mem-budget BYTES` (cap `script` operator memory:
//! sorts and group-bys spill warehouse-format runs past the budget — results
//! are identical at any budget, and the spill counters/high-water gauge land
//! in `--metrics`), `--metrics PATH` (write the unified observability
//! snapshot — warehouse/dataflow counters, span forest, critical path — on
//! exit; `.prom` extension selects Prometheus text, anything else JSON).
//!
//! `ingest` flags: `--batch-records N` (entries per Scribe message, default
//! 32; `1` restores one message per entry), `--batch-bytes B` (encoded-batch
//! byte cap, default 32768), `--linger P` (pumps a partial batch may wait
//! for more entries, default 0). The landed warehouse bytes are identical
//! at every setting; only the message/allocation cost changes.

use std::process::ExitCode;

use unified_logging::analytics::{register_analytics, LifeFlow};
use unified_logging::prelude::*;
use unified_logging::thrift::ThriftRecord;

struct Cli {
    command: String,
    positional: Vec<String>,
    users: u64,
    seed: u64,
    days: u64,
    workers: Option<usize>,
    pushdown: bool,
    depth: usize,
    search: Option<String>,
    browse: Option<String>,
    params: Vec<(String, String)>,
    metrics: Option<String>,
    mem_budget: Option<u64>,
    batch_records: Option<usize>,
    batch_bytes: Option<usize>,
    linger: u64,
    /// Present when `--metrics` was given; threaded through the warehouse
    /// and the script engine so every scan lands in one snapshot.
    registry: Option<Registry>,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("no command given")?;
    let mut cli = Cli {
        command,
        positional: Vec::new(),
        users: 300,
        seed: 0x7717_7e4a,
        days: 1,
        workers: None,
        pushdown: true,
        depth: 3,
        search: None,
        browse: None,
        params: Vec::new(),
        metrics: None,
        mem_budget: None,
        batch_records: None,
        batch_bytes: None,
        linger: 0,
        registry: None,
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--users" => cli.users = value("--users")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cli.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--days" => cli.days = value("--days")?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => {
                cli.workers = Some(value("--workers")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--no-pushdown" => cli.pushdown = false,
            "--metrics" => cli.metrics = Some(value("--metrics")?),
            "--mem-budget" => {
                let budget: u64 = value("--mem-budget")?.parse().map_err(|e| format!("{e}"))?;
                if budget == 0 {
                    return Err("--mem-budget needs a positive byte count".into());
                }
                cli.mem_budget = Some(budget);
            }
            "--batch-records" => {
                cli.batch_records = Some(
                    value("--batch-records")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--batch-bytes" => {
                cli.batch_bytes = Some(
                    value("--batch-bytes")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--linger" => cli.linger = value("--linger")?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => cli.depth = value("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--search" => cli.search = Some(value("--search")?),
            "--browse" => cli.browse = Some(value("--browse")?),
            "--param" => {
                let kv = value("--param")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or("--param expects KEY=VALUE".to_string())?;
                cli.params.push((k.to_string(), v.to_string()));
            }
            other if !other.starts_with("--") => cli.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cli)
}

/// The scan/execute worker count the user asked for (default: all cores).
fn parallelism(cli: &Cli) -> Parallelism {
    cli.workers.map(Parallelism::fixed).unwrap_or_default()
}

/// Generates and materializes the requested days; returns the warehouse and
/// ground truths.
fn prepare(cli: &Cli) -> (Warehouse, Vec<unified_logging::workload::DayWorkload>) {
    let config = WorkloadConfig {
        users: cli.users,
        seed: cli.seed,
        ..Default::default()
    };
    let wh = match &cli.registry {
        Some(registry) => Warehouse::new_with_obs(registry),
        None => Warehouse::new(),
    };
    let mut days = Vec::new();
    for d in 0..cli.days {
        let day = generate_day(&config, d);
        write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
        Materializer::new(wh.clone())
            .with_parallelism(parallelism(cli))
            .run_day(d)
            .expect("day exists");
        days.push(day);
    }
    (wh, days)
}

fn cmd_demo(cli: &Cli) {
    let (wh, days) = prepare(cli);
    for d in 0..cli.days {
        let m = Materializer::new(wh.clone());
        let dict = m.load_dictionary(d).expect("materialized");
        let seqs = load_sequences(&wh, d).expect("materialized");
        let summary = unified_logging::analytics::DailySummary::compute(d, &seqs, &dict);
        println!("{}", summary.render());
        let truth = &days[d as usize].truth;
        println!(
            "(generator truth: {} sessions, {} events — matches: {})\n",
            truth.sessions,
            truth.events,
            truth.sessions == summary.sessions && truth.events == summary.events
        );
    }
}

fn cmd_script(cli: &Cli) -> Result<(), String> {
    let path = cli
        .positional
        .first()
        .ok_or("usage: uli script FILE.pig [--param K=V …]")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (wh, _days) = prepare(cli);
    let dict = Materializer::new(wh.clone())
        .load_dictionary(0)
        .expect("materialized");
    let pushdown = if cli.pushdown {
        Pushdown::default()
    } else {
        Pushdown::disabled()
    };
    let mut engine = Engine::new(wh)
        .with_parallelism(parallelism(cli))
        .with_pushdown(pushdown);
    if let Some(budget) = cli.mem_budget {
        engine = engine.with_mem_budget(budget);
    }
    if let Some(registry) = &cli.registry {
        engine = engine.with_obs(registry);
    }
    let mut runner = ScriptRunner::new(engine);
    register_analytics(&mut runner, dict);
    runner.set_param("DATE", "2012/08/01");
    for (k, v) in &cli.params {
        runner.set_param(k, v);
    }
    let outputs = runner.run(&source).map_err(|e| e.to_string())?;
    for out in outputs {
        println!(
            "-- dump {} ({} rows) --",
            out.relation,
            out.result.rows.len()
        );
        for row in out.result.rows.iter().take(50) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("({})", cells.join(", "));
        }
        if out.result.rows.len() > 50 {
            println!("… {} more rows", out.result.rows.len() - 50);
        }
        println!(
            "[{} mr jobs, {} mappers, {} records scanned, est. cluster {:.2}s]\n",
            out.result.stats.mr_jobs,
            out.result.stats.map_tasks,
            out.result.stats.input_records,
            out.result.estimated_cluster_ms / 1000.0
        );
    }
    Ok(())
}

fn cmd_catalog(cli: &Cli) -> Result<(), String> {
    let (wh, _days) = prepare(cli);
    let m = Materializer::new(wh);
    let dict = m.load_dictionary(0).expect("materialized");
    let samples = m.load_samples(0).expect("materialized");
    let catalog = ClientEventCatalog::build(0, &dict, &samples);
    println!("catalog: {} event types\n", catalog.len());
    if let Some(pattern) = &cli.search {
        let p = EventPattern::parse(pattern).map_err(|e| e.to_string())?;
        let hits = catalog.search(&p);
        println!("{} matches for {pattern}:", hits.len());
        for e in hits.iter().take(30) {
            println!("  {:<60} {:>8}", e.name.to_string(), e.count);
        }
        return Ok(());
    }
    let prefix: Vec<&str> = match &cli.browse {
        Some(b) => b.split(':').collect(),
        None => Vec::new(),
    };
    println!("browse {:?}:", prefix);
    for (value, count) in catalog.browse(&prefix) {
        println!("  {value:<24} {count:>8}");
    }
    Ok(())
}

fn cmd_flow(cli: &Cli) {
    let (wh, _days) = prepare(cli);
    let m = Materializer::new(wh.clone());
    let dict = m.load_dictionary(0).expect("materialized");
    let seqs = load_sequences(&wh, 0).expect("materialized");
    let mut flow = LifeFlow::new(cli.depth);
    for s in &seqs {
        flow.add_string(&s.sequence);
    }
    print!("{}", flow.render(&dict, 0.03));
}

fn cmd_funnel(cli: &Cli) {
    let (wh, days) = prepare(cli);
    let m = Materializer::new(wh.clone());
    let dict = m.load_dictionary(0).expect("materialized");
    let seqs = load_sequences(&wh, 0).expect("materialized");
    let spec = signup_funnel();
    let funnel = ClientEventsFunnel::new(spec.stages.clone(), &dict);
    let report = funnel.evaluate(seqs.iter().map(|s| s.sequence.as_str()));
    println!("signup funnel (stage, sessions) — truth in parentheses:");
    for (i, count) in report.reached.iter().enumerate() {
        println!("({i}, {count})  ({})", days[0].truth.funnel_stage_counts[i]);
    }
    println!("conversion: {:.1}%", report.conversion() * 100.0);
}

fn cmd_scrape(cli: &Cli) {
    use unified_logging::core::legacy::LegacyCategory;
    use unified_logging::core::scrape::FormatScrape;
    use unified_logging::core::session::day_dir;
    let config = WorkloadConfig {
        users: cli.users,
        seed: cli.seed,
        ..Default::default()
    };
    let day = generate_day(&config, 0);
    let wh = Warehouse::new();
    write_legacy_events(&wh, &day.events, 4).expect("fresh warehouse");
    let dir = day_dir(LegacyCategory::WebFrontend.category_name(), 0);
    let mut scraper = FormatScrape::new();
    for file in wh.list_files_recursive(&dir).expect("written") {
        let mut r = wh.open(&file).expect("opens");
        while let Some(rec) = r.next_record().expect("reads") {
            scraper.scan(rec);
        }
    }
    print!("{}", scraper.render());
    println!("optional (<95%): {:?}", scraper.optional_keys(0.95));
    println!("type-inconsistent: {:?}", scraper.inconsistent_keys());
}

fn cmd_grammar(cli: &Cli) {
    use unified_logging::analytics::Grammar;
    use unified_logging::core::session::dictionary::rank_for_char;
    let (wh, _days) = prepare(cli);
    let m = Materializer::new(wh.clone());
    let dict = m.load_dictionary(0).expect("materialized");
    let seqs = load_sequences(&wh, 0).expect("materialized");
    let corpus: Vec<Vec<u32>> = seqs
        .iter()
        .map(|s| s.sequence.chars().filter_map(rank_for_char).collect())
        .collect();
    let grammar = Grammar::induce(&corpus, 8);
    println!(
        "{} rules; corpus compresses {:.2}x under the grammar\n",
        grammar.rule_count(),
        grammar.compression_ratio()
    );
    for (idx, support, _) in grammar.top_motifs(cli.depth) {
        println!("motif R{idx} (supports {support} occurrences):");
        print!(
            "{}",
            grammar.render_tree(
                unified_logging::analytics::grammar::NONTERMINAL_BASE + idx as u32,
                &dict
            )
        );
        println!();
    }
}

/// Writes the observability snapshot where `--metrics` asked for it.
/// A `.prom` extension selects the Prometheus text format; everything else
/// gets the JSON snapshot (metrics, span forest, critical path).
fn write_metrics(path: &str, registry: &Registry) -> Result<(), String> {
    let snap = registry.snapshot();
    let payload = if path.ends_with(".prom") {
        snap.to_prometheus()
    } else {
        snap.to_json()
    };
    std::fs::write(path, payload).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote metrics snapshot to {path}");
    Ok(())
}

/// The batch policy the `ingest` knobs select (defaults when omitted).
fn batch_policy(cli: &Cli) -> BatchPolicy {
    let mut policy = BatchPolicy::default();
    if let Some(n) = cli.batch_records {
        policy.max_records = n.max(1);
    }
    if let Some(b) = cli.batch_bytes {
        policy.max_bytes = b.max(1);
    }
    policy.linger_steps = cli.linger;
    policy
}

/// Drives the requested days through the Scribe delivery tier — daemons,
/// aggregators, staging, the hourly mover — and prints the ingest cost
/// accounting under the chosen batch policy.
fn cmd_ingest(cli: &Cli) {
    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        batch: batch_policy(cli),
        workers: parallelism(cli),
    };
    let workload = WorkloadConfig {
        users: cli.users,
        seed: cli.seed,
        ..Default::default()
    };
    let mut pipe = match &cli.registry {
        Some(registry) => ScribePipeline::new_with_obs(config, registry),
        None => ScribePipeline::new(config),
    };
    for d in 0..cli.days {
        let day = generate_day(&workload, d);
        for hour in d * 24..(d + 1) * 24 {
            for (i, ev) in day
                .events
                .iter()
                .filter(|e| e.timestamp.hour_index() == hour)
                .enumerate()
            {
                let dc = (ev.user_id as usize) % config.datacenters;
                pipe.log(
                    dc,
                    i % config.hosts_per_dc,
                    LogEntry::new("client_events", ev.to_bytes()),
                );
            }
            pipe.step();
            pipe.flush_hour(hour);
            pipe.seal_hour("client_events", hour);
            pipe.move_hour("client_events", hour)
                .expect("fault-free ingest: every hour moves");
        }
    }
    let report = pipe.report();
    let (messages, wire_bytes) = pipe.network().message_cost();
    let policy = batch_policy(cli);
    println!(
        "ingest: {} day(s), batch policy: {} records / {} bytes / linger {}",
        cli.days, policy.max_records, policy.max_bytes, policy.linger_steps
    );
    println!(
        "  logged {} -> moved {} (retried {}, lost {})",
        report.logged, report.moved, report.retried, report.lost_in_crashes
    );
    println!(
        "  network messages {}  wire bytes {}  batches {}  avg {:.1} entries/batch",
        messages,
        wire_bytes,
        report.batches_sent,
        report.logged as f64 / report.batches_sent.max(1) as f64
    );
}

/// Lands the requested days through the Scribe tier with a columnar
/// landing and the serving layer's index maintainer tapped at the mover's
/// delivery point, then answers point lookups from stdin until EOF.
fn cmd_serve(cli: &Cli) -> Result<(), String> {
    use std::sync::Arc;
    use unified_logging::core::ClientEventLanding;
    use unified_logging::serve::{run_repl, IndexMaintainer};

    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        batch: batch_policy(cli),
        workers: parallelism(cli),
    };
    let workload = WorkloadConfig {
        users: cli.users,
        seed: cli.seed,
        ..Default::default()
    };
    let mut pipe = match &cli.registry {
        Some(registry) => ScribePipeline::new_with_obs(config, registry),
        None => ScribePipeline::new(config),
    };
    pipe.set_columnar_landing(Arc::new(ClientEventLanding::default()));
    let maintainer = match &cli.registry {
        Some(registry) => {
            IndexMaintainer::with_obs(pipe.main_warehouse().clone(), "client_events", registry)
        }
        None => IndexMaintainer::new(pipe.main_warehouse().clone(), "client_events"),
    }
    .with_parallelism(parallelism(cli));
    pipe.add_delivery_tap(maintainer.tap());
    for d in 0..cli.days {
        let day = generate_day(&workload, d);
        for hour in d * 24..(d + 1) * 24 {
            for (i, ev) in day
                .events
                .iter()
                .filter(|e| e.timestamp.hour_index() == hour)
                .enumerate()
            {
                let dc = (ev.user_id as usize) % config.datacenters;
                pipe.log(
                    dc,
                    i % config.hosts_per_dc,
                    LogEntry::new("client_events", ev.to_bytes()),
                );
            }
            pipe.step();
            pipe.flush_hour(hour);
            pipe.seal_hour("client_events", hour);
            pipe.move_hour("client_events", hour)
                .expect("fault-free ingest: every hour moves");
        }
    }
    let handle = maintainer.handle();
    eprintln!(
        "serve: {} day(s) delivered and indexed ({} hours, lag {}); try `help`",
        cli.days,
        handle.indexed_hours().len(),
        handle.lag_hours()
    );
    let stdin = std::io::stdin();
    run_repl(&handle, stdin.lock(), std::io::stdout()).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let mut cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\nsee the module docs at the top of src/bin/uli.rs");
            return ExitCode::FAILURE;
        }
    };
    if cli.metrics.is_some() {
        cli.registry = Some(Registry::new());
    }
    let result = match cli.command.as_str() {
        "demo" => {
            cmd_demo(&cli);
            Ok(())
        }
        "script" => cmd_script(&cli),
        "catalog" => cmd_catalog(&cli),
        "flow" => {
            cmd_flow(&cli);
            Ok(())
        }
        "funnel" => {
            cmd_funnel(&cli);
            Ok(())
        }
        "scrape" => {
            cmd_scrape(&cli);
            Ok(())
        }
        "grammar" => {
            cmd_grammar(&cli);
            Ok(())
        }
        "ingest" => {
            cmd_ingest(&cli);
            Ok(())
        }
        "serve" => cmd_serve(&cli),
        other => Err(format!(
            "unknown command {other:?}; commands: demo, script, catalog, flow, funnel, scrape, \
             grammar, ingest, serve"
        )),
    };
    let result = result.and_then(|()| match (&cli.metrics, &cli.registry) {
        (Some(path), Some(registry)) => write_metrics(path, registry),
        _ => Ok(()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
