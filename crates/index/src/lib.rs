//! Elephant Twin-style indexing (§6).
//!
//! "To complement session sequences, we have recently deployed into
//! production a generic indexing infrastructure for handling
//! highly-selective queries called Elephant Twin … Our Elephant Twin
//! indexing framework integrates with Hadoop at the level of InputFormats,
//! which means that applications and frameworks higher up the Hadoop stack
//! can transparently take advantage of indexes 'for free' … Our indexes
//! reside alongside the data (in contrast to Trojan layouts), and therefore
//! re-indexing large amounts of data is feasible … we drop all indexes and
//! rebuild from scratch."
//!
//! The index maps each event name to the set of *blocks* that contain it,
//! per file. At scan time a [`uli_dataflow::BlockPruner`] intersects the
//! query's event pattern with the index and skips every block that cannot
//! match — splits the "InputFormat" never materializes, so mappers are
//! never spawned for them.

pub mod builder;
pub mod inverted;
pub mod pruner;

pub use builder::{build_client_event_index, drop_index, index_dir, load_index};
pub use inverted::{EventBlockIndex, FileIndex};
pub use pruner::EventIndexPruner;
