//! The inverted block index structure.

use std::collections::BTreeMap;

use uli_core::event::{EventName, EventPattern};

/// Per-file postings: event name → bitmap over the file's blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileIndex {
    /// Number of blocks in the indexed file.
    pub blocks: usize,
    /// name → bitmap words (little-endian bit order: block b lives in word
    /// b/64, bit b%64).
    postings: BTreeMap<EventName, Vec<u64>>,
}

impl FileIndex {
    /// An empty index for a file of `blocks` blocks.
    pub fn new(blocks: usize) -> FileIndex {
        FileIndex {
            blocks,
            postings: BTreeMap::new(),
        }
    }

    fn words(blocks: usize) -> usize {
        blocks.div_ceil(64)
    }

    /// Records that `name` occurs in `block`.
    pub fn insert(&mut self, name: &EventName, block: usize) {
        assert!(block < self.blocks, "block {block} out of {}", self.blocks);
        let words = Self::words(self.blocks);
        let bitmap = self
            .postings
            .entry(name.clone())
            .or_insert_with(|| vec![0; words]);
        bitmap[block / 64] |= 1 << (block % 64);
    }

    /// Keep-mask over blocks for any event matching `pattern`: the union of
    /// matching postings. `None` when no posting matches (scan nothing).
    pub fn blocks_for(&self, pattern: &EventPattern) -> Vec<bool> {
        let words = Self::words(self.blocks);
        let mut acc = vec![0u64; words];
        for (name, bitmap) in &self.postings {
            if pattern.matches(name) {
                for (a, b) in acc.iter_mut().zip(bitmap) {
                    *a |= b;
                }
            }
        }
        (0..self.blocks)
            .map(|b| acc[b / 64] & (1 << (b % 64)) != 0)
            .collect()
    }

    /// Distinct names indexed.
    pub fn name_count(&self) -> usize {
        self.postings.len()
    }

    /// Iterates `(name, blocks-containing)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&EventName, Vec<usize>)> {
        self.postings.iter().map(move |(name, bitmap)| {
            let blocks: Vec<usize> = (0..self.blocks)
                .filter(|b| bitmap[b / 64] & (1 << (b % 64)) != 0)
                .collect();
            (name, blocks)
        })
    }
}

/// Index over every file of a data directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBlockIndex {
    files: BTreeMap<String, FileIndex>,
}

impl EventBlockIndex {
    /// An empty directory index.
    pub fn new() -> EventBlockIndex {
        EventBlockIndex::default()
    }

    /// Adds (or replaces) a file's index.
    pub fn insert_file(&mut self, path: impl Into<String>, index: FileIndex) {
        self.files.insert(path.into(), index);
    }

    /// The index of one file, if present.
    pub fn file(&self, path: &str) -> Option<&FileIndex> {
        self.files.get(path)
    }

    /// Number of indexed files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates `(path, index)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FileIndex)> {
        self.files.iter().map(|(p, i)| (p.as_str(), i))
    }

    /// Serializes to warehouse records: `file\tblocks\tname\tb1,b2,…`.
    pub fn to_records(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (path, fi) in &self.files {
            // A header record per file preserves block counts even for
            // files with no postings.
            out.push(format!("F\t{path}\t{}", fi.blocks).into_bytes());
            for (name, blocks) in fi.iter() {
                let list: Vec<String> = blocks.iter().map(|b| b.to_string()).collect();
                out.push(format!("P\t{path}\t{name}\t{}", list.join(",")).into_bytes());
            }
        }
        out
    }

    /// Parses records from [`to_records`](Self::to_records); malformed
    /// records are skipped.
    pub fn from_records<I: IntoIterator<Item = Vec<u8>>>(records: I) -> EventBlockIndex {
        let mut idx = EventBlockIndex::new();
        for rec in records {
            let Ok(text) = String::from_utf8(rec) else {
                continue;
            };
            let parts: Vec<&str> = text.split('\t').collect();
            match parts.as_slice() {
                ["F", path, blocks] => {
                    if let Ok(blocks) = blocks.parse() {
                        idx.insert_file(*path, FileIndex::new(blocks));
                    }
                }
                ["P", path, name, list] => {
                    let Ok(name) = EventName::parse(name) else {
                        continue;
                    };
                    if let Some(fi) = idx.files.get_mut(*path) {
                        for b in list.split(',').filter_map(|b| b.parse::<usize>().ok()) {
                            if b < fi.blocks {
                                fi.insert(&name, b);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    #[test]
    fn insert_and_query_bitmaps() {
        let mut fi = FileIndex::new(130); // forces multiple words
        let click = n("web:a:b:c:d:click");
        let imp = n("web:a:b:c:d:impression");
        fi.insert(&click, 0);
        fi.insert(&click, 129);
        fi.insert(&imp, 64);
        let mask = fi.blocks_for(&EventPattern::parse("*:click").unwrap());
        assert!(mask[0] && mask[129]);
        assert!(!mask[64] && !mask[1]);
        assert_eq!(mask.iter().filter(|b| **b).count(), 2);

        // Union across names.
        let all = fi.blocks_for(&EventPattern::any());
        assert_eq!(all.iter().filter(|b| **b).count(), 3);

        // No match → all-false mask (scan nothing).
        let none = fi.blocks_for(&EventPattern::parse("*:retweet").unwrap());
        assert!(none.iter().all(|b| !b));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_block_panics() {
        let mut fi = FileIndex::new(4);
        fi.insert(&n("web:a:b:c:d:x"), 4);
    }

    #[test]
    fn directory_index_round_trips_through_records() {
        let mut idx = EventBlockIndex::new();
        let mut f1 = FileIndex::new(8);
        f1.insert(&n("web:a:b:c:d:click"), 3);
        f1.insert(&n("web:a:b:c:d:impression"), 0);
        idx.insert_file("/logs/ce/h0/part-0", f1);
        idx.insert_file("/logs/ce/h0/part-1", FileIndex::new(2)); // no postings

        let back = EventBlockIndex::from_records(idx.to_records());
        assert_eq!(back, idx);
        assert_eq!(back.len(), 2);
        assert_eq!(back.file("/logs/ce/h0/part-1").unwrap().blocks, 2);
    }

    #[test]
    fn malformed_records_are_skipped() {
        let idx = EventBlockIndex::from_records(vec![
            b"garbage".to_vec(),
            b"P\t/f\tbad name\t0".to_vec(),
            b"F\t/f\tnot_a_number".to_vec(),
            vec![0xff],
        ]);
        assert!(idx.is_empty());
    }
}
