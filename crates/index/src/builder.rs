//! Index build, persist, drop, rebuild.
//!
//! Indexes "reside alongside the data": the index of `/logs/client_events/…`
//! lives under `/index/logs/client_events/…`, so re-indexing never rewrites
//! the data files (the explicit contrast with Trojan layouts, §6).

use uli_core::client_event::ClientEvent;
use uli_thrift::ThriftRecord;
use uli_warehouse::{Warehouse, WarehouseResult, WhPath};

use crate::inverted::{EventBlockIndex, FileIndex};

/// Where the index for `data_dir` lives.
pub fn index_dir(data_dir: &WhPath) -> WhPath {
    WhPath::parse(&format!("/index{}", data_dir.as_str())).expect("prefixing keeps paths valid")
}

/// Scans every client event file under `data_dir` and builds the
/// name→blocks index, persisting it alongside the data. Any previous index
/// is replaced (the paper's drop-and-rebuild workflow).
pub fn build_client_event_index(
    warehouse: &Warehouse,
    data_dir: &WhPath,
) -> WarehouseResult<EventBlockIndex> {
    let mut index = EventBlockIndex::new();
    for file in warehouse.list_files_recursive(data_dir)? {
        let mut reader = warehouse.open(&file)?;
        let mut fi = FileIndex::new(reader.block_count());
        while let Some(record) = reader.next_record()? {
            // Decode before asking for the block so the record borrow ends.
            let parsed = ClientEvent::from_bytes(record);
            let block = reader.current_block().expect("a record implies a block");
            if let Ok(ev) = parsed {
                fi.insert(&ev.name, block);
            }
        }
        index.insert_file(file.as_str(), fi);
    }
    let dir = index_dir(data_dir);
    if warehouse.exists(&dir) {
        warehouse.delete_dir(&dir)?;
    }
    let mut w = warehouse.create(&dir.child("postings").expect("valid name"))?;
    for rec in index.to_records() {
        w.append_record(&rec);
    }
    w.finish()?;
    Ok(index)
}

/// Loads a persisted index for `data_dir`, if one exists.
pub fn load_index(warehouse: &Warehouse, data_dir: &WhPath) -> WarehouseResult<EventBlockIndex> {
    let file = index_dir(data_dir).child("postings").expect("valid name");
    let records = warehouse.open(&file)?.read_all()?;
    Ok(EventBlockIndex::from_records(records))
}

/// Drops the index of `data_dir` — step one of "we drop all indexes and
/// rebuild from scratch". Succeeds silently if there is none.
pub fn drop_index(warehouse: &Warehouse, data_dir: &WhPath) -> WarehouseResult<()> {
    let dir = index_dir(data_dir);
    if warehouse.exists(&dir) {
        warehouse.delete_dir(&dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::event::{EventInitiator, EventName, EventPattern};
    use uli_core::time::Timestamp;

    fn write_events(wh: &Warehouse, dir: &WhPath, per_action: usize) {
        // Write rare "follow" events clustered at the END so the early
        // blocks are skippable for a follow query.
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        for i in 0..per_action * 3 {
            let action = if i >= per_action * 3 - 5 {
                "follow"
            } else {
                "impression"
            };
            let ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap(),
                i as i64,
                format!("s-{i}"),
                "10.0.0.1",
                Timestamp(i as i64),
            )
            .with_detail("pad", "x".repeat(50));
            w.append_record(&ev.to_bytes());
        }
        w.finish().unwrap();
    }

    #[test]
    fn build_persist_load_round_trip() {
        let wh = Warehouse::with_block_capacity(2048);
        let dir = WhPath::parse("/logs/client_events/2012/08/01/00").unwrap();
        write_events(&wh, &dir, 100);
        let built = build_client_event_index(&wh, &dir).unwrap();
        assert_eq!(built.len(), 1);
        let loaded = load_index(&wh, &dir).unwrap();
        assert_eq!(loaded, built);
        // The index lives alongside, not inside, the data.
        assert!(wh.exists(&WhPath::parse("/index/logs/client_events/2012/08/01/00").unwrap()));
    }

    #[test]
    fn rare_events_map_to_few_blocks() {
        let wh = Warehouse::with_block_capacity(2048);
        let dir = WhPath::parse("/data").unwrap();
        write_events(&wh, &dir, 200);
        let idx = build_client_event_index(&wh, &dir).unwrap();
        let fi = idx.file("/data/part-0").unwrap();
        assert!(fi.blocks > 4, "need multiple blocks, got {}", fi.blocks);
        let follow_mask = fi.blocks_for(&EventPattern::parse("*:follow").unwrap());
        let follow_blocks = follow_mask.iter().filter(|b| **b).count();
        assert!(
            follow_blocks * 2 < fi.blocks,
            "follows cluster at the end: {follow_blocks}/{}",
            fi.blocks
        );
        let imp_mask = fi.blocks_for(&EventPattern::parse("*:impression").unwrap());
        assert!(imp_mask.iter().filter(|b| **b).count() >= fi.blocks - 1);
    }

    #[test]
    fn rebuild_replaces_and_drop_removes() {
        let wh = Warehouse::with_block_capacity(2048);
        let dir = WhPath::parse("/data").unwrap();
        write_events(&wh, &dir, 50);
        build_client_event_index(&wh, &dir).unwrap();
        // Rebuild from scratch succeeds (old files replaced).
        let again = build_client_event_index(&wh, &dir).unwrap();
        assert_eq!(again.len(), 1);
        drop_index(&wh, &dir).unwrap();
        assert!(load_index(&wh, &dir).is_err());
        // Dropping twice is fine.
        drop_index(&wh, &dir).unwrap();
    }
}
