//! The scan-time integration: a [`BlockPruner`] for the dataflow engine.

use std::sync::Arc;

use uli_core::event::EventPattern;
use uli_dataflow::BlockPruner;
use uli_warehouse::{Warehouse, WhPath};

use crate::inverted::EventBlockIndex;

/// Prunes blocks that cannot contain events matching a pattern.
///
/// Attach with [`uli_dataflow::Plan::with_pruner`]; the engine consults it
/// per file before decompressing anything — the "InputFormat level"
/// integration that lets queries benefit "for free" (§6).
pub struct EventIndexPruner {
    index: Arc<EventBlockIndex>,
    pattern: EventPattern,
}

impl EventIndexPruner {
    /// A pruner for `pattern` backed by `index`.
    pub fn new(index: Arc<EventBlockIndex>, pattern: EventPattern) -> Arc<EventIndexPruner> {
        Arc::new(EventIndexPruner { index, pattern })
    }
}

impl BlockPruner for EventIndexPruner {
    fn prune(
        &self,
        _warehouse: &Warehouse,
        file: &WhPath,
        block_count: usize,
    ) -> Option<Vec<bool>> {
        let fi = self.index.file(file.as_str())?;
        if fi.blocks != block_count {
            // The file changed since indexing; fail open and scan it all.
            return None;
        }
        Some(fi.blocks_for(&self.pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_client_event_index;
    use uli_core::client_event::{ClientEvent, ClientEventLoader, CLIENT_EVENT_SCHEMA};
    use uli_core::event::{EventInitiator, EventName};
    use uli_core::time::Timestamp;
    use uli_dataflow::prelude::*;
    use uli_thrift::ThriftRecord;

    fn setup() -> (Warehouse, WhPath) {
        let wh = Warehouse::with_block_capacity(2048);
        let dir = WhPath::parse("/logs/ce").unwrap();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        for i in 0..400usize {
            let action = if i % 100 == 99 {
                "follow"
            } else {
                "impression"
            };
            let ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap(),
                i as i64,
                format!("s-{i}"),
                "10.0.0.1",
                Timestamp(i as i64),
            )
            .with_detail("pad", "y".repeat(60));
            w.append_record(&ev.to_bytes());
        }
        w.finish().unwrap();
        (wh, dir)
    }

    fn count_follows(
        wh: &Warehouse,
        dir: &WhPath,
        pruner: Option<Arc<EventIndexPruner>>,
    ) -> (i64, JobStats) {
        let mut plan = Plan::load(
            dir.clone(),
            Arc::new(ClientEventLoader),
            CLIENT_EVENT_SCHEMA.to_vec(),
        );
        if let Some(p) = pruner {
            plan = plan.with_pruner(p);
        }
        let plan = plan
            .filter(Expr::col(1).eq(Expr::lit("web:home:home:stream:tweet:follow")))
            .aggregate(vec![Agg::count()]);
        let engine = Engine::new(wh.clone());
        let r = engine.run(&plan).unwrap();
        (r.rows[0][0].as_int().unwrap(), r.stats)
    }

    #[test]
    fn pruned_scan_reads_fewer_blocks_same_answer() {
        let (wh, dir) = setup();
        let index = Arc::new(build_client_event_index(&wh, &dir).unwrap());
        let (full_count, full_stats) = count_follows(&wh, &dir, None);
        assert_eq!(full_count, 4);

        let pruner = EventIndexPruner::new(index, EventPattern::parse("*:follow").unwrap());
        let (pruned_count, pruned_stats) = count_follows(&wh, &dir, Some(pruner));
        assert_eq!(pruned_count, full_count, "pruning must not change results");
        assert!(
            pruned_stats.input_blocks < full_stats.input_blocks,
            "index must skip blocks: {} vs {}",
            pruned_stats.input_blocks,
            full_stats.input_blocks
        );
        assert!(pruned_stats.blocks_skipped > 0);
        assert!(pruned_stats.map_tasks < full_stats.map_tasks);
    }

    #[test]
    fn unindexed_file_fails_open() {
        let (wh, dir) = setup();
        // An index built over a *different* directory knows nothing here.
        let other = WhPath::parse("/elsewhere").unwrap();
        wh.mkdirs(&other).unwrap();
        let empty = Arc::new(EventBlockIndex::new());
        let pruner = EventIndexPruner::new(empty, EventPattern::parse("*:follow").unwrap());
        let (count, stats) = count_follows(&wh, &dir, Some(pruner));
        assert_eq!(count, 4);
        assert_eq!(stats.blocks_skipped, 0, "fail open: no skipping");
    }

    #[test]
    fn stale_index_fails_open() {
        let (wh, dir) = setup();
        let index = build_client_event_index(&wh, &dir).unwrap();
        // Tamper: pretend the file had a different block count.
        let mut stale = EventBlockIndex::new();
        for (path, _fi) in index.iter() {
            stale.insert_file(path, crate::inverted::FileIndex::new(1));
        }
        let pruner =
            EventIndexPruner::new(Arc::new(stale), EventPattern::parse("*:follow").unwrap());
        let (count, stats) = count_follows(&wh, &dir, Some(pruner));
        assert_eq!(count, 4);
        assert_eq!(stats.blocks_skipped, 0);
    }
}
