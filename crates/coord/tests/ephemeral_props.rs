//! Property-based tests for ephemeral-node semantics — the contract the
//! Scribe daemons and aggregators lean on for discovery and failover.
//!
//! For arbitrary interleavings of sessions, ephemeral creations, and
//! expiries, the service must:
//!
//! * delete exactly the expired sessions' ephemerals (live sessions keep
//!   theirs, persistents survive everything);
//! * fire an armed exists/data watch on a deleted znode **exactly once**,
//!   even when one expiry kills several znodes;
//! * fire a one-shot children watch at most once per arming;
//! * drop the dead session's own watch registrations (no posthumous
//!   events) and fail every later call with `SessionExpired`.

use std::collections::BTreeMap;

use proptest::prelude::*;

use uli_coord::{CoordError, CoordService, CreateMode, WatchEventKind};

const REGISTRY: &str = "/chaos/registry";

fn arb_plan() -> impl Strategy<Value = (Vec<u8>, Vec<bool>)> {
    // Per session: how many ephemerals it creates (0..=3); and whether it
    // expires. Up to 5 sessions.
    prop::collection::vec((0u8..4, any::<bool>()), 1..6).prop_map(|v| v.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expiry_deletes_ephemerals_and_fires_watches_exactly_once(
        (nodes_per_session, expire) in arb_plan()
    ) {
        let svc = CoordService::new();
        let watcher = svc.connect();
        watcher.create("/chaos", Vec::new(), CreateMode::Persistent).unwrap();
        watcher.create(REGISTRY, Vec::new(), CreateMode::Persistent).unwrap();

        // Each session registers its ephemerals, like aggregators would.
        let mut owned: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let sessions: Vec<_> = nodes_per_session
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let s = svc.connect();
                let mut paths = Vec::new();
                for _ in 0..n {
                    let path = s
                        .create(
                            &format!("{REGISTRY}/member-"),
                            b"endpoint".to_vec(),
                            CreateMode::EphemeralSequential,
                        )
                        .unwrap();
                    paths.push(path);
                }
                owned.insert(i, paths);
                s
            })
            .collect();

        // The watcher arms one exists-watch per znode and a single
        // one-shot children watch on the registry.
        for paths in owned.values() {
            for p in paths {
                watcher.watch_exists(p).unwrap();
            }
        }
        watcher.watch_children(REGISTRY).unwrap();

        // A doomed session arms watches too; they must die with it.
        let doomed_watcher = svc.connect();
        doomed_watcher.watch_children(REGISTRY).unwrap();
        svc.expire_session(doomed_watcher.id());

        let mut expected_deleted: Vec<String> = Vec::new();
        for (i, s) in sessions.iter().enumerate() {
            if expire[i] {
                svc.expire_session(s.id());
                expected_deleted.extend(owned[&i].iter().cloned());
            }
        }

        // Count events per path: every watched-and-deleted znode fires
        // exactly once; nothing else fires at all.
        let mut deleted_events: BTreeMap<String, u32> = BTreeMap::new();
        let mut children_events = 0u32;
        while let Some(ev) = watcher.poll_event() {
            match ev.kind {
                WatchEventKind::NodeDeleted => {
                    *deleted_events.entry(ev.path.clone()).or_insert(0) += 1;
                }
                WatchEventKind::NodeChildrenChanged => {
                    prop_assert_eq!(&ev.path, REGISTRY);
                    children_events += 1;
                }
                other => prop_assert!(false, "unexpected event kind {:?}", other),
            }
        }
        for p in &expected_deleted {
            prop_assert_eq!(
                deleted_events.get(p).copied().unwrap_or(0),
                1,
                "znode {} must fire its watch exactly once",
                p
            );
        }
        prop_assert_eq!(
            deleted_events.len(),
            expected_deleted.len(),
            "no deletion events for surviving znodes"
        );
        let any_deleted = !expected_deleted.is_empty();
        prop_assert_eq!(
            children_events,
            u32::from(any_deleted),
            "one-shot children watch fires at most once per arming"
        );

        // Survivors keep their znodes; the registry lists exactly them.
        let mut expected_members: Vec<String> = Vec::new();
        for (i, paths) in &owned {
            if !expire[*i] {
                for p in paths {
                    prop_assert!(watcher.exists(p).unwrap().is_some());
                    expected_members.push(p.rsplit('/').next().unwrap().to_string());
                }
            }
        }
        let mut members = watcher.get_children(REGISTRY).unwrap();
        members.sort();
        expected_members.sort();
        prop_assert_eq!(members, expected_members);

        // Expired sessions fail on every subsequent call.
        for (i, s) in sessions.iter().enumerate() {
            if expire[i] {
                prop_assert_eq!(
                    s.get_children(REGISTRY).unwrap_err(),
                    CoordError::SessionExpired
                );
                prop_assert_eq!(
                    s.create("/x", Vec::new(), CreateMode::Ephemeral).unwrap_err(),
                    CoordError::SessionExpired
                );
            }
        }

        // Re-arming after a fire works: the watch is one-shot, not dead.
        // (Only meaningful when the original arming was consumed above —
        // otherwise re-arming would stack a second registration.)
        if let Some((i, s)) = sessions
            .iter()
            .enumerate()
            .find(|(i, _)| any_deleted && !expire[*i] && !owned[i].is_empty())
        {
            watcher.watch_children(REGISTRY).unwrap();
            svc.expire_session(s.id());
            let mut fired = 0;
            while let Some(ev) = watcher.poll_event() {
                if ev.kind == WatchEventKind::NodeChildrenChanged {
                    fired += 1;
                }
            }
            prop_assert_eq!(fired, 1, "re-armed children watch fires again: {}", i);
        }
    }
}
