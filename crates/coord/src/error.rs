//! Coordination-service errors.

use std::fmt;

/// Errors returned by [`crate::CoordService`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// The target znode does not exist.
    NoNode(String),
    /// A znode already exists at the target path.
    NodeExists(String),
    /// The parent of the target path does not exist.
    NoParent(String),
    /// Ephemeral znodes cannot have children (as in ZooKeeper).
    NoChildrenForEphemerals(String),
    /// A path failed syntactic validation.
    BadPath(String),
    /// The node still has children and cannot be deleted.
    NotEmpty(String),
    /// The session performing the operation has ended.
    SessionExpired,
    /// A conditional write failed its version check.
    BadVersion {
        /// Path of the node.
        path: String,
        /// Version the caller expected.
        expected: i64,
        /// Version actually on the node.
        actual: i64,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node at {p}"),
            CoordError::NodeExists(p) => write!(f, "node already exists at {p}"),
            CoordError::NoParent(p) => write!(f, "parent of {p} does not exist"),
            CoordError::NoChildrenForEphemerals(p) => {
                write!(f, "{p} is ephemeral and cannot have children")
            }
            CoordError::BadPath(p) => write!(f, "invalid znode path {p:?}"),
            CoordError::NotEmpty(p) => write!(f, "{p} has children"),
            CoordError::SessionExpired => write!(f, "session expired"),
            CoordError::BadVersion {
                path,
                expected,
                actual,
            } => write!(
                f,
                "version mismatch at {path}: expected {expected}, found {actual}"
            ),
        }
    }
}

impl std::error::Error for CoordError {}

/// Convenience alias.
pub type CoordResult<T> = Result<T, CoordError>;
