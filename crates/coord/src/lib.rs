//! A ZooKeeper-lite coordination service.
//!
//! The paper's Scribe daemons "discover the hostnames of the aggregators
//! through ZooKeeper … Aggregators register themselves at a fixed location
//! using what is known as an 'ephemeral' znode, which exists only for the
//! duration of a client session" (§2). This crate implements exactly the
//! subset that infrastructure depends on:
//!
//! * a hierarchical namespace of data nodes ([`znode`]),
//! * **ephemeral** znodes that vanish when the creating session ends,
//! * **sequential** znodes for unique member names,
//! * one-shot **watches** on data, existence, and children, and
//! * explicit session lifecycle (close, simulated expiry).
//!
//! Everything is in-process and deterministic; "network partitions" are
//! modeled by expiring sessions.
//!
//! # Example
//!
//! ```
//! use uli_coord::{CoordService, CreateMode};
//!
//! let svc = CoordService::new();
//! let admin = svc.connect();
//! admin.create("/aggregators", b"".to_vec(), CreateMode::Persistent).unwrap();
//!
//! let agg = svc.connect();
//! let path = agg
//!     .create("/aggregators/agg-", b"host-1:1463".to_vec(),
//!             CreateMode::EphemeralSequential)
//!     .unwrap();
//! assert_eq!(path, "/aggregators/agg-0000000000");
//!
//! // The daemon finds a live aggregator:
//! let members = admin.get_children("/aggregators").unwrap();
//! assert_eq!(members.len(), 1);
//!
//! // The aggregator crashes: its session ends, the ephemeral node vanishes.
//! drop(agg);
//! assert!(admin.get_children("/aggregators").unwrap().is_empty());
//! ```

pub mod error;
pub mod service;
pub mod znode;

pub use error::{CoordError, CoordResult};
pub use service::{CoordService, CreateMode, Session, SessionId, WatchEvent, WatchEventKind};
pub use znode::{NodeStat, ZnodePath};
