//! The coordination service proper: sessions, znode CRUD, watches.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{CoordError, CoordResult};
use crate::znode::{NodeStat, ZnodePath};

/// Identifies a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// How a znode is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// Survives the creating session.
    Persistent,
    /// Deleted automatically when the creating session ends — the mechanism
    /// aggregators use to advertise liveness.
    Ephemeral,
    /// Persistent with a monotonically increasing suffix appended.
    PersistentSequential,
    /// Ephemeral with a sequence suffix — unique member names in a group.
    EphemeralSequential,
}

impl CreateMode {
    fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// The kind of change a watch observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// A node appeared at the watched path.
    NodeCreated,
    /// The watched node was deleted.
    NodeDeleted,
    /// The watched node's data changed.
    NodeDataChanged,
    /// The watched node's child set changed.
    NodeChildrenChanged,
}

/// A fired watch, delivered to the session that registered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Path the watch was registered on.
    pub path: String,
    /// What happened.
    pub kind: WatchEventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WatchKind {
    Data,
    Exists,
    Children,
}

#[derive(Debug)]
struct Node {
    data: Vec<u8>,
    version: i64,
    ephemeral_owner: Option<SessionId>,
    children: BTreeSet<String>,
    next_sequence: u64,
    created_at: u64,
    modified_at: u64,
}

impl Node {
    fn stat(&self) -> NodeStat {
        NodeStat {
            version: self.version,
            num_children: self.children.len(),
            ephemeral: self.ephemeral_owner.is_some(),
            created_at: self.created_at,
            modified_at: self.modified_at,
        }
    }
}

#[derive(Default)]
struct State {
    nodes: BTreeMap<String, Node>,
    next_session: u64,
    live_sessions: BTreeSet<SessionId>,
    event_queues: HashMap<SessionId, VecDeque<WatchEvent>>,
    watches: HashMap<(String, WatchKind), Vec<SessionId>>,
    tick: u64,
}

impl State {
    fn fire(&mut self, path: &str, watch: WatchKind, kind: WatchEventKind) {
        if let Some(sessions) = self.watches.remove(&(path.to_string(), watch)) {
            for sid in sessions {
                if self.live_sessions.contains(&sid) {
                    self.event_queues
                        .entry(sid)
                        .or_default()
                        .push_back(WatchEvent {
                            path: path.to_string(),
                            kind,
                        });
                }
            }
        }
    }

    fn create_node(
        &mut self,
        sid: SessionId,
        path: &ZnodePath,
        data: Vec<u8>,
        mode: CreateMode,
    ) -> CoordResult<String> {
        let parent = path
            .parent()
            .ok_or_else(|| CoordError::BadPath("/".into()))?;
        self.tick += 1;
        let tick = self.tick;
        let actual = {
            let parent_node = self
                .nodes
                .get_mut(parent.as_str())
                .ok_or_else(|| CoordError::NoParent(path.as_str().to_string()))?;
            if parent_node.ephemeral_owner.is_some() {
                return Err(CoordError::NoChildrenForEphemerals(
                    parent.as_str().to_string(),
                ));
            }
            if mode.is_sequential() {
                let seq = parent_node.next_sequence;
                parent_node.next_sequence += 1;
                format!("{}{:010}", path.as_str(), seq)
            } else {
                path.as_str().to_string()
            }
        };
        if self.nodes.contains_key(&actual) {
            return Err(CoordError::NodeExists(actual));
        }
        let name = ZnodePath::parse(&actual)
            .expect("constructed path is valid")
            .name()
            .to_string();
        self.nodes
            .get_mut(parent.as_str())
            .expect("parent checked above")
            .children
            .insert(name);
        self.nodes.insert(
            actual.clone(),
            Node {
                data,
                version: 0,
                ephemeral_owner: mode.is_ephemeral().then_some(sid),
                children: BTreeSet::new(),
                next_sequence: 0,
                created_at: tick,
                modified_at: tick,
            },
        );
        self.fire(&actual, WatchKind::Exists, WatchEventKind::NodeCreated);
        self.fire(
            parent.as_str(),
            WatchKind::Children,
            WatchEventKind::NodeChildrenChanged,
        );
        Ok(actual)
    }

    fn delete_node(&mut self, path: &ZnodePath) -> CoordResult<()> {
        let node = self
            .nodes
            .get(path.as_str())
            .ok_or_else(|| CoordError::NoNode(path.as_str().to_string()))?;
        if !node.children.is_empty() {
            return Err(CoordError::NotEmpty(path.as_str().to_string()));
        }
        self.nodes.remove(path.as_str());
        let parent = path.parent().expect("non-root: has a parent");
        if let Some(parent_node) = self.nodes.get_mut(parent.as_str()) {
            parent_node.children.remove(path.name());
        }
        self.fire(path.as_str(), WatchKind::Data, WatchEventKind::NodeDeleted);
        self.fire(
            path.as_str(),
            WatchKind::Exists,
            WatchEventKind::NodeDeleted,
        );
        self.fire(
            parent.as_str(),
            WatchKind::Children,
            WatchEventKind::NodeChildrenChanged,
        );
        Ok(())
    }

    fn end_session(&mut self, sid: SessionId) {
        if !self.live_sessions.remove(&sid) {
            return;
        }
        self.event_queues.remove(&sid);
        // Delete this session's ephemerals (they cannot have children, so
        // ordering does not matter).
        let owned: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.ephemeral_owner == Some(sid))
            .map(|(p, _)| p.clone())
            .collect();
        for path in owned {
            let path = ZnodePath::parse(&path).expect("stored paths are valid");
            // Ignore errors: concurrent structure changes cannot happen under
            // the lock, so this only fails if the node vanished above.
            let _ = self.delete_node(&path);
        }
        // Drop the dead session's watch registrations.
        for sessions in self.watches.values_mut() {
            sessions.retain(|s| *s != sid);
        }
        self.watches.retain(|_, v| !v.is_empty());
    }
}

/// An in-process coordination service shared by cloning.
#[derive(Clone, Default)]
pub struct CoordService {
    state: Arc<Mutex<State>>,
}

impl CoordService {
    /// Creates a service with just the root znode.
    pub fn new() -> Self {
        let svc = CoordService {
            state: Arc::new(Mutex::new(State::default())),
        };
        svc.state.lock().nodes.insert(
            "/".to_string(),
            Node {
                data: Vec::new(),
                version: 0,
                ephemeral_owner: None,
                children: BTreeSet::new(),
                next_sequence: 0,
                created_at: 0,
                modified_at: 0,
            },
        );
        svc
    }

    /// Opens a new client session.
    pub fn connect(&self) -> Session {
        let mut st = self.state.lock();
        st.next_session += 1;
        let sid = SessionId(st.next_session);
        st.live_sessions.insert(sid);
        st.event_queues.insert(sid, VecDeque::new());
        Session {
            state: Arc::clone(&self.state),
            sid,
        }
    }

    /// Forcibly expires a session, as a lost-heartbeat simulation. Its
    /// ephemerals are removed and watches fire exactly as if the client died.
    pub fn expire_session(&self, sid: SessionId) {
        self.state.lock().end_session(sid);
    }

    /// Number of currently live sessions.
    pub fn session_count(&self) -> usize {
        self.state.lock().live_sessions.len()
    }

    /// Total number of znodes (including the root).
    pub fn node_count(&self) -> usize {
        self.state.lock().nodes.len()
    }
}

/// A client session. Dropping it ends the session, removing its ephemerals.
pub struct Session {
    state: Arc<Mutex<State>>,
    sid: SessionId,
}

impl Session {
    /// This session's id (usable with [`CoordService::expire_session`]).
    pub fn id(&self) -> SessionId {
        self.sid
    }

    /// True while the session has not expired. Clients use this to decide
    /// whether to reconnect and re-create their ephemerals.
    pub fn is_live(&self) -> bool {
        self.state.lock().live_sessions.contains(&self.sid)
    }

    fn check_live(&self, st: &State) -> CoordResult<()> {
        if st.live_sessions.contains(&self.sid) {
            Ok(())
        } else {
            Err(CoordError::SessionExpired)
        }
    }

    /// Creates a znode; returns the actual path (differs from the requested
    /// one for sequential modes).
    pub fn create(&self, path: &str, data: Vec<u8>, mode: CreateMode) -> CoordResult<String> {
        let path = ZnodePath::parse(path)?;
        let mut st = self.state.lock();
        self.check_live(&st)?;
        st.create_node(self.sid, &path, data, mode)
    }

    /// Deletes a znode (must have no children).
    pub fn delete(&self, path: &str) -> CoordResult<()> {
        let path = ZnodePath::parse(path)?;
        if path.as_str() == "/" {
            return Err(CoordError::BadPath("/".into()));
        }
        let mut st = self.state.lock();
        self.check_live(&st)?;
        st.delete_node(&path)
    }

    /// Returns node metadata if the node exists.
    pub fn exists(&self, path: &str) -> CoordResult<Option<NodeStat>> {
        let path = ZnodePath::parse(path)?;
        let st = self.state.lock();
        self.check_live(&st)?;
        Ok(st.nodes.get(path.as_str()).map(Node::stat))
    }

    /// Reads a node's data and metadata.
    pub fn get_data(&self, path: &str) -> CoordResult<(Vec<u8>, NodeStat)> {
        let path = ZnodePath::parse(path)?;
        let st = self.state.lock();
        self.check_live(&st)?;
        st.nodes
            .get(path.as_str())
            .map(|n| (n.data.clone(), n.stat()))
            .ok_or_else(|| CoordError::NoNode(path.as_str().to_string()))
    }

    /// Writes a node's data. If `expected_version` is given, the write is
    /// conditional (compare-and-set).
    pub fn set_data(
        &self,
        path: &str,
        data: Vec<u8>,
        expected_version: Option<i64>,
    ) -> CoordResult<NodeStat> {
        let path = ZnodePath::parse(path)?;
        let mut st = self.state.lock();
        self.check_live(&st)?;
        st.tick += 1;
        let tick = st.tick;
        let node = st
            .nodes
            .get_mut(path.as_str())
            .ok_or_else(|| CoordError::NoNode(path.as_str().to_string()))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(CoordError::BadVersion {
                    path: path.as_str().to_string(),
                    expected,
                    actual: node.version,
                });
            }
        }
        node.data = data;
        node.version += 1;
        node.modified_at = tick;
        let stat = node.stat();
        st.fire(
            path.as_str(),
            WatchKind::Data,
            WatchEventKind::NodeDataChanged,
        );
        Ok(stat)
    }

    /// Lists a node's children, sorted.
    pub fn get_children(&self, path: &str) -> CoordResult<Vec<String>> {
        let path = ZnodePath::parse(path)?;
        let st = self.state.lock();
        self.check_live(&st)?;
        st.nodes
            .get(path.as_str())
            .map(|n| n.children.iter().cloned().collect())
            .ok_or_else(|| CoordError::NoNode(path.as_str().to_string()))
    }

    fn watch(&self, path: &str, kind: WatchKind) -> CoordResult<()> {
        let path = ZnodePath::parse(path)?;
        let mut st = self.state.lock();
        self.check_live(&st)?;
        st.watches
            .entry((path.as_str().to_string(), kind))
            .or_default()
            .push(self.sid);
        Ok(())
    }

    /// Registers a one-shot watch that fires when the node's data changes or
    /// the node is deleted.
    pub fn watch_data(&self, path: &str) -> CoordResult<()> {
        self.watch(path, WatchKind::Data)
    }

    /// Registers a one-shot watch that fires when a node is created or
    /// deleted at `path`.
    pub fn watch_exists(&self, path: &str) -> CoordResult<()> {
        self.watch(path, WatchKind::Exists)
    }

    /// Registers a one-shot watch that fires when the node's child set
    /// changes — this is how Scribe daemons notice aggregator churn.
    pub fn watch_children(&self, path: &str) -> CoordResult<()> {
        self.watch(path, WatchKind::Children)
    }

    /// Takes the next pending watch event, if any.
    pub fn poll_event(&self) -> Option<WatchEvent> {
        let mut st = self.state.lock();
        st.event_queues.get_mut(&self.sid)?.pop_front()
    }

    /// Ends the session explicitly. Equivalent to dropping.
    pub fn close(self) {}
}

impl Drop for Session {
    fn drop(&mut self) {
        self.state.lock().end_session(self.sid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc_with_root(dir: &str) -> (CoordService, Session) {
        let svc = CoordService::new();
        let s = svc.connect();
        s.create(dir, vec![], CreateMode::Persistent).unwrap();
        (svc, s)
    }

    #[test]
    fn create_get_set_delete() {
        let (_svc, s) = svc_with_root("/a");
        s.create("/a/b", b"v0".to_vec(), CreateMode::Persistent)
            .unwrap();
        let (data, stat) = s.get_data("/a/b").unwrap();
        assert_eq!(data, b"v0");
        assert_eq!(stat.version, 0);
        s.set_data("/a/b", b"v1".to_vec(), None).unwrap();
        let (data, stat) = s.get_data("/a/b").unwrap();
        assert_eq!(data, b"v1");
        assert_eq!(stat.version, 1);
        s.delete("/a/b").unwrap();
        assert!(s.exists("/a/b").unwrap().is_none());
    }

    #[test]
    fn create_requires_parent() {
        let svc = CoordService::new();
        let s = svc.connect();
        assert_eq!(
            s.create("/x/y", vec![], CreateMode::Persistent),
            Err(CoordError::NoParent("/x/y".into()))
        );
    }

    #[test]
    fn duplicate_create_fails() {
        let (_svc, s) = svc_with_root("/a");
        assert_eq!(
            s.create("/a", vec![], CreateMode::Persistent),
            Err(CoordError::NodeExists("/a".into()))
        );
    }

    #[test]
    fn delete_nonempty_fails() {
        let (_svc, s) = svc_with_root("/a");
        s.create("/a/b", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(s.delete("/a"), Err(CoordError::NotEmpty("/a".into())));
    }

    #[test]
    fn sequential_names_are_monotonic_and_padded() {
        let (_svc, s) = svc_with_root("/g");
        let p0 = s
            .create("/g/m-", vec![], CreateMode::PersistentSequential)
            .unwrap();
        let p1 = s
            .create("/g/m-", vec![], CreateMode::PersistentSequential)
            .unwrap();
        assert_eq!(p0, "/g/m-0000000000");
        assert_eq!(p1, "/g/m-0000000001");
        assert_eq!(s.get_children("/g").unwrap().len(), 2);
    }

    #[test]
    fn ephemerals_vanish_on_drop() {
        let svc = CoordService::new();
        let admin = svc.connect();
        admin
            .create("/agg", vec![], CreateMode::Persistent)
            .unwrap();
        let member = svc.connect();
        member
            .create("/agg/m-", b"host".to_vec(), CreateMode::EphemeralSequential)
            .unwrap();
        assert_eq!(admin.get_children("/agg").unwrap().len(), 1);
        drop(member);
        assert!(admin.get_children("/agg").unwrap().is_empty());
    }

    #[test]
    fn ephemerals_vanish_on_forced_expiry() {
        let svc = CoordService::new();
        let admin = svc.connect();
        admin
            .create("/agg", vec![], CreateMode::Persistent)
            .unwrap();
        let member = svc.connect();
        member
            .create("/agg/m", vec![], CreateMode::Ephemeral)
            .unwrap();
        svc.expire_session(member.id());
        assert!(admin.get_children("/agg").unwrap().is_empty());
        // The expired session now errors on use.
        assert_eq!(member.exists("/agg"), Err(CoordError::SessionExpired));
    }

    #[test]
    fn ephemeral_cannot_have_children() {
        let svc = CoordService::new();
        let s = svc.connect();
        s.create("/e", vec![], CreateMode::Ephemeral).unwrap();
        assert_eq!(
            s.create("/e/child", vec![], CreateMode::Persistent),
            Err(CoordError::NoChildrenForEphemerals("/e".into()))
        );
    }

    #[test]
    fn children_watch_fires_once() {
        let svc = CoordService::new();
        let admin = svc.connect();
        admin
            .create("/agg", vec![], CreateMode::Persistent)
            .unwrap();
        let daemon = svc.connect();
        daemon.watch_children("/agg").unwrap();
        assert!(daemon.poll_event().is_none());

        admin
            .create("/agg/a", vec![], CreateMode::Persistent)
            .unwrap();
        assert_eq!(
            daemon.poll_event(),
            Some(WatchEvent {
                path: "/agg".into(),
                kind: WatchEventKind::NodeChildrenChanged
            })
        );
        // One-shot: a second change does not fire.
        admin
            .create("/agg/b", vec![], CreateMode::Persistent)
            .unwrap();
        assert!(daemon.poll_event().is_none());
    }

    #[test]
    fn data_watch_fires_on_set_and_delete() {
        let svc = CoordService::new();
        let s = svc.connect();
        s.create("/n", vec![], CreateMode::Persistent).unwrap();
        s.watch_data("/n").unwrap();
        s.set_data("/n", b"x".to_vec(), None).unwrap();
        assert_eq!(
            s.poll_event().unwrap().kind,
            WatchEventKind::NodeDataChanged
        );

        s.watch_data("/n").unwrap();
        s.delete("/n").unwrap();
        assert_eq!(s.poll_event().unwrap().kind, WatchEventKind::NodeDeleted);
    }

    #[test]
    fn exists_watch_fires_on_create() {
        let svc = CoordService::new();
        let s = svc.connect();
        s.watch_exists("/later").unwrap();
        s.create("/later", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(s.poll_event().unwrap().kind, WatchEventKind::NodeCreated);
    }

    #[test]
    fn watch_fires_on_session_expiry_of_ephemeral_owner() {
        let svc = CoordService::new();
        let admin = svc.connect();
        admin
            .create("/agg", vec![], CreateMode::Persistent)
            .unwrap();
        let member = svc.connect();
        member
            .create("/agg/m", vec![], CreateMode::Ephemeral)
            .unwrap();
        let watcher = svc.connect();
        watcher.watch_children("/agg").unwrap();
        svc.expire_session(member.id());
        assert_eq!(
            watcher.poll_event().unwrap().kind,
            WatchEventKind::NodeChildrenChanged
        );
    }

    #[test]
    fn conditional_set_enforces_version() {
        let svc = CoordService::new();
        let s = svc.connect();
        s.create("/n", vec![], CreateMode::Persistent).unwrap();
        s.set_data("/n", b"a".to_vec(), Some(0)).unwrap();
        let err = s.set_data("/n", b"b".to_vec(), Some(0)).unwrap_err();
        assert!(matches!(err, CoordError::BadVersion { actual: 1, .. }));
    }

    #[test]
    fn session_and_node_counts() {
        let svc = CoordService::new();
        assert_eq!(svc.node_count(), 1);
        let a = svc.connect();
        let b = svc.connect();
        assert_eq!(svc.session_count(), 2);
        a.create("/x", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(svc.node_count(), 2);
        drop(b);
        assert_eq!(svc.session_count(), 1);
        drop(a);
        assert_eq!(svc.session_count(), 0);
        // Persistent node survives all sessions.
        assert_eq!(svc.node_count(), 2);
    }

    #[test]
    fn root_cannot_be_deleted() {
        let svc = CoordService::new();
        let s = svc.connect();
        assert!(s.delete("/").is_err());
    }
}
