//! Znode paths and metadata.

use crate::error::{CoordError, CoordResult};

/// A validated znode path: absolute, `/`-separated, no empty or dot segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZnodePath(String);

impl ZnodePath {
    /// Parses and validates a path.
    ///
    /// Rules (a subset of ZooKeeper's): must start with `/`; the root `/` is
    /// valid; segments are non-empty, contain no `/`, and are not `.`/`..`;
    /// no trailing slash.
    pub fn parse(path: &str) -> CoordResult<ZnodePath> {
        if path == "/" {
            return Ok(ZnodePath("/".to_string()));
        }
        if !path.starts_with('/') || path.ends_with('/') {
            return Err(CoordError::BadPath(path.to_string()));
        }
        for seg in path[1..].split('/') {
            if seg.is_empty() || seg == "." || seg == ".." {
                return Err(CoordError::BadPath(path.to_string()));
            }
        }
        Ok(ZnodePath(path.to_string()))
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<ZnodePath> {
        if self.0 == "/" {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(ZnodePath("/".to_string())),
            Some(idx) => Some(ZnodePath(self.0[..idx].to_string())),
            None => None,
        }
    }

    /// The final path segment ("" for the root).
    pub fn name(&self) -> &str {
        if self.0 == "/" {
            return "";
        }
        &self.0[self.0.rfind('/').map_or(0, |i| i + 1)..]
    }

    /// Joins a child segment onto this path.
    pub fn child(&self, name: &str) -> CoordResult<ZnodePath> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(CoordError::BadPath(format!("{}/{}", self.0, name)));
        }
        if self.0 == "/" {
            Ok(ZnodePath(format!("/{name}")))
        } else {
            Ok(ZnodePath(format!("{}/{}", self.0, name)))
        }
    }
}

impl std::fmt::Display for ZnodePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Metadata returned with znode reads, analogous to ZooKeeper's `Stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStat {
    /// Monotonic version, incremented on every data write.
    pub version: i64,
    /// Number of children.
    pub num_children: usize,
    /// Whether the node is ephemeral.
    pub ephemeral: bool,
    /// Logical creation tick.
    pub created_at: u64,
    /// Logical tick of the last data write.
    pub modified_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_paths() {
        for p in ["/", "/a", "/a/b/c", "/aggregators/dc1/agg-0000000001"] {
            assert_eq!(ZnodePath::parse(p).unwrap().as_str(), p);
        }
    }

    #[test]
    fn parse_rejects_invalid_paths() {
        for p in ["", "a", "a/b", "/a/", "//", "/a//b", "/a/./b", "/a/../b"] {
            assert!(ZnodePath::parse(p).is_err(), "{p:?} should be invalid");
        }
    }

    #[test]
    fn parent_and_name() {
        let p = ZnodePath::parse("/a/b/c").unwrap();
        assert_eq!(p.name(), "c");
        assert_eq!(p.parent().unwrap().as_str(), "/a/b");
        let top = ZnodePath::parse("/a").unwrap();
        assert_eq!(top.parent().unwrap().as_str(), "/");
        assert!(ZnodePath::parse("/").unwrap().parent().is_none());
        assert_eq!(ZnodePath::parse("/").unwrap().name(), "");
    }

    #[test]
    fn child_joins() {
        let root = ZnodePath::parse("/").unwrap();
        assert_eq!(root.child("a").unwrap().as_str(), "/a");
        let a = ZnodePath::parse("/a").unwrap();
        assert_eq!(a.child("b").unwrap().as_str(), "/a/b");
        assert!(a.child("").is_err());
        assert!(a.child("x/y").is_err());
        assert!(a.child("..").is_err());
    }
}
