//! The session behavior model.
//!
//! A first-order Markov walk over the event universe: "how the user behaves
//! right now is strongly influenced by immediately preceding actions"
//! (§5.4). Base probabilities are Zipfian; planted successor pairs
//! ("impression → click" and friends) receive boosted transition
//! probability, which is what the n-gram models (E7) detect as temporal
//! signal and the collocation miners (E8) recover as activity collocates.

use rand::Rng;

use uli_core::event::EventName;

use crate::zipf::Zipf;

/// A planted high-probability transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boost {
    /// Index of the predecessor event.
    pub from: usize,
    /// Index of the boosted successor.
    pub to: usize,
    /// Probability of taking this transition when at `from` (boosts from
    /// the same predecessor are tried in order; their sum must be ≤ 1).
    pub probability: f64,
}

/// The Markov behavior model.
#[derive(Debug, Clone)]
pub struct BehaviorModel {
    universe: Vec<EventName>,
    base: Zipf,
    /// Sorted by `from` for binary-search lookup.
    boosts: Vec<Boost>,
}

impl BehaviorModel {
    /// Builds a model over `universe` with Zipf(α) base frequencies and
    /// planted `boosts`.
    pub fn new(universe: Vec<EventName>, alpha: f64, mut boosts: Vec<Boost>) -> BehaviorModel {
        assert!(!universe.is_empty(), "universe must be non-empty");
        for b in &boosts {
            assert!(b.from < universe.len() && b.to < universe.len());
            assert!((0.0..=1.0).contains(&b.probability));
        }
        boosts.sort_by_key(|b| b.from);
        let base = Zipf::new(universe.len(), alpha);
        BehaviorModel {
            universe,
            base,
            boosts,
        }
    }

    /// Derives the default boosts: within every (client, page, section),
    /// `impression → click` on the same element and
    /// `avatar impression → profile_click`. These mirror the causal chains
    /// the paper's CTR analyses look for.
    pub fn with_default_boosts(universe: Vec<EventName>, alpha: f64) -> BehaviorModel {
        let mut boosts = Vec::new();
        for (i, from) in universe.iter().enumerate() {
            if from.action() != "impression" {
                continue;
            }
            for (j, to) in universe.iter().enumerate() {
                let same_widget = from.client() == to.client()
                    && from.page() == to.page()
                    && from.section() == to.section()
                    && from.element() == to.element();
                if !same_widget {
                    continue;
                }
                match to.action() {
                    "click" | "profile_click" => boosts.push(Boost {
                        from: i,
                        to: j,
                        probability: 0.25,
                    }),
                    "follow" => boosts.push(Boost {
                        from: i,
                        to: j,
                        probability: 0.10,
                    }),
                    _ => {}
                }
            }
        }
        BehaviorModel::new(universe, alpha, boosts)
    }

    /// The event universe, in index order.
    pub fn universe(&self) -> &[EventName] {
        &self.universe
    }

    /// The planted boosts (ground truth for collocation recovery).
    pub fn boosts(&self) -> &[Boost] {
        &self.boosts
    }

    /// Samples the first event of a session.
    pub fn start<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.base.sample(rng)
    }

    /// Samples the next event given the previous one.
    pub fn step<R: Rng + ?Sized>(&self, prev: usize, rng: &mut R) -> usize {
        let lo = self.boosts.partition_point(|b| b.from < prev);
        let hi = self.boosts.partition_point(|b| b.from <= prev);
        let mut u: f64 = rng.gen();
        for b in &self.boosts[lo..hi] {
            if u < b.probability {
                return b.to;
            }
            u -= b.probability;
        }
        self.base.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{build_universe, UniverseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> BehaviorModel {
        BehaviorModel::with_default_boosts(build_universe(&UniverseConfig::default()), 1.1)
    }

    #[test]
    fn default_boosts_exist_and_are_widget_local() {
        let m = model();
        assert!(!m.boosts().is_empty());
        for b in m.boosts() {
            let from = &m.universe()[b.from];
            let to = &m.universe()[b.to];
            assert_eq!(from.action(), "impression");
            assert_eq!(from.element(), to.element());
            assert_eq!(from.client(), to.client());
        }
    }

    #[test]
    fn boosted_successors_dominate_their_base_rate() {
        let m = model();
        let boost = m.boosts()[0];
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            if m.step(boost.from, &mut rng) == boost.to {
                hits += 1;
            }
        }
        let p = hits as f64 / trials as f64;
        assert!(
            p > boost.probability * 0.8,
            "observed {p:.3}, planted {}",
            boost.probability
        );
    }

    #[test]
    fn unboosted_steps_follow_the_base_distribution() {
        let m = model();
        // Find an event with no boosts (a click has none).
        let from = m
            .universe()
            .iter()
            .position(|n| n.action() == "click")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut rank0 = 0;
        for _ in 0..10_000 {
            if m.step(from, &mut rng) == 0 {
                rank0 += 1;
            }
        }
        // Rank 0 of a Zipf(1.1) over ~500 events has mass ≈ 0.13.
        assert!(rank0 > 500, "rank-0 draws: {rank0}");
    }

    #[test]
    fn deterministic_under_seed() {
        let m = model();
        let walk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cur = m.start(&mut rng);
            (0..50)
                .map(|_| {
                    cur = m.step(cur, &mut rng);
                    cur
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(9), walk(9));
        assert_ne!(walk(9), walk(10));
    }
}
