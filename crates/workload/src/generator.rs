//! Day-scale workload assembly.
//!
//! Produces whole days of client events with known ground truth (session
//! counts, funnel stage counts, per-client mix) and writes them into the
//! warehouse in the paper's layout: hourly partitions, several part files
//! per hour, records only *partially* time-ordered within a file (§2).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uli_core::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
use uli_core::event::{EventInitiator, EventName};
use uli_core::legacy::LegacyCategory;
use uli_core::time::{Timestamp, MS_PER_DAY};
use uli_thrift::ThriftRecord;
use uli_warehouse::{HourlyPartition, Warehouse, WarehouseResult};

use crate::behavior::BehaviorModel;
use crate::funnels::{signup_funnel, FunnelSpec};
use crate::universe::{build_universe, UniverseConfig};

/// Everything that shapes a generated day.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed; the day index is folded in, so multi-day runs differ.
    pub seed: u64,
    /// Number of distinct users.
    pub users: u64,
    /// Mean sessions per user per day (Poisson).
    pub mean_sessions_per_user: f64,
    /// Mean events per session (geometric, minimum 1).
    pub mean_session_len: f64,
    /// Zipf skew of base event frequencies.
    pub zipf_alpha: f64,
    /// Universe shape.
    pub universe: UniverseConfig,
    /// Client mix, parallel to `universe.clients` (normalized internally).
    pub client_weights: Vec<f64>,
    /// Funnel to inject, if any.
    pub funnel: Option<FunnelSpec>,
    /// Fraction of *web* sessions that are funnel sessions.
    pub funnel_fraction: f64,
    /// Fraction of sessions belonging to logged-out visitors (user id 0).
    pub logged_out_fraction: f64,
    /// Mean gap between successive events within a session, milliseconds.
    pub mean_event_gap_ms: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x7717_7e4a,
            users: 200,
            mean_sessions_per_user: 2.0,
            mean_session_len: 12.0,
            zipf_alpha: 1.1,
            universe: UniverseConfig::default(),
            client_weights: vec![0.5, 0.3, 0.2],
            funnel: Some(signup_funnel()),
            funnel_fraction: 0.12,
            logged_out_fraction: 0.15,
            mean_event_gap_ms: 20_000.0,
        }
    }
}

/// What the generator knows to be true — experiments recover these.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// Sessions generated.
    pub sessions: u64,
    /// Events generated.
    pub events: u64,
    /// Sessions that entered the funnel.
    pub funnel_sessions: u64,
    /// Sessions reaching each funnel stage (len = stages).
    pub funnel_stage_counts: Vec<u64>,
    /// Sessions per client.
    pub sessions_by_client: BTreeMap<String, u64>,
    /// Distinct event names that occurred.
    pub distinct_events: u64,
}

/// A generated day.
#[derive(Debug, Clone)]
pub struct DayWorkload {
    /// All events, in generation order (NOT globally time-sorted).
    pub events: Vec<ClientEvent>,
    /// The ground truth.
    pub truth: GroundTruth,
}

fn poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    // Knuth's method; fine for the small means used here.
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological means
        }
    }
}

fn ip_of_user(user: u64) -> String {
    let h = user.wrapping_mul(0x9e3779b97f4a7c15);
    format!(
        "{}.{}.{}.{}",
        (h >> 24) & 0xff,
        (h >> 16) & 0xff,
        (h >> 8) & 0xff,
        h & 0xff
    )
}

/// Generates one day of traffic.
pub fn generate_day(config: &WorkloadConfig, day_index: u64) -> DayWorkload {
    assert_eq!(
        config.client_weights.len(),
        config.universe.clients.len(),
        "one weight per client"
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ (day_index.wrapping_mul(0x9e37_79b9)));
    let universe = build_universe(&config.universe);

    // Per-client models over each client's slice of the universe. Funnel
    // stages stay OUT of the Markov support: only explicit funnel sessions
    // emit them, so funnel ground truth is exactly recoverable.
    let mut per_client: Vec<(String, BehaviorModel)> = Vec::new();
    for client in &config.universe.clients {
        let slice: Vec<EventName> = universe
            .iter()
            .filter(|n| n.client() == *client)
            .cloned()
            .collect();
        per_client.push((
            client.to_string(),
            BehaviorModel::with_default_boosts(slice, config.zipf_alpha),
        ));
    }
    let weight_total: f64 = config.client_weights.iter().sum();

    let day_start = day_index as i64 * MS_PER_DAY;
    let mut events = Vec::new();
    let mut truth = GroundTruth {
        funnel_stage_counts: config
            .funnel
            .as_ref()
            .map(|f| vec![0; f.len()])
            .unwrap_or_default(),
        ..Default::default()
    };

    for user in 1..=config.users {
        let n_sessions = poisson(config.mean_sessions_per_user, &mut rng);
        for s in 0..n_sessions {
            // Pick a client by weight.
            let mut pick = rng.gen::<f64>() * weight_total;
            let mut client_idx = 0;
            for (i, w) in config.client_weights.iter().enumerate() {
                if pick < *w {
                    client_idx = i;
                    break;
                }
                pick -= w;
                client_idx = i;
            }
            let (client, model) = &per_client[client_idx];

            let logged_out = rng.gen::<f64>() < config.logged_out_fraction;
            let user_id = if logged_out { 0 } else { user as i64 };
            let session_id = format!("s-{user}-{day_index}-{s}");
            let ip = ip_of_user(user);
            // Sessions start early enough that even long ones stay within
            // the day (keeps ground truth exact for day-scoped jobs).
            let start = day_start + (rng.gen::<f64>() * (MS_PER_DAY as f64 * 0.9)) as i64;

            let is_funnel = *client == "web"
                && config.funnel.is_some()
                && rng.gen::<f64>() < config.funnel_fraction;

            let mut t = start;
            let mut emitted = 0u64;
            let emit = |name: EventName,
                        t: i64,
                        rng: &mut StdRng,
                        events: &mut Vec<ClientEvent>| {
                let initiator = if name.action() == "impression" && rng.gen::<f64>() < 0.3 {
                    EventInitiator::CLIENT_APP
                } else {
                    EventInitiator::CLIENT_USER
                };
                let referrer = format!("/{}", name.page());
                let mut ev = ClientEvent::new(
                    initiator,
                    name,
                    user_id,
                    session_id.clone(),
                    ip.clone(),
                    Timestamp(t),
                );
                // Client events are verbose — the §4.1 downside the
                // sequences exist to offset. Every event carries the
                // boilerplate a real client attaches.
                const USER_AGENTS: [&str; 6] = [
                    "Mozilla/5.0 (Windows NT 6.1; rv:14.0) Gecko/20100101 Firefox/14.0",
                    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_7) AppleWebKit/536 Safari/536",
                    "Mozilla/5.0 (iPhone; CPU iPhone OS 5_1 like Mac OS X) Mobile/9B176",
                    "TwitterAndroid/3.2 (Linux; Android 4.0.4; GT-I9100)",
                    "Mozilla/5.0 (X11; Linux x86_64) Chrome/21.0.1180.57",
                    "Mozilla/5.0 (Windows NT 5.1) Chrome/20.0.1132.57 Safari/536.11",
                ];
                ev = ev
                    .with_detail("client_version", "4.1.2")
                    .with_detail(
                        "user_agent",
                        USER_AGENTS[rng.gen_range(0..USER_AGENTS.len())],
                    )
                    .with_detail("lang", "en")
                    .with_detail("referrer", referrer)
                    // High-entropy request id: the incompressible part
                    // of real log payloads (trace ids, URLs, tweet ids).
                    .with_detail(
                        "request_id",
                        format!("{:016x}{:016x}", rng.gen::<u64>(), rng.gen::<u64>()),
                    )
                    .with_detail("page_load_ms", format!("{}", rng.gen_range(40..2500)));
                match ev.name.action() {
                    "click" | "profile_click" | "follow" => {
                        ev = ev
                            .with_detail("target_id", format!("{}", rng.gen::<u32>()))
                            .with_detail(
                                "target_url",
                                format!("https://t.co/{:010x}", rng.gen::<u64>() & 0xff_ffff_ffff),
                            )
                            .with_detail("rank", format!("{}", rng.gen_range(0..20)));
                    }
                    "impression" => {
                        ev = ev.with_detail("tweet_id", format!("{}", rng.gen::<u64>()));
                    }
                    _ => {}
                }
                events.push(ev);
            };

            if is_funnel {
                let funnel = config.funnel.as_ref().expect("checked above");
                let depth = funnel.sample_depth(&mut rng);
                truth.funnel_sessions += 1;
                for (i, stage) in funnel.stages.iter().take(depth).enumerate() {
                    truth.funnel_stage_counts[i] += 1;
                    emit(stage.clone(), t, &mut rng, &mut events);
                    emitted += 1;
                    t += 1 + (-(rng.gen::<f64>()).ln() * config.mean_event_gap_ms) as i64;
                }
            } else {
                // Geometric session length with the configured mean.
                let cont = 1.0 - 1.0 / config.mean_session_len.max(1.0);
                let mut cur = model.start(&mut rng);
                loop {
                    emit(model.universe()[cur].clone(), t, &mut rng, &mut events);
                    emitted += 1;
                    if rng.gen::<f64>() >= cont {
                        break;
                    }
                    cur = model.step(cur, &mut rng);
                    t += 1 + (-(rng.gen::<f64>()).ln() * config.mean_event_gap_ms) as i64;
                }
            }
            truth.sessions += 1;
            truth.events += emitted;
            *truth.sessions_by_client.entry(client.clone()).or_insert(0) += 1;
        }
    }
    let mut distinct: Vec<&EventName> = events.iter().map(|e| &e.name).collect();
    distinct.sort();
    distinct.dedup();
    truth.distinct_events = distinct.len() as u64;
    DayWorkload { events, truth }
}

/// The warehouse layout a client-events day is landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// One Thrift record per event — the pre-columnar format, kept
    /// writable for migration tests and readable forever.
    Row,
    /// Columnar v2 with a dictionary-encoded name column: the default
    /// landing format.
    #[default]
    Columnar,
    /// Columnar v2 without the name dictionary (ablation arm).
    ColumnarPlain,
}

impl Layout {
    /// Parses a `--layout` flag value.
    pub fn parse(s: &str) -> Option<Layout> {
        match s {
            "row" => Some(Layout::Row),
            "columnar" => Some(Layout::Columnar),
            "columnar-plain" => Some(Layout::ColumnarPlain),
            _ => None,
        }
    }
}

/// Writes a day's events into the warehouse as the log mover would leave
/// them: per-hour directories, `files_per_hour` part files each, records
/// only partially time-ordered (events are distributed round-robin, so each
/// file is ordered but the directory as a whole is interleaved).
///
/// This helper keeps the original row layout; [`write_client_events_layout`]
/// is the layout-aware entry point experiments migrate to.
pub fn write_client_events(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
) -> WarehouseResult<u64> {
    write_partitioned(warehouse, events, files_per_hour, |ev| {
        // Annotate every record so sealed blocks carry zone maps: timestamp
        // as the key dimension, event name as the tag dimension.
        let zone = Some((
            ev.timestamp.millis(),
            uli_warehouse::tag_hash(ev.name.as_str().as_bytes()),
        ));
        (CLIENT_EVENTS_CATEGORY.to_string(), ev.to_bytes(), zone)
    })
}

/// Layout-aware landing: same hour partitioning and round-robin part-file
/// assignment as [`write_client_events`], with the file format chosen by
/// `layout`. Columnar files carry the same per-group zone annotations the
/// row writer puts on blocks, and each builds its name dictionary from its
/// own events.
pub fn write_client_events_layout(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
    layout: Layout,
) -> WarehouseResult<u64> {
    let dictionary = match layout {
        Layout::Row => return write_client_events(warehouse, events, files_per_hour),
        Layout::Columnar => true,
        Layout::ColumnarPlain => false,
    };
    assert!(files_per_hour > 0);
    let mut buckets: BTreeMap<u64, Vec<Vec<ClientEvent>>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let files = buckets
            .entry(ev.timestamp.hour_index())
            .or_insert_with(|| vec![Vec::new(); files_per_hour]);
        files[i % files_per_hour].push(ev.clone());
    }
    let mut written = 0u64;
    for (hour, files) in buckets {
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
        for (i, bucket) in files.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let path = dir.child(&format!("part-{i:05}")).expect("valid name");
            written += uli_core::columnar::write_client_events_columnar(
                warehouse,
                &path,
                &bucket,
                dictionary,
                uli_core::columnar::DEFAULT_ROWS_PER_GROUP,
            )?;
        }
    }
    Ok(written)
}

/// Writes the same ground truth as application-specific logs: web traffic
/// to the JSON frontend category, search-page events to the TSV search
/// category, phone clients to the "natural language" mobile category. This
/// is the pre-unification world of §3.1 where "each application writes logs
/// using its own Scribe category".
pub fn write_legacy_events(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
) -> WarehouseResult<u64> {
    write_partitioned(warehouse, events, files_per_hour, |ev| {
        let cat = legacy_category_for(ev);
        // Legacy categories predate zone maps: no annotations, so their
        // blocks fail open (are always read) under zone-map pruning.
        (cat.category_name().to_string(), cat.encode(ev), None)
    })
}

/// Which legacy category an event would have been logged to.
pub fn legacy_category_for(ev: &ClientEvent) -> LegacyCategory {
    if ev.name.client() != "web" {
        LegacyCategory::MobileClient
    } else if ev.name.page() == "search" {
        LegacyCategory::SearchBackend
    } else {
        LegacyCategory::WebFrontend
    }
}

fn write_partitioned(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
    encode: impl Fn(&ClientEvent) -> (String, Vec<u8>, Option<(i64, u64)>),
) -> WarehouseResult<u64> {
    assert!(files_per_hour > 0);
    // (category, hour) → per-file buckets of (record, zone annotation).
    type Bucket = Vec<Vec<(Vec<u8>, Option<(i64, u64)>)>>;
    let mut buckets: BTreeMap<(String, u64), Bucket> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let (category, bytes, zone) = encode(ev);
        let hour = ev.timestamp.hour_index();
        let files = buckets
            .entry((category, hour))
            .or_insert_with(|| vec![Vec::new(); files_per_hour]);
        files[i % files_per_hour].push((bytes, zone));
    }
    let mut written = 0u64;
    for ((category, hour), files) in buckets {
        let dir = HourlyPartition::from_hour_index(&category, hour).main_dir();
        for (i, records) in files.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let path = dir.child(&format!("part-{i:05}")).expect("valid name");
            let mut w = warehouse.create(&path)?;
            for (r, zone) in &records {
                match zone {
                    Some((key, tag)) => w.append_record_annotated(r, *key, *tag),
                    None => w.append_record(r),
                }
                written += 1;
            }
            w.finish()?;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::session::day_dir;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            users: 50,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_day(&small_config(), 0);
        let b = generate_day(&small_config(), 0);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[0], b.events[0]);
        // Different day → different traffic.
        let c = generate_day(&small_config(), 1);
        assert_ne!(a.truth, c.truth);
    }

    #[test]
    fn truth_accounts_for_every_event_and_session() {
        let day = generate_day(&small_config(), 0);
        assert_eq!(day.truth.events as usize, day.events.len());
        let mut sessions: Vec<(&i64, &str)> = day
            .events
            .iter()
            .map(|e| (&e.user_id, e.session_id.as_str()))
            .collect();
        sessions.sort();
        sessions.dedup();
        assert_eq!(day.truth.sessions as usize, sessions.len());
        let by_client: u64 = day.truth.sessions_by_client.values().sum();
        assert_eq!(by_client, day.truth.sessions);
    }

    #[test]
    fn funnel_counts_decline() {
        let day = generate_day(
            &WorkloadConfig {
                users: 400,
                funnel_fraction: 0.5,
                ..Default::default()
            },
            0,
        );
        let counts = &day.truth.funnel_stage_counts;
        assert!(day.truth.funnel_sessions > 50);
        assert_eq!(counts[0], day.truth.funnel_sessions);
        for w in counts.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(counts[4] < counts[0]);
    }

    #[test]
    fn events_fall_inside_the_day() {
        let day = generate_day(&small_config(), 2);
        for ev in &day.events {
            assert_eq!(ev.timestamp.day_index(), 2);
        }
    }

    #[test]
    fn events_have_zipfian_skew() {
        let day = generate_day(&small_config(), 0);
        let mut counts: BTreeMap<&EventName, u64> = BTreeMap::new();
        for ev in &day.events {
            *counts.entry(&ev.name).or_insert(0) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Top event should dwarf the median one.
        let median = freq[freq.len() / 2];
        assert!(freq[0] > median * 5, "top {} median {}", freq[0], median);
    }

    #[test]
    fn write_client_events_partitions_by_hour() {
        let wh = Warehouse::new();
        let day = generate_day(&small_config(), 0);
        let written = write_client_events(&wh, &day.events, 4).unwrap();
        assert_eq!(written as usize, day.events.len());
        let files = wh
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap();
        assert!(files.len() > 4, "many hours × up to 4 files");
        // Directory-wide record count matches.
        let meta = wh.dir_meta(&day_dir(CLIENT_EVENTS_CATEGORY, 0)).unwrap();
        assert_eq!(meta.records, written);
    }

    #[test]
    fn columnar_layout_partitions_like_row_layout() {
        let day = generate_day(&small_config(), 0);
        let row = Warehouse::new();
        write_client_events(&row, &day.events, 4).unwrap();
        let col = Warehouse::new();
        let written = write_client_events_layout(&col, &day.events, 4, Layout::Columnar).unwrap();
        assert_eq!(written as usize, day.events.len());
        // Same directory shape: hour partitions and part-file names match.
        let row_files: Vec<String> = row
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap()
            .iter()
            .map(|f| f.as_str().to_string())
            .collect();
        let col_files: Vec<String> = col
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap()
            .iter()
            .map(|f| f.as_str().to_string())
            .collect();
        assert_eq!(row_files, col_files);
        // Every file sniffs columnar, and the events read back exactly.
        let mut read_back = 0usize;
        for f in col
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap()
        {
            assert!(uli_warehouse::sniff_columnar(&col, &f).unwrap().is_some());
            let file = uli_warehouse::ColumnarFile::open(&col, &f).unwrap();
            let all = vec![true; file.columns()];
            for g in 0..file.group_count() {
                let group = file.read_group(g, &all).unwrap();
                for r in 0..group.rows() {
                    assert!(
                        uli_core::columnar::client_event_from_group(&file, &group, r).is_some()
                    );
                    read_back += 1;
                }
            }
        }
        assert_eq!(read_back, day.events.len());
    }

    #[test]
    fn layout_flag_parses() {
        assert_eq!(Layout::parse("row"), Some(Layout::Row));
        assert_eq!(Layout::parse("columnar"), Some(Layout::Columnar));
        assert_eq!(Layout::parse("columnar-plain"), Some(Layout::ColumnarPlain));
        assert_eq!(Layout::parse("parquet"), None);
        assert_eq!(Layout::default(), Layout::Columnar);
    }

    #[test]
    fn legacy_routing_covers_every_event_exactly_once() {
        let wh = Warehouse::new();
        let day = generate_day(&small_config(), 0);
        let written = write_legacy_events(&wh, &day.events, 2).unwrap();
        assert_eq!(written as usize, day.events.len());
        let mut total = 0;
        for cat in LegacyCategory::ALL {
            if let Ok(meta) = wh.dir_meta(&day_dir(cat.category_name(), 0)) {
                total += meta.records;
            }
        }
        assert_eq!(total as usize, day.events.len());
    }

    #[test]
    fn legacy_records_decode_with_their_category() {
        let wh = Warehouse::new();
        let day = generate_day(&small_config(), 0);
        write_legacy_events(&wh, &day.events, 1).unwrap();
        for cat in LegacyCategory::ALL {
            let dir = day_dir(cat.category_name(), 0);
            let Ok(files) = wh.list_files_recursive(&dir) else {
                continue;
            };
            for f in files.iter().take(1) {
                for rec in wh.open(f).unwrap().read_all().unwrap().iter().take(10) {
                    assert!(cat.decode(rec).is_some(), "{cat} record must decode");
                }
            }
        }
    }

    #[test]
    fn logged_out_sessions_have_user_zero() {
        let day = generate_day(
            &WorkloadConfig {
                users: 100,
                logged_out_fraction: 0.5,
                ..Default::default()
            },
            0,
        );
        let zero = day.events.iter().filter(|e| e.user_id == 0).count();
        assert!(zero > 0);
        assert!(zero < day.events.len());
    }
}
