//! Day-scale workload assembly.
//!
//! Produces whole days of client events with known ground truth (session
//! counts, funnel stage counts, per-client mix) and writes them into the
//! warehouse in the paper's layout: hourly partitions, several part files
//! per hour, records only *partially* time-ordered within a file (§2).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uli_core::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
use uli_core::event::{EventInitiator, EventName};
use uli_core::legacy::LegacyCategory;
use uli_core::time::{Timestamp, MS_PER_DAY};
use uli_thrift::ThriftRecord;
use uli_warehouse::{HourlyPartition, RecordFileWriter, Warehouse, WarehouseResult};

use crate::behavior::BehaviorModel;
use crate::funnels::{signup_funnel, FunnelSpec};
use crate::universe::{build_universe, UniverseConfig};

/// Everything that shapes a generated day.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed; the day index is folded in, so multi-day runs differ.
    pub seed: u64,
    /// Number of distinct users.
    pub users: u64,
    /// Mean sessions per user per day (Poisson).
    pub mean_sessions_per_user: f64,
    /// Mean events per session (geometric, minimum 1).
    pub mean_session_len: f64,
    /// Zipf skew of base event frequencies.
    pub zipf_alpha: f64,
    /// Universe shape.
    pub universe: UniverseConfig,
    /// Client mix, parallel to `universe.clients` (normalized internally).
    pub client_weights: Vec<f64>,
    /// Funnel to inject, if any.
    pub funnel: Option<FunnelSpec>,
    /// Fraction of *web* sessions that are funnel sessions.
    pub funnel_fraction: f64,
    /// Fraction of sessions belonging to logged-out visitors (user id 0).
    pub logged_out_fraction: f64,
    /// Mean gap between successive events within a session, milliseconds.
    pub mean_event_gap_ms: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x7717_7e4a,
            users: 200,
            mean_sessions_per_user: 2.0,
            mean_session_len: 12.0,
            zipf_alpha: 1.1,
            universe: UniverseConfig::default(),
            client_weights: vec![0.5, 0.3, 0.2],
            funnel: Some(signup_funnel()),
            funnel_fraction: 0.12,
            logged_out_fraction: 0.15,
            mean_event_gap_ms: 20_000.0,
        }
    }
}

/// What the generator knows to be true — experiments recover these.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// Sessions generated.
    pub sessions: u64,
    /// Events generated.
    pub events: u64,
    /// Sessions that entered the funnel.
    pub funnel_sessions: u64,
    /// Sessions reaching each funnel stage (len = stages).
    pub funnel_stage_counts: Vec<u64>,
    /// Sessions per client.
    pub sessions_by_client: BTreeMap<String, u64>,
    /// Distinct event names that occurred.
    pub distinct_events: u64,
}

/// A generated day.
#[derive(Debug, Clone)]
pub struct DayWorkload {
    /// All events, in generation order (NOT globally time-sorted).
    pub events: Vec<ClientEvent>,
    /// The ground truth.
    pub truth: GroundTruth,
}

fn poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    // Knuth's method; fine for the small means used here.
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological means
        }
    }
}

fn ip_of_user(user: u64) -> String {
    let h = user.wrapping_mul(0x9e3779b97f4a7c15);
    format!(
        "{}.{}.{}.{}",
        (h >> 24) & 0xff,
        (h >> 16) & 0xff,
        (h >> 8) & 0xff,
        h & 0xff
    )
}

/// Builds one fully-decorated event. RNG call order is load-bearing: the
/// golden generator hashes pin the exact draw sequence, so any reordering
/// here changes every downstream golden.
fn emit_event(
    name: EventName,
    t: i64,
    user_id: i64,
    session_id: &str,
    ip: &str,
    rng: &mut StdRng,
) -> ClientEvent {
    let initiator = if name.action() == "impression" && rng.gen::<f64>() < 0.3 {
        EventInitiator::CLIENT_APP
    } else {
        EventInitiator::CLIENT_USER
    };
    let referrer = format!("/{}", name.page());
    let mut ev = ClientEvent::new(
        initiator,
        name,
        user_id,
        session_id.to_string(),
        ip.to_string(),
        Timestamp(t),
    );
    // Client events are verbose — the §4.1 downside the
    // sequences exist to offset. Every event carries the
    // boilerplate a real client attaches.
    const USER_AGENTS: [&str; 6] = [
        "Mozilla/5.0 (Windows NT 6.1; rv:14.0) Gecko/20100101 Firefox/14.0",
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_7) AppleWebKit/536 Safari/536",
        "Mozilla/5.0 (iPhone; CPU iPhone OS 5_1 like Mac OS X) Mobile/9B176",
        "TwitterAndroid/3.2 (Linux; Android 4.0.4; GT-I9100)",
        "Mozilla/5.0 (X11; Linux x86_64) Chrome/21.0.1180.57",
        "Mozilla/5.0 (Windows NT 5.1) Chrome/20.0.1132.57 Safari/536.11",
    ];
    ev = ev
        .with_detail("client_version", "4.1.2")
        .with_detail(
            "user_agent",
            USER_AGENTS[rng.gen_range(0..USER_AGENTS.len())],
        )
        .with_detail("lang", "en")
        .with_detail("referrer", referrer)
        // High-entropy request id: the incompressible part
        // of real log payloads (trace ids, URLs, tweet ids).
        .with_detail(
            "request_id",
            format!("{:016x}{:016x}", rng.gen::<u64>(), rng.gen::<u64>()),
        )
        .with_detail("page_load_ms", format!("{}", rng.gen_range(40..2500)));
    match ev.name.action() {
        "click" | "profile_click" | "follow" => {
            ev = ev
                .with_detail("target_id", format!("{}", rng.gen::<u32>()))
                .with_detail(
                    "target_url",
                    format!("https://t.co/{:010x}", rng.gen::<u64>() & 0xff_ffff_ffff),
                )
                .with_detail("rank", format!("{}", rng.gen_range(0..20)));
        }
        "impression" => {
            ev = ev.with_detail("tweet_id", format!("{}", rng.gen::<u64>()));
        }
        _ => {}
    }
    ev
}

/// Streaming day generator: yields the exact event sequence of the old
/// batch generator without ever materializing the day. Peak state is one
/// buffered session (tens of events) plus the per-client Markov models —
/// a million-user day streams through this in O(session) memory.
///
/// [`GroundTruth`] accumulates as events are drawn; it is complete (and
/// includes `distinct_events`) only once the iterator is exhausted.
pub struct DayStream {
    config: WorkloadConfig,
    day_index: u64,
    rng: StdRng,
    per_client: Vec<(String, BehaviorModel)>,
    weight_total: f64,
    day_start: i64,
    truth: GroundTruth,
    distinct: BTreeSet<EventName>,
    /// User whose sessions are currently being drawn (1-based; 0 = before
    /// the first user).
    user: u64,
    sessions_left: u64,
    session_index: u64,
    buffered: VecDeque<ClientEvent>,
}

impl DayStream {
    /// Starts a day. Setup mirrors the old batch generator exactly so the
    /// RNG stream — and therefore every emitted byte — is unchanged.
    pub fn new(config: &WorkloadConfig, day_index: u64) -> DayStream {
        assert_eq!(
            config.client_weights.len(),
            config.universe.clients.len(),
            "one weight per client"
        );
        let rng = StdRng::seed_from_u64(config.seed ^ (day_index.wrapping_mul(0x9e37_79b9)));
        let universe = build_universe(&config.universe);

        // Per-client models over each client's slice of the universe. Funnel
        // stages stay OUT of the Markov support: only explicit funnel sessions
        // emit them, so funnel ground truth is exactly recoverable.
        let mut per_client: Vec<(String, BehaviorModel)> = Vec::new();
        for client in &config.universe.clients {
            let slice: Vec<EventName> = universe
                .iter()
                .filter(|n| n.client() == *client)
                .cloned()
                .collect();
            per_client.push((
                client.to_string(),
                BehaviorModel::with_default_boosts(slice, config.zipf_alpha),
            ));
        }
        let weight_total: f64 = config.client_weights.iter().sum();
        let truth = GroundTruth {
            funnel_stage_counts: config
                .funnel
                .as_ref()
                .map(|f| vec![0; f.len()])
                .unwrap_or_default(),
            ..Default::default()
        };
        DayStream {
            config: config.clone(),
            day_index,
            rng,
            per_client,
            weight_total,
            day_start: day_index as i64 * MS_PER_DAY,
            truth,
            distinct: BTreeSet::new(),
            user: 0,
            sessions_left: 0,
            session_index: 0,
            buffered: VecDeque::new(),
        }
    }

    /// The ground truth accumulated so far. Complete only after the
    /// iterator has returned `None`; [`Self::into_truth`] is the usual way
    /// to take it.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Consumes the stream and returns the ground truth for everything it
    /// yielded (the full day iff the stream was exhausted).
    pub fn into_truth(mut self) -> GroundTruth {
        self.truth.distinct_events = self.distinct.len() as u64;
        self.truth
    }

    /// Generates the next session for the current user into `buffered`.
    fn gen_session(&mut self) {
        let user = self.user;
        let s = self.session_index;
        // Pick a client by weight.
        let mut pick = self.rng.gen::<f64>() * self.weight_total;
        let mut client_idx = 0;
        for (i, w) in self.config.client_weights.iter().enumerate() {
            if pick < *w {
                client_idx = i;
                break;
            }
            pick -= w;
            client_idx = i;
        }
        let (client, model) = &self.per_client[client_idx];

        let logged_out = self.rng.gen::<f64>() < self.config.logged_out_fraction;
        let user_id = if logged_out { 0 } else { user as i64 };
        let session_id = format!("s-{user}-{}-{s}", self.day_index);
        let ip = ip_of_user(user);
        // Sessions start early enough that even long ones stay within
        // the day (keeps ground truth exact for day-scoped jobs).
        let start = self.day_start + (self.rng.gen::<f64>() * (MS_PER_DAY as f64 * 0.9)) as i64;

        let is_funnel = *client == "web"
            && self.config.funnel.is_some()
            && self.rng.gen::<f64>() < self.config.funnel_fraction;

        let mut t = start;
        let mut emitted = 0u64;
        if is_funnel {
            let funnel = self.config.funnel.as_ref().expect("checked above");
            let depth = funnel.sample_depth(&mut self.rng);
            self.truth.funnel_sessions += 1;
            for (i, stage) in funnel.stages.iter().take(depth).enumerate() {
                self.truth.funnel_stage_counts[i] += 1;
                let ev = emit_event(stage.clone(), t, user_id, &session_id, &ip, &mut self.rng);
                self.distinct.insert(ev.name.clone());
                self.buffered.push_back(ev);
                emitted += 1;
                t += 1 + (-(self.rng.gen::<f64>()).ln() * self.config.mean_event_gap_ms) as i64;
            }
        } else {
            // Geometric session length with the configured mean.
            let cont = 1.0 - 1.0 / self.config.mean_session_len.max(1.0);
            let mut cur = model.start(&mut self.rng);
            loop {
                let ev = emit_event(
                    model.universe()[cur].clone(),
                    t,
                    user_id,
                    &session_id,
                    &ip,
                    &mut self.rng,
                );
                self.distinct.insert(ev.name.clone());
                self.buffered.push_back(ev);
                emitted += 1;
                if self.rng.gen::<f64>() >= cont {
                    break;
                }
                cur = model.step(cur, &mut self.rng);
                t += 1 + (-(self.rng.gen::<f64>()).ln() * self.config.mean_event_gap_ms) as i64;
            }
        }
        let client = client.clone();
        self.truth.sessions += 1;
        self.truth.events += emitted;
        *self.truth.sessions_by_client.entry(client).or_insert(0) += 1;
    }
}

impl Iterator for DayStream {
    type Item = ClientEvent;

    fn next(&mut self) -> Option<ClientEvent> {
        loop {
            if let Some(ev) = self.buffered.pop_front() {
                return Some(ev);
            }
            if self.sessions_left > 0 {
                self.gen_session();
                self.sessions_left -= 1;
                self.session_index += 1;
                continue;
            }
            if self.user < self.config.users {
                self.user += 1;
                self.session_index = 0;
                self.sessions_left = poisson(self.config.mean_sessions_per_user, &mut self.rng);
                continue;
            }
            self.truth.distinct_events = self.distinct.len() as u64;
            return None;
        }
    }
}

/// Generates one day of traffic by draining a [`DayStream`]. Kept for
/// callers that want the whole day in memory; large-scale paths should
/// iterate the stream directly.
pub fn generate_day(config: &WorkloadConfig, day_index: u64) -> DayWorkload {
    let mut stream = DayStream::new(config, day_index);
    let events: Vec<ClientEvent> = stream.by_ref().collect();
    DayWorkload {
        events,
        truth: stream.into_truth(),
    }
}

/// Named workload sizes for the scale benchmark (`--scale` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// CI-sized: 120 users, a couple thousand events.
    Smoke,
    /// The historical default config: 200 users.
    #[default]
    Default,
    /// A million users, ~1.2M sessions, >10M events — the paper's
    /// "hundreds of millions of users" day shrunk to one machine.
    OneM,
}

impl Scale {
    /// Parses a `--scale` flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "1m" => Some(Scale::OneM),
            _ => None,
        }
    }

    /// The flag spelling, for report labels.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::OneM => "1m",
        }
    }

    /// The workload this scale generates. Only population knobs vary;
    /// everything else keeps the default shape so per-event statistics
    /// are comparable across scales.
    pub fn config(self) -> WorkloadConfig {
        match self {
            Scale::Smoke => WorkloadConfig {
                users: 120,
                ..Default::default()
            },
            Scale::Default => WorkloadConfig::default(),
            Scale::OneM => WorkloadConfig {
                users: 1_000_000,
                mean_sessions_per_user: 1.2,
                mean_session_len: 9.0,
                ..Default::default()
            },
        }
    }
}

/// The warehouse layout a client-events day is landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// One Thrift record per event — the pre-columnar format, kept
    /// writable for migration tests and readable forever.
    Row,
    /// Columnar v2 with a dictionary-encoded name column: the default
    /// landing format.
    #[default]
    Columnar,
    /// Columnar v2 without the name dictionary (ablation arm).
    ColumnarPlain,
}

impl Layout {
    /// Parses a `--layout` flag value.
    pub fn parse(s: &str) -> Option<Layout> {
        match s {
            "row" => Some(Layout::Row),
            "columnar" => Some(Layout::Columnar),
            "columnar-plain" => Some(Layout::ColumnarPlain),
            _ => None,
        }
    }
}

/// Writes a day's events into the warehouse as the log mover would leave
/// them: per-hour directories, `files_per_hour` part files each, records
/// only partially time-ordered (events are distributed round-robin, so each
/// file is ordered but the directory as a whole is interleaved).
///
/// This helper keeps the original row layout; [`write_client_events_layout`]
/// is the layout-aware entry point experiments migrate to.
pub fn write_client_events(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
) -> WarehouseResult<u64> {
    write_partitioned(warehouse, events, files_per_hour, |ev| {
        // Annotate every record so sealed blocks carry zone maps: timestamp
        // as the key dimension, event name as the tag dimension.
        let zone = Some((
            ev.timestamp.millis(),
            uli_warehouse::tag_hash(ev.name.as_str().as_bytes()),
        ));
        (CLIENT_EVENTS_CATEGORY.to_string(), ev.to_bytes(), zone)
    })
}

/// Layout-aware landing: same hour partitioning and round-robin part-file
/// assignment as [`write_client_events`], with the file format chosen by
/// `layout`. Columnar files carry the same per-group zone annotations the
/// row writer puts on blocks, and each builds its name dictionary from its
/// own events.
pub fn write_client_events_layout(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
    layout: Layout,
) -> WarehouseResult<u64> {
    let dictionary = match layout {
        Layout::Row => return write_client_events(warehouse, events, files_per_hour),
        Layout::Columnar => true,
        Layout::ColumnarPlain => false,
    };
    assert!(files_per_hour > 0);
    let mut buckets: BTreeMap<u64, Vec<Vec<ClientEvent>>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let files = buckets
            .entry(ev.timestamp.hour_index())
            .or_insert_with(|| vec![Vec::new(); files_per_hour]);
        files[i % files_per_hour].push(ev.clone());
    }
    let mut written = 0u64;
    for (hour, files) in buckets {
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
        for (i, bucket) in files.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let path = dir.child(&format!("part-{i:05}")).expect("valid name");
            written += uli_core::columnar::write_client_events_columnar(
                warehouse,
                &path,
                &bucket,
                dictionary,
                uli_core::columnar::DEFAULT_ROWS_PER_GROUP,
            )?;
        }
    }
    Ok(written)
}

/// Streaming equivalent of [`write_client_events`]: lands events from an
/// iterator without ever holding the day in a `Vec`. Produces byte-identical
/// warehouse files — same hour partitions, same round-robin part-file
/// assignment by global event index, same zone annotations — while keeping
/// at most one open writer per (hour, slot) pair (≤ 24 × `files_per_hour`),
/// independent of day size.
pub fn land_day_stream(
    warehouse: &Warehouse,
    events: impl IntoIterator<Item = ClientEvent>,
    files_per_hour: usize,
) -> WarehouseResult<u64> {
    assert!(files_per_hour > 0);
    let mut writers: BTreeMap<(u64, usize), RecordFileWriter> = BTreeMap::new();
    let mut written = 0u64;
    for (i, ev) in events.into_iter().enumerate() {
        let hour = ev.timestamp.hour_index();
        let slot = i % files_per_hour;
        let w = match writers.entry((hour, slot)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
                let path = dir.child(&format!("part-{slot:05}")).expect("valid name");
                e.insert(warehouse.create(&path)?)
            }
        };
        w.append_record_annotated(
            &ev.to_bytes(),
            ev.timestamp.millis(),
            uli_warehouse::tag_hash(ev.name.as_str().as_bytes()),
        );
        written += 1;
    }
    for (_, w) in writers {
        w.finish()?;
    }
    Ok(written)
}

/// Writes the same ground truth as application-specific logs: web traffic
/// to the JSON frontend category, search-page events to the TSV search
/// category, phone clients to the "natural language" mobile category. This
/// is the pre-unification world of §3.1 where "each application writes logs
/// using its own Scribe category".
pub fn write_legacy_events(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
) -> WarehouseResult<u64> {
    write_partitioned(warehouse, events, files_per_hour, |ev| {
        let cat = legacy_category_for(ev);
        // Legacy categories predate zone maps: no annotations, so their
        // blocks fail open (are always read) under zone-map pruning.
        (cat.category_name().to_string(), cat.encode(ev), None)
    })
}

/// Which legacy category an event would have been logged to.
pub fn legacy_category_for(ev: &ClientEvent) -> LegacyCategory {
    if ev.name.client() != "web" {
        LegacyCategory::MobileClient
    } else if ev.name.page() == "search" {
        LegacyCategory::SearchBackend
    } else {
        LegacyCategory::WebFrontend
    }
}

fn write_partitioned(
    warehouse: &Warehouse,
    events: &[ClientEvent],
    files_per_hour: usize,
    encode: impl Fn(&ClientEvent) -> (String, Vec<u8>, Option<(i64, u64)>),
) -> WarehouseResult<u64> {
    assert!(files_per_hour > 0);
    // (category, hour) → per-file buckets of (record, zone annotation).
    type Bucket = Vec<Vec<(Vec<u8>, Option<(i64, u64)>)>>;
    let mut buckets: BTreeMap<(String, u64), Bucket> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let (category, bytes, zone) = encode(ev);
        let hour = ev.timestamp.hour_index();
        let files = buckets
            .entry((category, hour))
            .or_insert_with(|| vec![Vec::new(); files_per_hour]);
        files[i % files_per_hour].push((bytes, zone));
    }
    let mut written = 0u64;
    for ((category, hour), files) in buckets {
        let dir = HourlyPartition::from_hour_index(&category, hour).main_dir();
        for (i, records) in files.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let path = dir.child(&format!("part-{i:05}")).expect("valid name");
            let mut w = warehouse.create(&path)?;
            for (r, zone) in &records {
                match zone {
                    Some((key, tag)) => w.append_record_annotated(r, *key, *tag),
                    None => w.append_record(r),
                }
                written += 1;
            }
            w.finish()?;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::session::day_dir;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            users: 50,
            ..Default::default()
        }
    }

    /// FNV-1a 64 over every event's encoded bytes, in stream order.
    fn fingerprint(events: impl Iterator<Item = ClientEvent>) -> (u64, u64) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut n = 0u64;
        for ev in events {
            for b in ev.to_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            n += 1;
        }
        (h, n)
    }

    /// These hashes were computed from the batch generator BEFORE the
    /// streaming refactor. They pin two things at once: the refactor
    /// changed no emitted byte, and future edits can't silently shift
    /// the RNG draw order (`--scale smoke` goldens depend on it).
    #[test]
    fn golden_event_stream_hashes_are_stable() {
        let smoke = Scale::Smoke.config();
        let (h, n) = fingerprint(DayStream::new(&smoke, 0));
        assert_eq!((h, n), (0x6896_890f_d9fc_40e3, 2657), "smoke scale drifted");

        let default = Scale::Default.config();
        let mut stream = DayStream::new(&default, 0);
        let (h, n) = fingerprint(stream.by_ref());
        assert_eq!(
            (h, n),
            (0xaf2c_2183_83dd_aa2b, 4410),
            "default scale drifted"
        );
        assert_eq!(stream.into_truth().sessions, 382);
    }

    #[test]
    fn streaming_matches_batch_events_and_truth() {
        let config = small_config();
        let batch = generate_day(&config, 0);
        let mut stream = DayStream::new(&config, 0);
        let streamed: Vec<ClientEvent> = stream.by_ref().collect();
        assert_eq!(streamed, batch.events);
        assert_eq!(stream.into_truth(), batch.truth);
    }

    #[test]
    fn stream_is_identical_for_any_chunking() {
        // Pausing and resuming the stream at arbitrary points must not
        // change what it yields: the suspended-session state machine has
        // no hidden coupling to consumption pattern.
        let config = small_config();
        let reference: Vec<ClientEvent> = DayStream::new(&config, 0).collect();
        for chunk in [1usize, 3, 7, 100, 2500] {
            let mut stream = DayStream::new(&config, 0);
            let mut got = Vec::new();
            loop {
                let piece: Vec<ClientEvent> = stream.by_ref().take(chunk).collect();
                if piece.is_empty() {
                    break;
                }
                got.extend(piece);
            }
            assert_eq!(got, reference, "chunk size {chunk} changed the stream");
        }
    }

    #[test]
    fn streamed_landing_matches_batch_landing_byte_for_byte() {
        let config = small_config();
        let day = generate_day(&config, 0);
        let batch_wh = Warehouse::new();
        write_client_events(&batch_wh, &day.events, 4).unwrap();
        let stream_wh = Warehouse::new();
        let written = land_day_stream(&stream_wh, DayStream::new(&config, 0), 4).unwrap();
        assert_eq!(written as usize, day.events.len());
        let files = batch_wh
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap();
        let stream_files = stream_wh
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap();
        assert_eq!(files, stream_files);
        for f in &files {
            let a = batch_wh.open(f).unwrap().read_all().unwrap();
            let b = stream_wh.open(f).unwrap().read_all().unwrap();
            assert_eq!(a, b, "{} diverged", f.as_str());
        }
    }

    #[test]
    fn scale_flag_parses_and_sizes_monotonically() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("1m"), Some(Scale::OneM));
        assert_eq!(Scale::parse("2xl"), None);
        assert_eq!(Scale::default().label(), "default");
        assert_eq!(Scale::OneM.config().users, 1_000_000);
        assert!(Scale::Smoke.config().users < Scale::Default.config().users);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_day(&small_config(), 0);
        let b = generate_day(&small_config(), 0);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[0], b.events[0]);
        // Different day → different traffic.
        let c = generate_day(&small_config(), 1);
        assert_ne!(a.truth, c.truth);
    }

    #[test]
    fn truth_accounts_for_every_event_and_session() {
        let day = generate_day(&small_config(), 0);
        assert_eq!(day.truth.events as usize, day.events.len());
        let mut sessions: Vec<(&i64, &str)> = day
            .events
            .iter()
            .map(|e| (&e.user_id, e.session_id.as_str()))
            .collect();
        sessions.sort();
        sessions.dedup();
        assert_eq!(day.truth.sessions as usize, sessions.len());
        let by_client: u64 = day.truth.sessions_by_client.values().sum();
        assert_eq!(by_client, day.truth.sessions);
    }

    #[test]
    fn funnel_counts_decline() {
        let day = generate_day(
            &WorkloadConfig {
                users: 400,
                funnel_fraction: 0.5,
                ..Default::default()
            },
            0,
        );
        let counts = &day.truth.funnel_stage_counts;
        assert!(day.truth.funnel_sessions > 50);
        assert_eq!(counts[0], day.truth.funnel_sessions);
        for w in counts.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(counts[4] < counts[0]);
    }

    #[test]
    fn events_fall_inside_the_day() {
        let day = generate_day(&small_config(), 2);
        for ev in &day.events {
            assert_eq!(ev.timestamp.day_index(), 2);
        }
    }

    #[test]
    fn events_have_zipfian_skew() {
        let day = generate_day(&small_config(), 0);
        let mut counts: BTreeMap<&EventName, u64> = BTreeMap::new();
        for ev in &day.events {
            *counts.entry(&ev.name).or_insert(0) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Top event should dwarf the median one.
        let median = freq[freq.len() / 2];
        assert!(freq[0] > median * 5, "top {} median {}", freq[0], median);
    }

    #[test]
    fn write_client_events_partitions_by_hour() {
        let wh = Warehouse::new();
        let day = generate_day(&small_config(), 0);
        let written = write_client_events(&wh, &day.events, 4).unwrap();
        assert_eq!(written as usize, day.events.len());
        let files = wh
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap();
        assert!(files.len() > 4, "many hours × up to 4 files");
        // Directory-wide record count matches.
        let meta = wh.dir_meta(&day_dir(CLIENT_EVENTS_CATEGORY, 0)).unwrap();
        assert_eq!(meta.records, written);
    }

    #[test]
    fn columnar_layout_partitions_like_row_layout() {
        let day = generate_day(&small_config(), 0);
        let row = Warehouse::new();
        write_client_events(&row, &day.events, 4).unwrap();
        let col = Warehouse::new();
        let written = write_client_events_layout(&col, &day.events, 4, Layout::Columnar).unwrap();
        assert_eq!(written as usize, day.events.len());
        // Same directory shape: hour partitions and part-file names match.
        let row_files: Vec<String> = row
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap()
            .iter()
            .map(|f| f.as_str().to_string())
            .collect();
        let col_files: Vec<String> = col
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap()
            .iter()
            .map(|f| f.as_str().to_string())
            .collect();
        assert_eq!(row_files, col_files);
        // Every file sniffs columnar, and the events read back exactly.
        let mut read_back = 0usize;
        for f in col
            .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
            .unwrap()
        {
            assert!(uli_warehouse::sniff_columnar(&col, &f).unwrap().is_some());
            let file = uli_warehouse::ColumnarFile::open(&col, &f).unwrap();
            let all = vec![true; file.columns()];
            for g in 0..file.group_count() {
                let group = file.read_group(g, &all).unwrap();
                for r in 0..group.rows() {
                    assert!(
                        uli_core::columnar::client_event_from_group(&file, &group, r).is_some()
                    );
                    read_back += 1;
                }
            }
        }
        assert_eq!(read_back, day.events.len());
    }

    #[test]
    fn layout_flag_parses() {
        assert_eq!(Layout::parse("row"), Some(Layout::Row));
        assert_eq!(Layout::parse("columnar"), Some(Layout::Columnar));
        assert_eq!(Layout::parse("columnar-plain"), Some(Layout::ColumnarPlain));
        assert_eq!(Layout::parse("parquet"), None);
        assert_eq!(Layout::default(), Layout::Columnar);
    }

    #[test]
    fn legacy_routing_covers_every_event_exactly_once() {
        let wh = Warehouse::new();
        let day = generate_day(&small_config(), 0);
        let written = write_legacy_events(&wh, &day.events, 2).unwrap();
        assert_eq!(written as usize, day.events.len());
        let mut total = 0;
        for cat in LegacyCategory::ALL {
            if let Ok(meta) = wh.dir_meta(&day_dir(cat.category_name(), 0)) {
                total += meta.records;
            }
        }
        assert_eq!(total as usize, day.events.len());
    }

    #[test]
    fn legacy_records_decode_with_their_category() {
        let wh = Warehouse::new();
        let day = generate_day(&small_config(), 0);
        write_legacy_events(&wh, &day.events, 1).unwrap();
        for cat in LegacyCategory::ALL {
            let dir = day_dir(cat.category_name(), 0);
            let Ok(files) = wh.list_files_recursive(&dir) else {
                continue;
            };
            for f in files.iter().take(1) {
                for rec in wh.open(f).unwrap().read_all().unwrap().iter().take(10) {
                    assert!(cat.decode(rec).is_some(), "{cat} record must decode");
                }
            }
        }
    }

    #[test]
    fn logged_out_sessions_have_user_zero() {
        let day = generate_day(
            &WorkloadConfig {
                users: 100,
                logged_out_fraction: 0.5,
                ..Default::default()
            },
            0,
        );
        let zero = day.events.iter().filter(|e| e.user_id == 0).count();
        assert!(zero > 0);
        assert!(zero < day.events.len());
    }
}
