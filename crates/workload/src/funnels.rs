//! Funnel flows with configured abandonment (§5.3).
//!
//! "An important one is the signup flow, which is the sequence of steps
//! taken by a user to join the service." A [`FunnelSpec`] defines the stage
//! events and per-stage continuation probabilities; the generator injects
//! funnel sessions accordingly, so experiments know the true abandonment
//! profile they should recover.

use rand::Rng;

use uli_core::event::EventName;

/// A multi-step flow.
#[derive(Debug, Clone)]
pub struct FunnelSpec {
    /// Human name, e.g. `signup`.
    pub name: &'static str,
    /// The stage events in order.
    pub stages: Vec<EventName>,
    /// `continue_probability[i]` = P(reach stage i+1 | reached stage i);
    /// length = stages.len() - 1.
    pub continue_probability: Vec<f64>,
}

impl FunnelSpec {
    /// Validates the shape.
    pub fn new(
        name: &'static str,
        stages: Vec<EventName>,
        continue_probability: Vec<f64>,
    ) -> FunnelSpec {
        assert!(stages.len() >= 2, "a funnel needs at least two stages");
        assert_eq!(continue_probability.len(), stages.len() - 1);
        for p in &continue_probability {
            assert!((0.0..=1.0).contains(p));
        }
        FunnelSpec {
            name,
            stages,
            continue_probability,
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Funnels are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples how many stages a session completes (1..=len).
    pub fn sample_depth<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut depth = 1;
        for p in &self.continue_probability {
            if rng.gen::<f64>() < *p {
                depth += 1;
            } else {
                break;
            }
        }
        depth
    }

    /// Expected number of sessions reaching each stage out of `n` entering.
    pub fn expected_counts(&self, n: u64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        let mut p = n as f64;
        out.push(p);
        for cp in &self.continue_probability {
            p *= cp;
            out.push(p);
        }
        out
    }
}

/// The five-stage signup flow on the web client: landing impression, form
/// submit, interest picks, suggested follows, first tweet view.
pub fn signup_funnel() -> FunnelSpec {
    let stage = |section: &str, component: &str, element: &str, action: &str| {
        EventName::from_components(["web", "signup", section, component, element, action])
            .expect("static stage names are valid")
    };
    FunnelSpec::new(
        "signup",
        vec![
            stage("landing", "landing", "form", "impression"),
            stage("landing", "landing", "form", "submit"),
            stage("interests", "interests", "picker", "select"),
            stage("suggestions", "suggestions", "who_to_follow", "follow"),
            // Completing signup lands the user on the real home timeline —
            // the same event name ordinary traffic produces. Exact funnel
            // recovery still holds because stages 1–4 are signup-exclusive.
            EventName::parse("web:home:home:stream:tweet:impression")
                .expect("static name is valid"),
        ],
        vec![0.61, 0.72, 0.55, 0.80],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn signup_funnel_shape() {
        let f = signup_funnel();
        assert_eq!(f.len(), 5);
        assert_eq!(f.stages[0].page(), "signup");
        assert_eq!(f.stages[4].page(), "home");
    }

    #[test]
    fn sampled_depths_match_expectation() {
        let f = signup_funnel();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000u64;
        let mut reached = vec![0u64; f.len()];
        for _ in 0..n {
            let d = f.sample_depth(&mut rng);
            for slot in reached.iter_mut().take(d) {
                *slot += 1;
            }
        }
        let expected = f.expected_counts(n);
        for (stage, (&got, want)) in reached.iter().zip(&expected).enumerate() {
            let rel = (got as f64 - want).abs() / want;
            assert!(rel < 0.05, "stage {stage}: got {got}, want {want:.0}");
        }
    }

    #[test]
    fn expected_counts_decline_monotonically() {
        let f = signup_funnel();
        let e = f.expected_counts(1000);
        for w in e.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(e[0], 1000.0);
    }

    #[test]
    #[should_panic(expected = "two stages")]
    fn single_stage_funnel_rejected() {
        let n = EventName::parse("web:a:b:c:d:x").unwrap();
        FunnelSpec::new("bad", vec![n], vec![]);
    }
}
