//! The synthetic event universe.
//!
//! Names follow the paper's six-level scheme and its "consistent design
//! language … across different clients" (§3.2): every client shares the
//! same page/section structure, so `*:profile_click`-style cross-client
//! patterns have something to match.

use uli_core::event::EventName;

/// Controls the size and shape of the universe.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Client applications.
    pub clients: Vec<&'static str>,
    /// How many of the page templates to use (1..=5).
    pub pages: usize,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            clients: vec!["web", "iphone", "android"],
            pages: 4,
        }
    }
}

/// Structural templates: page → sections → (component, element, actions).
/// Modeled on the paper's examples (home/mentions/retweets/searches/
/// suggestions, who-to-follow, search results, discovery).
const PAGES: [(&str, &[&str]); 5] = [
    ("home", &["home", "mentions", "retweets", "searches"]),
    ("profile", &["tweets", "following", "followers"]),
    ("discover", &["trends", "activity"]),
    ("search", &["results", "people"]),
    ("who_to_follow", &["suggestions", "interests"]),
];

const WIDGETS: [(&str, &str, &[&str]); 5] = [
    (
        "stream",
        "tweet",
        &["impression", "click", "expand", "retweet", "favorite"],
    ),
    ("stream", "avatar", &["impression", "profile_click"]),
    ("search_box", "query", &["focus", "submit"]),
    (
        "suggestion_box",
        "who_to_follow",
        &["impression", "click", "follow"],
    ),
    ("detail", "permalink", &["impression", "click"]),
];

/// Builds the deterministic event universe for a config.
pub fn build_universe(config: &UniverseConfig) -> Vec<EventName> {
    let mut out = Vec::new();
    let pages = &PAGES[..config.pages.clamp(1, PAGES.len())];
    for client in &config.clients {
        for (page, sections) in pages {
            for section in *sections {
                for (component, element, actions) in &WIDGETS {
                    for action in *actions {
                        let name = EventName::from_components([
                            client, page, section, component, element, action,
                        ])
                        .expect("templates are valid components");
                        out.push(name);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Index of the first event in `universe` matching `(page, component,
/// element, action)` for a client — used to plant funnel stages.
pub fn find_event(universe: &[EventName], client: &str, page: &str, action: &str) -> Option<usize> {
    universe
        .iter()
        .position(|n| n.client() == client && n.page() == page && n.action() == action)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_universe_is_realistically_sized() {
        let u = build_universe(&UniverseConfig::default());
        // 3 clients × 12 sections × 14 widget-actions = 504.
        assert!(u.len() > 300, "got {}", u.len());
        assert!(u.len() < 1000);
        // Sorted and unique.
        let mut sorted = u.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, u);
    }

    #[test]
    fn all_clients_share_the_design_language() {
        let u = build_universe(&UniverseConfig::default());
        let for_client = |c: &str| {
            u.iter()
                .filter(|n| n.client() == c)
                .map(|n| n.as_str().split_once(':').unwrap().1.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(for_client("web"), for_client("iphone"));
        assert_eq!(for_client("web"), for_client("android"));
    }

    #[test]
    fn contains_paper_like_names() {
        let u = build_universe(&UniverseConfig::default());
        assert!(u
            .iter()
            .any(|n| n.as_str() == "web:home:mentions:stream:avatar:profile_click"));
    }

    #[test]
    fn find_event_locates_stages() {
        let u = build_universe(&UniverseConfig::default());
        let idx = find_event(&u, "web", "home", "impression").unwrap();
        assert_eq!(u[idx].client(), "web");
        assert_eq!(u[idx].action(), "impression");
        assert!(find_event(&u, "web", "nonexistent", "x").is_none());
    }

    #[test]
    fn smaller_configs_shrink_the_universe() {
        let small = build_universe(&UniverseConfig {
            clients: vec!["web"],
            pages: 1,
        });
        let big = build_universe(&UniverseConfig::default());
        assert!(small.len() < big.len());
    }
}
