//! Zipf-distributed sampling.
//!
//! Event frequencies in client logs are heavily skewed — a handful of
//! impression events dominate — which is precisely why assigning small code
//! points to frequent events (§4.2) behaves like variable-length coding.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`, sampled via a precomputed CDF
/// and binary search. Rank 0 is the most probable.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. `n` must be positive; `alpha` ≥ 0
    /// (0 = uniform).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_orders_frequencies() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[50] || counts[50] < 500);
        // Rank 0 should dominate strongly at alpha=1.2.
        assert!(counts[0] as f64 > 0.15 * 100_000.0);
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(37, 0.9);
        let total: f64 = (0..37).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }
}
