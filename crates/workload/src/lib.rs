//! Seeded synthetic workload generation.
//!
//! The paper's data is Twitter's production traffic — "on the order of one
//! hundred terabytes uncompressed in aggregate each day" — which obviously
//! cannot ship with a reproduction. What the experiments actually depend on
//! is the traffic's *statistical shape*: a Zipfian event-frequency
//! distribution (that is what makes frequency-ranked dictionary coding pay
//! off), sessions with geometric-ish lengths, strong local sequential
//! structure (impressions beget clicks — the "temporal signal" of §5.4),
//! multiple clients with a shared design language, and funnel flows with
//! per-stage abandonment. This crate generates exactly that, deterministic
//! under a seed:
//!
//! * [`universe`]: a realistic six-level event universe per client;
//! * [`zipf`]: Zipf-distributed base frequencies;
//! * [`behavior`]: a first-order Markov session model with boosted
//!   successor pairs (planted collocations, known to E7/E8);
//! * [`funnels`]: the signup flow with configured abandonment (ground
//!   truth for E6);
//! * [`generator`]: assembles whole days of [`uli_core::ClientEvent`]s and
//!   writes them into warehouse hour partitions, plus legacy-format copies
//!   of the same ground truth for the E9 baseline.

pub mod behavior;
pub mod funnels;
pub mod generator;
pub mod universe;
pub mod zipf;

pub use behavior::BehaviorModel;
pub use funnels::{signup_funnel, FunnelSpec};
pub use generator::{
    generate_day, land_day_stream, legacy_category_for, write_client_events,
    write_client_events_layout, write_legacy_events, DayStream, DayWorkload, GroundTruth, Layout,
    Scale, WorkloadConfig,
};
pub use universe::{build_universe, UniverseConfig};
pub use zipf::Zipf;
