//! The programmatic query front-end.
//!
//! [`ServeHandle`] answers point lookups by consulting the hour indexes,
//! pruning to the posted row groups, and decoding only those — never a
//! full-day scan. Answers are byte-identical to the batch dataflow
//! engine's over the same delivered hours (the serving layer's contract,
//! pinned by `crate::batch` and the equivalence suite): rows take exactly
//! the tuple shape `ClientEventLoader::parse` produces, in exactly the
//! engine's scan order (files sorted, groups ascending, rows in order).

use std::sync::Arc;

use parking_lot::Mutex;
use uli_core::{client_event_from_group, ClientEvent, SessionRecord, Sessionizer};
use uli_dataflow::{Tuple, Value};
use uli_thrift::record::ThriftRecord;
use uli_warehouse::{ColumnarFile, HourlyPartition, Warehouse, WarehouseResult};

use crate::hour::HourIndex;
use crate::maintain::Inner;

/// What one lookup cost, in the decoded-bytes currency the cost model and
/// E22 use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// Uncompressed bytes decoded to answer (the ≥50× reduction target).
    pub decoded_bytes: u64,
    /// Row groups actually read.
    pub groups_read: u64,
    /// Row groups the index proved irrelevant and skipped.
    pub groups_pruned: u64,
    /// Files opened.
    pub files_visited: u64,
}

/// One answered lookup: rows in the engine's tuple shape, plus cost.
#[derive(Debug, Clone, Default)]
pub struct ServeAnswer {
    /// Result rows, byte-identical to the batch engine's.
    pub rows: Vec<Tuple>,
    /// What answering cost.
    pub stats: LookupStats,
}

/// Converts a decoded event into the exact tuple
/// [`uli_core::ClientEventLoader`] produces, so serve rows compare
/// byte-identical to engine rows.
pub fn event_tuple(ev: ClientEvent) -> Tuple {
    let details = ev
        .details
        .into_iter()
        .map(|(k, v)| (k, Value::Str(v)))
        .collect();
    vec![
        Value::Str(ev.initiator.to_string()),
        Value::Str(ev.name.as_str().to_string()),
        Value::Int(ev.user_id),
        Value::Str(ev.session_id),
        Value::Str(ev.ip),
        Value::Int(ev.timestamp.millis()),
        Value::Map(details),
    ]
}

/// The serving layer's query handle. Cloneable; shares state with the
/// [`crate::IndexMaintainer`] that created it, so answers always reflect
/// the committed indexes.
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Mutex<Inner>>,
}

impl ServeHandle {
    pub(crate) fn new(inner: Arc<Mutex<Inner>>) -> ServeHandle {
        ServeHandle { inner }
    }

    fn context(&self) -> (Warehouse, String) {
        let inner = self.inner.lock();
        (inner.warehouse.clone(), inner.category.clone())
    }

    fn hour(&self, hour: u64) -> Option<HourIndex> {
        self.inner.lock().hours.get(&hour).cloned()
    }

    fn note_lookup(&self, stats: &LookupStats) {
        let mut inner = self.inner.lock();
        inner.lookups_served += 1;
        inner.row_groups_pruned += stats.groups_pruned;
        inner.sync_obs();
    }

    /// Hours behind the newest delivered hour the index is.
    pub fn lag_hours(&self) -> u64 {
        self.inner.lock().lag_hours()
    }

    /// Hours with a committed index, ascending.
    pub fn indexed_hours(&self) -> Vec<u64> {
        self.inner.lock().hours.keys().copied().collect()
    }

    /// All events of `user` in `hour`, as engine-shaped tuples. Decodes
    /// only the row groups the user postings name.
    pub fn user_events(&self, user: i64, hour: u64) -> WarehouseResult<ServeAnswer> {
        let (warehouse, category) = self.context();
        let mut answer = ServeAnswer::default();
        if let Some(index) = self.hour(hour) {
            let events =
                collect_user_events(&warehouse, &category, &index, hour, user, &mut answer)?;
            answer.rows = events.into_iter().map(event_tuple).collect();
        }
        self.note_lookup(&answer.stats);
        Ok(answer)
    }

    /// Exact count of events named `name` over `hours`, answered from the
    /// index alone — zero bytes decoded. One row, `[Int count]`, exactly
    /// the global-aggregate row the engine produces.
    pub fn count(&self, name: &str, hours: impl IntoIterator<Item = u64>) -> ServeAnswer {
        let mut total: i64 = 0;
        let mut stats = LookupStats::default();
        for hour in hours {
            if let Some(index) = self.hour(hour) {
                total += index.name_counts.get(name).copied().unwrap_or(0) as i64;
                stats.groups_pruned += index.total_groups();
            }
        }
        self.note_lookup(&stats);
        ServeAnswer {
            rows: vec![vec![Value::Int(total)]],
            stats,
        }
    }

    /// The `k` most frequent event names in `hour`, count descending then
    /// name ascending — the engine's `aggregate_by(name, count) →
    /// order_by(count desc, name asc) → limit k` rows, from the index
    /// alone.
    pub fn top_names(&self, hour: u64, k: usize) -> ServeAnswer {
        let mut stats = LookupStats::default();
        let mut counts: Vec<(String, u64)> = match self.hour(hour) {
            Some(index) => {
                stats.groups_pruned = index.total_groups();
                index.name_counts.into_iter().collect()
            }
            None => Vec::new(),
        };
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts.truncate(k);
        self.note_lookup(&stats);
        ServeAnswer {
            rows: counts
                .into_iter()
                .map(|(name, count)| vec![Value::Str(name), Value::Int(count as i64)])
                .collect(),
            stats,
        }
    }

    /// The user's sessions over one day (24 hours), sessionized exactly as
    /// the batch materializer does. Decodes only the posted row groups of
    /// the day's indexed hours.
    pub fn sessions(
        &self,
        user: i64,
        day: u64,
    ) -> WarehouseResult<(Vec<SessionRecord>, LookupStats)> {
        let (warehouse, category) = self.context();
        let mut answer = ServeAnswer::default();
        let mut events = Vec::new();
        for hour in day * 24..(day + 1) * 24 {
            if let Some(index) = self.hour(hour) {
                events.extend(collect_user_events(
                    &warehouse,
                    &category,
                    &index,
                    hour,
                    user,
                    &mut answer,
                )?);
            }
        }
        let sessions = Sessionizer::new().sessionize(events);
        self.note_lookup(&answer.stats);
        Ok((sessions, answer.stats))
    }
}

/// Decodes the user's events out of one indexed hour, reading only the
/// posted groups, in engine scan order (files sorted, groups ascending,
/// rows in order). Charges the decoded bytes to `answer`.
fn collect_user_events(
    warehouse: &Warehouse,
    category: &str,
    index: &HourIndex,
    hour: u64,
    user: i64,
    answer: &mut ServeAnswer,
) -> WarehouseResult<Vec<ClientEvent>> {
    let before = warehouse.stats();
    let mut events = Vec::new();
    let total_groups = index.total_groups();
    let mut groups_read = 0u64;
    if let Some(postings) = index.user_postings.get(&user) {
        let dir = HourlyPartition::from_hour_index(category, hour).main_dir();
        for (&file_no, groups) in postings {
            let Some(entry) = index.files.get(file_no as usize) else {
                continue;
            };
            let path = dir.child(&entry.name)?;
            answer.stats.files_visited += 1;
            if entry.columnar {
                let file = ColumnarFile::open(warehouse, &path)?;
                let projection = vec![true; file.columns()];
                for &g in groups {
                    let group = file.read_group(g as usize, &projection)?;
                    groups_read += 1;
                    for row in 0..group.rows() {
                        if let Some(ev) = client_event_from_group(&file, &group, row) {
                            if ev.user_id == user {
                                events.push(ev);
                            }
                        }
                    }
                }
            } else {
                // Row-format sibling: one pseudo-group, whole file.
                groups_read += 1;
                for record in warehouse.open(&path)?.read_all()? {
                    if let Ok(ev) = ClientEvent::from_bytes(&record) {
                        if ev.user_id == user {
                            events.push(ev);
                        }
                    }
                }
            }
        }
    }
    answer.stats.groups_read += groups_read;
    answer.stats.groups_pruned += total_groups - groups_read;
    answer.stats.decoded_bytes += warehouse.stats().since(&before).uncompressed_bytes_read;
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexMaintainer;
    use uli_core::{
        write_client_events_columnar, ClientEvent, EventInitiator, EventName, Timestamp,
    };

    fn event(user: i64, name: &str, millis: i64) -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(name).unwrap(),
            user,
            format!("sess-{user}"),
            "10.0.0.1",
            Timestamp(millis),
        )
    }

    fn serve_over(hour: u64, events: &[ClientEvent], rows_per_group: usize) -> ServeHandle {
        let wh = Warehouse::new();
        let dir = HourlyPartition::from_hour_index("client_events", hour).main_dir();
        write_client_events_columnar(
            &wh,
            &dir.child("part-00000").unwrap(),
            events,
            true,
            rows_per_group,
        )
        .unwrap();
        let m = IndexMaintainer::new(wh, "client_events");
        m.tap().hour_delivered(
            &HourlyPartition::from_hour_index("client_events", hour),
            &[],
        );
        m.handle()
    }

    #[test]
    fn user_events_decodes_only_posted_groups() {
        // 32 events, groups of 8: user 7 appears only in rows 0..8 (group 0).
        let mut events: Vec<ClientEvent> =
            (0..8).map(|i| event(7, "a:b:c:d:e:f", i * 10)).collect();
        events.extend((8..32).map(|i| event(1, "a:b:c:d:e:f", i * 10)));
        let handle = serve_over(0, &events, 8);
        let answer = handle.user_events(7, 0).unwrap();
        assert_eq!(answer.rows.len(), 8);
        assert_eq!(answer.stats.groups_read, 1);
        assert_eq!(answer.stats.groups_pruned, 3);
        assert!(answer.stats.decoded_bytes > 0);
        // Absent user: pure pruning, nothing decoded.
        let absent = handle.user_events(999, 0).unwrap();
        assert!(absent.rows.is_empty());
        assert_eq!(absent.stats.groups_read, 0);
        assert_eq!(absent.stats.decoded_bytes, 0);
        assert_eq!(absent.stats.groups_pruned, 4);
    }

    #[test]
    fn count_and_top_names_answer_from_the_index_alone() {
        let mut events: Vec<ClientEvent> =
            (0..6).map(|i| event(i, "a:b:c:d:e:f", i * 10)).collect();
        events.extend((0..4).map(|i| event(i, "z:y:x:w:v:u", 100 + i * 10)));
        let handle = serve_over(2, &events, 4);
        let count = handle.count("a:b:c:d:e:f", [2]);
        assert_eq!(count.rows, vec![vec![Value::Int(6)]]);
        assert_eq!(count.stats.decoded_bytes, 0);
        let missing = handle.count("no:such:name:x:y:z", [2]);
        assert_eq!(missing.rows, vec![vec![Value::Int(0)]]);
        let top = handle.top_names(2, 1);
        assert_eq!(
            top.rows,
            vec![vec![Value::str("a:b:c:d:e:f"), Value::Int(6)]]
        );
        // Unindexed hour: empty top, zero count.
        assert!(handle.top_names(9, 5).rows.is_empty());
        assert_eq!(
            handle.count("a:b:c:d:e:f", [9]).rows,
            vec![vec![Value::Int(0)]]
        );
    }

    #[test]
    fn sessions_match_the_sessionizer_over_the_raw_events() {
        let events: Vec<ClientEvent> = (0..12)
            .map(|i| event(3, "a:b:c:d:e:f", i * 60_000))
            .collect();
        let handle = serve_over(0, &events, 8);
        let (sessions, stats) = handle.sessions(3, 0).unwrap();
        let expected = Sessionizer::new().sessionize(events);
        assert_eq!(sessions, expected);
        assert!(stats.groups_read > 0);
        let (none, _) = handle.sessions(999, 0).unwrap();
        assert!(none.is_empty());
    }
}
