//! `uli-serve`: the interactive serving layer over the unified log.
//!
//! The paper's §6 ongoing work names exactly this gap: the batch warehouse
//! answers every question with a MapReduce-style scan, and low-latency
//! point access ("show user X's sessions today") wants an indexing/serving
//! tier beside it — Twitter's Elephant Twin lineage. This crate supplies
//! that tier for the reproduced stack:
//!
//! - [`hour`] — the per-hour secondary index ([`HourIndex`]): user-id →
//!   row-group postings, event-name → row-group postings, exact per-name
//!   counts, and per-user session summaries, persisted beside the landed
//!   hour with the mover's assemble-then-rename commit discipline.
//! - [`maintain`] — [`IndexMaintainer`], a [`uli_scribe::DeliveryTap`]
//!   that builds and commits an hour's index at the mover's exactly-once
//!   delivery point, recovers crash-window victims by wholesale rebuild
//!   (never double-counting), and mirrors its counters into `uli-obs`.
//! - [`handle`] — [`ServeHandle`], the programmatic query front-end:
//!   point lookups that consult the index, prune to posted row groups,
//!   and decode only those — never a full-day scan.
//! - [`batch`] — the batch-engine reference answers the serving layer is
//!   held byte-identical to.
//! - [`repl`] — the `uli serve` command surface.

pub mod batch;
pub mod handle;
pub mod hour;
pub mod maintain;
pub mod repl;

pub use batch::{batch_count, batch_sessions, batch_top_names, batch_user_events, tuple_event};
pub use handle::{event_tuple, LookupStats, ServeAnswer, ServeHandle};
pub use hour::{
    build_hour_index, build_hour_index_parallel, commit_hour_index, index_dir, load_hour_index,
    FileEntry, HourIndex, Postings, UserHourSummary,
};
pub use maintain::IndexMaintainer;
pub use repl::run_repl;
