//! The per-hour secondary index: postings from user ids and event names to
//! the row groups that contain them, plus per-hour session summaries.
//!
//! One [`HourIndex`] is built per delivered warehouse hour by scanning the
//! landed files once — columnar files group by group with a narrow
//! projection, row-format siblings record by record. Because the build is a
//! wholesale scan of the committed hour, rebuilding after a crash replaces
//! the index rather than adding to it: an hour can never be double-counted
//! no matter how many times maintenance retries.
//!
//! The index persists beside the landed data under `/index/serve/...` with
//! the same assemble-then-rename discipline the log mover uses, so a
//! restarted server reloads committed hours and rebuilds missing ones.

use std::collections::{BTreeMap, BTreeSet};

use uli_core::{client_event_from_group, ClientEvent};
use uli_thrift::record::ThriftRecord;
use uli_warehouse::{
    sniff_columnar, ColumnarFile, HourlyPartition, Parallelism, ScanPool, Warehouse,
    WarehouseError, WarehouseResult, WhPath,
};

/// One landed file the index knows how to address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name inside the hour directory (files are indexed in the
    /// warehouse's sorted listing order, which is also scan order).
    pub name: String,
    /// Row groups in a columnar file; row-format files count as one
    /// pseudo-group (group 0 = the whole file).
    pub groups: u32,
    /// Whether the file is columnar (group-addressable) or row-format.
    pub columnar: bool,
}

/// Per-user activity summary for one hour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserHourSummary {
    /// Events attributed to the user this hour.
    pub events: u64,
    /// Distinct session ids the user touched this hour.
    pub sessions: u64,
    /// Earliest event timestamp (millis).
    pub first_millis: i64,
    /// Latest event timestamp (millis).
    pub last_millis: i64,
}

/// Postings: file index → the row groups (ascending) containing the key.
pub type Postings = BTreeMap<u32, BTreeSet<u32>>;

/// The secondary index over one delivered hour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HourIndex {
    /// The hour this index covers.
    pub hour_index: u64,
    /// Raw records in the hour (including undecodable payloads).
    pub records: u64,
    /// Records that decoded as client events.
    pub events: u64,
    /// Files in the hour, in sorted (scan) order.
    pub files: Vec<FileEntry>,
    /// Exact per-name event counts — `count` and `top-names` answer from
    /// these without decoding anything.
    pub name_counts: BTreeMap<String, u64>,
    /// Event name → row groups containing at least one such event.
    pub name_postings: BTreeMap<String, Postings>,
    /// User id → row groups containing at least one of the user's events.
    pub user_postings: BTreeMap<i64, Postings>,
    /// Per-user session summaries for the hour.
    pub user_summaries: BTreeMap<i64, UserHourSummary>,
}

impl HourIndex {
    /// Total addressable row groups across the hour's files.
    pub fn total_groups(&self) -> u64 {
        self.files.iter().map(|f| f.groups as u64).sum()
    }

    /// Row groups posted for `user`.
    pub fn user_groups(&self, user: i64) -> u64 {
        self.user_postings
            .get(&user)
            .map(|p| p.values().map(|g| g.len() as u64).sum())
            .unwrap_or(0)
    }
}

/// Index directory for one hour: `/index/serve/<category>/YYYY/MM/DD/HH`.
pub fn index_dir(partition: &HourlyPartition) -> WhPath {
    serve_dir("/index/serve", partition)
}

/// Staging directory the commit protocol assembles under before renaming.
pub fn index_staging_dir(partition: &HourlyPartition) -> WhPath {
    serve_dir("/index/serve-staging", partition)
}

fn serve_dir(root: &str, p: &HourlyPartition) -> WhPath {
    WhPath::parse(&format!(
        "{root}/{}/{:04}/{:02}/{:02}/{:02}",
        p.category, p.year, p.month, p.day, p.hour
    ))
    .expect("constructed path is valid")
}

/// The single index file inside the committed hour directory.
const INDEX_FILE: &str = "hour.idx";

/// Builds the index for one delivered hour by scanning the landed files.
/// A missing hour directory yields an empty index (zero files) — the form
/// a delivered-but-empty hour takes.
pub fn build_hour_index(
    warehouse: &Warehouse,
    category: &str,
    hour_index: u64,
) -> WarehouseResult<HourIndex> {
    build_hour_index_parallel(warehouse, category, hour_index, Parallelism::serial())
}

/// One file's contribution to the hour index: a complete partial index
/// (postings already keyed by the file's preassigned number) plus the raw
/// per-user session-id sets, which only fold to counts once every file's
/// partial is merged.
struct FilePartial {
    entry: FileEntry,
    partial: HourIndex,
    sessions: BTreeMap<i64, BTreeSet<String>>,
}

/// [`build_hour_index`] with the per-file scans sharded across `workers`.
///
/// Each file's number is preassigned from the sorted listing before any
/// scan runs, so the postings a file contributes are identical regardless
/// of which worker scans it or when; the merge folds partials in file
/// order using only commutative operations (counter sums, map unions,
/// min/max). The result is therefore equal to the serial build at any
/// worker count — pinned by the determinism tests.
pub fn build_hour_index_parallel(
    warehouse: &Warehouse,
    category: &str,
    hour_index: u64,
    workers: Parallelism,
) -> WarehouseResult<HourIndex> {
    let partition = HourlyPartition::from_hour_index(category, hour_index);
    let dir = partition.main_dir();
    let mut index = HourIndex {
        hour_index,
        ..HourIndex::default()
    };
    let files = match warehouse.list_files_recursive(&dir) {
        Ok(f) => f,
        Err(WarehouseError::NotFound(_)) => return Ok(index),
        Err(e) => return Err(e),
    };
    let numbered: Vec<(u32, WhPath)> = files
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p))
        .collect();
    let partials = ScanPool::new(workers).map(numbered, |_i, (file_no, path)| {
        scan_file(warehouse, &path, file_no)
    });

    // Merge in file order. Distinct session ids per user fold down to
    // counts only after every partial is in.
    let mut sessions: BTreeMap<i64, BTreeSet<String>> = BTreeMap::new();
    for partial in partials {
        let FilePartial {
            entry,
            partial,
            sessions: file_sessions,
        } = partial?;
        index.records += partial.records;
        index.events += partial.events;
        index.files.push(entry);
        for (name, count) in partial.name_counts {
            *index.name_counts.entry(name).or_insert(0) += count;
        }
        // Postings merge by plain extension: each partial only posts its
        // own (unique) file number.
        for (name, postings) in partial.name_postings {
            index
                .name_postings
                .entry(name)
                .or_default()
                .extend(postings);
        }
        for (user, postings) in partial.user_postings {
            index
                .user_postings
                .entry(user)
                .or_default()
                .extend(postings);
        }
        for (user, s) in partial.user_summaries {
            let merged = index.user_summaries.entry(user).or_insert(UserHourSummary {
                events: 0,
                sessions: 0,
                first_millis: s.first_millis,
                last_millis: s.last_millis,
            });
            merged.events += s.events;
            merged.first_millis = merged.first_millis.min(s.first_millis);
            merged.last_millis = merged.last_millis.max(s.last_millis);
        }
        for (user, ids) in file_sessions {
            sessions.entry(user).or_default().extend(ids);
        }
    }
    for (user, ids) in sessions {
        index
            .user_summaries
            .get_mut(&user)
            .expect("summary exists for every user with sessions")
            .sessions = ids.len() as u64;
    }
    Ok(index)
}

/// Scans one landed file into its partial index — the parallel unit of the
/// hour build. Pure per-file work: nothing here touches shared state.
fn scan_file(warehouse: &Warehouse, path: &WhPath, file_no: u32) -> WarehouseResult<FilePartial> {
    let mut partial = HourIndex::default();
    let mut sessions: BTreeMap<i64, BTreeSet<String>> = BTreeMap::new();
    let name = path.name().to_string();
    let entry = if sniff_columnar(warehouse, path)?.is_some() {
        let file = ColumnarFile::open(warehouse, path)?;
        let projection = vec![true; file.columns()];
        for g in 0..file.group_count() {
            let group = file.read_group(g, &projection)?;
            for row in 0..group.rows() {
                partial.records += 1;
                if let Some(ev) = client_event_from_group(&file, &group, row) {
                    post_event(&mut partial, &mut sessions, file_no, g as u32, &ev);
                }
            }
        }
        FileEntry {
            name,
            groups: file.group_count() as u32,
            columnar: true,
        }
    } else {
        for record in warehouse.open(path)?.read_all()? {
            partial.records += 1;
            if let Ok(ev) = ClientEvent::from_bytes(&record) {
                post_event(&mut partial, &mut sessions, file_no, 0, &ev);
            }
        }
        FileEntry {
            name,
            groups: 1,
            columnar: false,
        }
    };
    Ok(FilePartial {
        entry,
        partial,
        sessions,
    })
}

fn post_event(
    index: &mut HourIndex,
    sessions: &mut BTreeMap<i64, BTreeSet<String>>,
    file: u32,
    group: u32,
    ev: &ClientEvent,
) {
    index.events += 1;
    let name = ev.name.as_str().to_string();
    *index.name_counts.entry(name.clone()).or_insert(0) += 1;
    index
        .name_postings
        .entry(name)
        .or_default()
        .entry(file)
        .or_default()
        .insert(group);
    index
        .user_postings
        .entry(ev.user_id)
        .or_default()
        .entry(file)
        .or_default()
        .insert(group);
    let millis = ev.timestamp.millis();
    let summary = index
        .user_summaries
        .entry(ev.user_id)
        .or_insert(UserHourSummary {
            events: 0,
            sessions: 0,
            first_millis: millis,
            last_millis: millis,
        });
    summary.events += 1;
    summary.first_millis = summary.first_millis.min(millis);
    summary.last_millis = summary.last_millis.max(millis);
    sessions
        .entry(ev.user_id)
        .or_default()
        .insert(ev.session_id.clone());
}

/// Serializes the index as one tab-separated record per fact. Event names
/// are validated six-level names (no tabs), so no escaping is needed.
pub fn encode(index: &HourIndex) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(&format!(
        "H\t{}\t{}\t{}\n",
        index.hour_index, index.records, index.events
    ));
    for f in &index.files {
        out.push_str(&format!(
            "F\t{}\t{}\t{}\n",
            f.name,
            f.groups,
            u8::from(f.columnar)
        ));
    }
    for (name, count) in &index.name_counts {
        out.push_str(&format!("N\t{name}\t{count}\n"));
    }
    for (name, postings) in &index.name_postings {
        for (file, groups) in postings {
            out.push_str(&format!("NP\t{name}\t{file}\t{}\n", join_groups(groups)));
        }
    }
    for (user, postings) in &index.user_postings {
        for (file, groups) in postings {
            out.push_str(&format!("UP\t{user}\t{file}\t{}\n", join_groups(groups)));
        }
    }
    for (user, s) in &index.user_summaries {
        out.push_str(&format!(
            "US\t{user}\t{}\t{}\t{}\t{}\n",
            s.events, s.sessions, s.first_millis, s.last_millis
        ));
    }
    out.into_bytes()
}

fn join_groups(groups: &BTreeSet<u32>) -> String {
    groups
        .iter()
        .map(|g| g.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Tolerant inverse of [`encode`]: malformed lines are skipped, the same
/// posture every reader in the pipeline takes toward corrupt records.
pub fn decode(bytes: &[u8]) -> Option<HourIndex> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut index = HourIndex::default();
    let mut saw_header = false;
    for line in text.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["H", hour, records, events] => {
                index.hour_index = hour.parse().ok()?;
                index.records = records.parse().ok()?;
                index.events = events.parse().ok()?;
                saw_header = true;
            }
            ["F", name, groups, columnar] => index.files.push(FileEntry {
                name: name.to_string(),
                groups: groups.parse().ok()?,
                columnar: *columnar == "1",
            }),
            ["N", name, count] => {
                index
                    .name_counts
                    .insert(name.to_string(), count.parse().ok()?);
            }
            ["NP", name, file, groups] => {
                index
                    .name_postings
                    .entry(name.to_string())
                    .or_default()
                    .insert(file.parse().ok()?, parse_groups(groups)?);
            }
            ["UP", user, file, groups] => {
                index
                    .user_postings
                    .entry(user.parse().ok()?)
                    .or_default()
                    .insert(file.parse().ok()?, parse_groups(groups)?);
            }
            ["US", user, events, sessions, first, last] => {
                index.user_summaries.insert(
                    user.parse().ok()?,
                    UserHourSummary {
                        events: events.parse().ok()?,
                        sessions: sessions.parse().ok()?,
                        first_millis: first.parse().ok()?,
                        last_millis: last.parse().ok()?,
                    },
                );
            }
            _ => continue,
        }
    }
    saw_header.then_some(index)
}

fn parse_groups(s: &str) -> Option<BTreeSet<u32>> {
    s.split(',').map(|g| g.parse().ok()).collect()
}

/// Commits an index beside its hour with the mover's assemble-then-rename
/// discipline: write under `/index/serve-staging/...`, then atomically
/// rename into `/index/serve/...`. Presence of the final directory *is*
/// the commit; a crash before the rename leaves nothing partial behind,
/// only a missing index that [`load_hour_index`] reports as absent and
/// maintenance rebuilds. Recommitting (a rebuild) replaces the previous
/// index wholesale.
pub fn commit_hour_index(
    warehouse: &Warehouse,
    category: &str,
    index: &HourIndex,
) -> WarehouseResult<u64> {
    let partition = HourlyPartition::from_hour_index(category, index.hour_index);
    let staging = index_staging_dir(&partition);
    let dir = index_dir(&partition);
    if warehouse.is_dir(&staging) {
        warehouse.delete_dir(&staging)?;
    }
    warehouse.mkdirs(&staging)?;
    let bytes = encode(index);
    let mut writer = warehouse.create(&staging.child(INDEX_FILE)?)?;
    writer.append_record(&bytes);
    writer.finish()?;
    if warehouse.is_dir(&dir) {
        warehouse.delete_dir(&dir)?;
    }
    warehouse.rename(&staging, &dir)?;
    Ok(bytes.len() as u64)
}

/// Loads a committed index, or `None` when the hour has never committed
/// (or its record does not decode — treated as absent, forcing a rebuild).
pub fn load_hour_index(
    warehouse: &Warehouse,
    category: &str,
    hour_index: u64,
) -> WarehouseResult<Option<HourIndex>> {
    let partition = HourlyPartition::from_hour_index(category, hour_index);
    let file = index_dir(&partition).child(INDEX_FILE)?;
    if !warehouse.exists(&file) {
        return Ok(None);
    }
    let records = warehouse.open(&file)?.read_all()?;
    Ok(records.first().and_then(|r| decode(r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::{
        write_client_events_columnar, ClientEvent, EventInitiator, EventName, Timestamp,
    };

    fn event(user: i64, session: &str, name: &str, millis: i64) -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(name).unwrap(),
            user,
            session,
            "10.0.0.1",
            Timestamp(millis),
        )
    }

    fn land_hour(wh: &Warehouse, hour: u64, events: &[ClientEvent], rows_per_group: usize) {
        let dir = HourlyPartition::from_hour_index("client_events", hour).main_dir();
        let path = dir.child("part-00000").unwrap();
        write_client_events_columnar(wh, &path, events, true, rows_per_group).unwrap();
    }

    #[test]
    fn build_posts_users_and_names_to_their_groups() {
        let wh = Warehouse::new();
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(event(
                i % 2,
                &format!("s{}", i % 3),
                "web:home:timeline:tweet:avatar:click",
                1000 + i,
            ));
        }
        // Rows-per-group 4 → groups {0,1,2}; both users appear in each.
        land_hour(&wh, 0, &events, 4);
        let idx = build_hour_index(&wh, "client_events", 0).unwrap();
        assert_eq!(idx.records, 10);
        assert_eq!(idx.events, 10);
        assert_eq!(idx.files.len(), 1);
        assert_eq!(idx.files[0].groups, 3);
        assert!(idx.files[0].columnar);
        assert_eq!(
            idx.name_counts.get("web:home:timeline:tweet:avatar:click"),
            Some(&10)
        );
        assert_eq!(idx.user_groups(0), 3);
        assert_eq!(idx.user_groups(1), 3);
        assert_eq!(idx.user_groups(42), 0);
        let s = &idx.user_summaries[&0];
        assert_eq!(s.events, 5);
        assert!(s.sessions >= 1 && s.sessions <= 3);
        assert_eq!(s.first_millis, 1000);
    }

    #[test]
    fn missing_hour_builds_empty() {
        let wh = Warehouse::new();
        let idx = build_hour_index(&wh, "client_events", 7).unwrap();
        assert_eq!(idx.records, 0);
        assert!(idx.files.is_empty());
    }

    #[test]
    fn encode_decode_round_trips() {
        let wh = Warehouse::new();
        let events: Vec<ClientEvent> = (0..20)
            .map(|i| {
                event(
                    i % 4,
                    &format!("s{i}"),
                    if i % 2 == 0 {
                        "web:home:timeline:tweet:avatar:click"
                    } else {
                        "iphone:search:results:query:box:submit"
                    },
                    i * 50,
                )
            })
            .collect();
        land_hour(&wh, 3, &events, 8);
        let idx = build_hour_index(&wh, "client_events", 3).unwrap();
        let decoded = decode(&encode(&idx)).expect("round trip");
        assert_eq!(decoded, idx);
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let wh = Warehouse::new();
        let hour = 11;
        let dir = HourlyPartition::from_hour_index("client_events", hour).main_dir();
        // Several columnar files plus a row-format straggler, with users,
        // names, and sessions deliberately spanning file boundaries so the
        // merge has real work to do.
        for f in 0..5 {
            let events: Vec<ClientEvent> = (0..30)
                .map(|i| {
                    event(
                        (f + i) % 7,
                        &format!("s{}", (f * 30 + i) % 11),
                        if i % 3 == 0 {
                            "web:home:timeline:tweet:avatar:click"
                        } else {
                            "iphone:search:results:query:box:submit"
                        },
                        f * 1000 + i * 13,
                    )
                })
                .collect();
            let path = dir.child(&format!("part-{f:05}")).unwrap();
            write_client_events_columnar(&wh, &path, &events, true, 7).unwrap();
        }
        let mut row = wh.create(&dir.child("part-00009").unwrap()).unwrap();
        for i in 0..25 {
            row.append_record(
                &event(i % 5, &format!("r{}", i % 4), "a:b:c:d:e:f", 9000 + i).to_bytes(),
            );
        }
        row.finish().unwrap();

        let serial = build_hour_index(&wh, "client_events", hour).unwrap();
        assert_eq!(serial.files.len(), 6, "fixture should span several files");
        assert!(serial.user_summaries.len() >= 7);
        for workers in [1, 4, 8] {
            let parallel =
                build_hour_index_parallel(&wh, "client_events", hour, Parallelism::fixed(workers))
                    .unwrap();
            assert_eq!(parallel, serial, "divergence at {workers} workers");
            assert_eq!(encode(&parallel), encode(&serial));
        }
    }

    #[test]
    fn commit_then_load_and_recommit_replaces() {
        let wh = Warehouse::new();
        land_hour(&wh, 5, &[event(9, "s", "a:b:c:d:e:f", 10)], 8);
        let idx = build_hour_index(&wh, "client_events", 5).unwrap();
        let bytes = commit_hour_index(&wh, "client_events", &idx).unwrap();
        assert!(bytes > 0);
        let loaded = load_hour_index(&wh, "client_events", 5).unwrap().unwrap();
        assert_eq!(loaded, idx);
        // A rebuild recommits over the previous index wholesale.
        commit_hour_index(&wh, "client_events", &idx).unwrap();
        let again = load_hour_index(&wh, "client_events", 5).unwrap().unwrap();
        assert_eq!(again, idx);
        assert!(load_hour_index(&wh, "client_events", 6).unwrap().is_none());
    }
}
