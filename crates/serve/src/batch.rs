//! Batch-engine reference answers for every serving-layer lookup.
//!
//! Each function here answers the same question a [`ServeHandle`] lookup
//! answers, but the honest batch way: a full [`Plan`] over the delivered
//! hour directories, run through the dataflow [`Engine`]. The serving
//! layer's contract is that its answers are byte-identical to these over
//! the same delivered hours — the equivalence suite and E22 pin it at
//! several worker counts — while decoding a small fraction of the bytes.
//!
//! [`ServeHandle`]: crate::ServeHandle

use std::collections::BTreeMap;
use std::sync::Arc;

use uli_core::client_event::CLIENT_EVENT_SCHEMA;
use uli_core::{
    ClientEvent, ClientEventLoader, EventInitiator, EventName, SessionRecord, Sessionizer,
    Timestamp,
};
use uli_dataflow::{Agg, DataflowResult, Engine, Expr, Parallelism, Plan, SortOrder, Tuple, Value};
use uli_warehouse::{HourlyPartition, Warehouse};

fn schema() -> Vec<String> {
    CLIENT_EVENT_SCHEMA.iter().map(|s| s.to_string()).collect()
}

/// One scan plan per hour directory that exists; missing hours (never
/// delivered, or a truncated day) contribute no plan — exactly the hours
/// the index treats as absent.
fn hour_plans(
    warehouse: &Warehouse,
    category: &str,
    hours: impl IntoIterator<Item = u64>,
) -> Vec<Plan> {
    hours
        .into_iter()
        .filter_map(|hour| {
            let dir = HourlyPartition::from_hour_index(category, hour).main_dir();
            warehouse
                .is_dir(&dir)
                .then(|| Plan::load(dir, Arc::new(ClientEventLoader), schema()))
        })
        .collect()
}

fn union_all(mut plans: Vec<Plan>) -> Option<Plan> {
    let first = if plans.is_empty() {
        return None;
    } else {
        plans.remove(0)
    };
    Some(if plans.is_empty() {
        first
    } else {
        first.union(plans)
    })
}

fn engine(warehouse: &Warehouse, workers: usize) -> Engine {
    Engine::new(warehouse.clone()).with_parallelism(Parallelism::fixed(workers))
}

/// Batch answer to `user-events <user> <hour>`: full scan of the hour,
/// filtered to the user.
pub fn batch_user_events(
    warehouse: &Warehouse,
    category: &str,
    hour: u64,
    user: i64,
    workers: usize,
) -> DataflowResult<Vec<Tuple>> {
    let Some(plan) = union_all(hour_plans(warehouse, category, [hour])) else {
        return Ok(Vec::new());
    };
    let plan = plan.filter(Expr::col(2).eq(Expr::lit(user)));
    Ok(engine(warehouse, workers).run(&plan)?.rows)
}

/// Batch answer to `count <name>` over a span of hours: full scan,
/// filtered to the name, globally counted. One `[Int n]` row always, the
/// SQL `COUNT(*)`-over-empty convention the engine follows.
pub fn batch_count(
    warehouse: &Warehouse,
    category: &str,
    hours: impl IntoIterator<Item = u64>,
    name: &str,
    workers: usize,
) -> DataflowResult<Vec<Tuple>> {
    let Some(plan) = union_all(hour_plans(warehouse, category, hours)) else {
        return Ok(vec![vec![Value::Int(0)]]);
    };
    let plan = plan
        .filter(Expr::col(1).eq(Expr::lit(name)))
        .aggregate(vec![Agg::count()]);
    Ok(engine(warehouse, workers).run(&plan)?.rows)
}

/// Batch answer to `top-names <hour>`: group by name, count, order by
/// count descending then name ascending, limit `k`.
pub fn batch_top_names(
    warehouse: &Warehouse,
    category: &str,
    hour: u64,
    k: usize,
    workers: usize,
) -> DataflowResult<Vec<Tuple>> {
    let Some(plan) = union_all(hour_plans(warehouse, category, [hour])) else {
        return Ok(Vec::new());
    };
    let plan = plan
        .aggregate_by(vec![1], vec![Agg::count()])
        .order_by(vec![(1, SortOrder::Desc), (0, SortOrder::Asc)])
        .limit(k);
    Ok(engine(warehouse, workers).run(&plan)?.rows)
}

/// Batch answer to `sessions <user> [day]`: full scan of the day's
/// delivered hours, filtered to the user, sessionized with the same
/// [`Sessionizer`] the materializer uses.
pub fn batch_sessions(
    warehouse: &Warehouse,
    category: &str,
    day: u64,
    user: i64,
    workers: usize,
) -> DataflowResult<Vec<SessionRecord>> {
    let Some(plan) = union_all(hour_plans(warehouse, category, day * 24..(day + 1) * 24)) else {
        return Ok(Vec::new());
    };
    let plan = plan.filter(Expr::col(2).eq(Expr::lit(user)));
    let rows = engine(warehouse, workers).run(&plan)?.rows;
    let events: Vec<ClientEvent> = rows.into_iter().filter_map(tuple_event).collect();
    Ok(Sessionizer::new().sessionize(events))
}

/// Inverse of [`crate::handle::event_tuple`]: rebuilds the event struct
/// out of an engine row so batch results can feed the sessionizer. `None`
/// drops rows that are not loader-shaped client events.
pub fn tuple_event(tuple: Tuple) -> Option<ClientEvent> {
    let [initiator, name, user_id, session_id, ip, timestamp, details] =
        <[Value; 7]>::try_from(tuple).ok()?;
    let Value::Str(initiator) = initiator else {
        return None;
    };
    let initiator = initiator_from_str(&initiator)?;
    let Value::Str(name) = name else { return None };
    let name = EventName::parse(&name).ok()?;
    let Value::Int(user_id) = user_id else {
        return None;
    };
    let Value::Str(session_id) = session_id else {
        return None;
    };
    let Value::Str(ip) = ip else { return None };
    let Value::Int(millis) = timestamp else {
        return None;
    };
    let Value::Map(details) = details else {
        return None;
    };
    let details: BTreeMap<String, String> = details
        .into_iter()
        .map(|(k, v)| match v {
            Value::Str(s) => Some((k, s)),
            _ => None,
        })
        .collect::<Option<_>>()?;
    let mut ev = ClientEvent::new(initiator, name, user_id, session_id, ip, Timestamp(millis));
    ev.details = details;
    Some(ev)
}

/// Inverse of the initiator's `Display` rendering (`side:trigger`).
fn initiator_from_str(s: &str) -> Option<EventInitiator> {
    match s {
        "client:user" => Some(EventInitiator::CLIENT_USER),
        "client:app" => Some(EventInitiator::CLIENT_APP),
        "server:user" => Some(EventInitiator::SERVER_USER),
        "server:app" => Some(EventInitiator::SERVER_APP),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::event_tuple;

    #[test]
    fn tuple_event_inverts_event_tuple() {
        let mut ev = ClientEvent::new(
            EventInitiator::SERVER_APP,
            EventName::parse("web:home:timeline:tweet:avatar:click").unwrap(),
            42,
            "sess-1",
            "10.1.2.3",
            Timestamp(123_456),
        );
        ev.details.insert("k".to_string(), "v".to_string());
        let back = tuple_event(event_tuple(ev.clone())).expect("round trip");
        assert_eq!(back, ev);
    }

    #[test]
    fn initiator_renderings_all_invert() {
        for init in [
            EventInitiator::CLIENT_USER,
            EventInitiator::CLIENT_APP,
            EventInitiator::SERVER_USER,
            EventInitiator::SERVER_APP,
        ] {
            assert_eq!(initiator_from_str(&init.to_string()), Some(init));
        }
        assert_eq!(initiator_from_str("martian:probe"), None);
    }

    #[test]
    fn missing_hours_answer_empty_but_count_keeps_its_row() {
        let wh = Warehouse::new();
        assert!(batch_user_events(&wh, "client_events", 3, 1, 1)
            .unwrap()
            .is_empty());
        assert!(batch_top_names(&wh, "client_events", 3, 5, 1)
            .unwrap()
            .is_empty());
        assert_eq!(
            batch_count(&wh, "client_events", 0..24, "a:b:c:d:e:f", 1).unwrap(),
            vec![vec![Value::Int(0)]]
        );
        assert!(batch_sessions(&wh, "client_events", 0, 1, 1)
            .unwrap()
            .is_empty());
    }
}
