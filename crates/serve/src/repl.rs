//! The `uli serve` REPL: a line-oriented command surface over
//! [`ServeHandle`], reading commands and writing answers through any
//! `BufRead`/`Write` pair so tests can drive it with strings.

use std::io::{self, BufRead, Write};

use uli_dataflow::{Tuple, Value};

use crate::handle::ServeHandle;

const HELP: &str = "\
commands:
  sessions <user> [day]       the user's sessions for a day (default day 0)
  count <event> [--last <n>h] exact event count (over the last n indexed hours)
  top-names <hour> [k]        most frequent event names in an hour (default k 10)
  user-events <user> <hour>   the user's raw events in an hour
  lag                         hours the index lags the newest delivered hour
  help                        this text
  quit                        exit";

fn render_tuple(t: &Tuple) -> String {
    t.iter()
        .map(|v| match v {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\t")
}

/// Runs the REPL until EOF or `quit`. Every answer line is prefixed with
/// nothing; errors go to the same writer prefixed `error:` so a scripted
/// session stays one readable transcript.
pub fn run_repl(
    handle: &ServeHandle,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break,
            ["help"] => writeln!(output, "{HELP}")?,
            ["lag"] => writeln!(output, "index_lag_hours\t{}", handle.lag_hours())?,
            ["sessions", user] | ["sessions", user, _] => {
                let Ok(user) = user.parse::<i64>() else {
                    writeln!(output, "error: bad user id")?;
                    continue;
                };
                let day = match words.get(2).map(|d| d.parse::<u64>()) {
                    Some(Ok(d)) => d,
                    Some(Err(_)) => {
                        writeln!(output, "error: bad day")?;
                        continue;
                    }
                    None => 0,
                };
                match handle.sessions(user, day) {
                    Ok((sessions, stats)) => {
                        for s in &sessions {
                            writeln!(
                                output,
                                "{}\t{}\t{}\t{}s\t{}",
                                s.user_id,
                                s.session_id,
                                s.start.millis(),
                                s.duration_secs,
                                s.events
                                    .iter()
                                    .map(|e| e.as_str())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            )?;
                        }
                        writeln!(
                            output,
                            "({} sessions, {} groups read, {} pruned)",
                            sessions.len(),
                            stats.groups_read,
                            stats.groups_pruned
                        )?;
                    }
                    Err(e) => writeln!(output, "error: {e}")?,
                }
            }
            ["count", name, rest @ ..] => {
                let hours: Vec<u64> = match rest {
                    [] => handle.indexed_hours(),
                    ["--last", n] => match n.strip_suffix('h').unwrap_or(n).parse::<u64>() {
                        Ok(n) => {
                            let indexed = handle.indexed_hours();
                            match indexed.last() {
                                Some(&end) => (end.saturating_sub(n.saturating_sub(1))..=end)
                                    .filter(|h| indexed.binary_search(h).is_ok())
                                    .collect(),
                                None => Vec::new(),
                            }
                        }
                        Err(_) => {
                            writeln!(output, "error: bad --last window")?;
                            continue;
                        }
                    },
                    _ => {
                        writeln!(output, "error: usage: count <event> [--last <n>h]")?;
                        continue;
                    }
                };
                let answer = handle.count(name, hours);
                for row in &answer.rows {
                    writeln!(output, "{}", render_tuple(row))?;
                }
            }
            ["top-names", hour] | ["top-names", hour, _] => {
                let Ok(hour) = hour.parse::<u64>() else {
                    writeln!(output, "error: bad hour")?;
                    continue;
                };
                let k = match words.get(2).map(|k| k.parse::<usize>()) {
                    Some(Ok(k)) => k,
                    Some(Err(_)) => {
                        writeln!(output, "error: bad k")?;
                        continue;
                    }
                    None => 10,
                };
                for row in &handle.top_names(hour, k).rows {
                    writeln!(output, "{}", render_tuple(row))?;
                }
            }
            ["user-events", user, hour] => match (user.parse::<i64>(), hour.parse::<u64>()) {
                (Ok(user), Ok(hour)) => match handle.user_events(user, hour) {
                    Ok(answer) => {
                        for row in &answer.rows {
                            writeln!(output, "{}", render_tuple(row))?;
                        }
                        writeln!(
                            output,
                            "({} events, {} groups read, {} pruned, {} bytes decoded)",
                            answer.rows.len(),
                            answer.stats.groups_read,
                            answer.stats.groups_pruned,
                            answer.stats.decoded_bytes
                        )?;
                    }
                    Err(e) => writeln!(output, "error: {e}")?,
                },
                _ => writeln!(output, "error: usage: user-events <user> <hour>")?,
            },
            _ => writeln!(output, "error: unknown command (try `help`)")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexMaintainer;
    use uli_core::{
        write_client_events_columnar, ClientEvent, EventInitiator, EventName, Timestamp,
    };
    use uli_warehouse::{HourlyPartition, Warehouse};

    fn handle() -> ServeHandle {
        let wh = Warehouse::new();
        let events: Vec<ClientEvent> = (0..10)
            .map(|i| {
                ClientEvent::new(
                    EventInitiator::CLIENT_USER,
                    EventName::parse("web:home:timeline:tweet:avatar:click").unwrap(),
                    i % 2,
                    format!("s{}", i % 2),
                    "10.0.0.1",
                    Timestamp(i * 1000),
                )
            })
            .collect();
        let dir = HourlyPartition::from_hour_index("client_events", 0).main_dir();
        write_client_events_columnar(&wh, &dir.child("part-00000").unwrap(), &events, true, 4)
            .unwrap();
        let m = IndexMaintainer::new(wh, "client_events");
        m.tap()
            .hour_delivered(&HourlyPartition::from_hour_index("client_events", 0), &[]);
        m.handle()
    }

    fn transcript(script: &str) -> String {
        let mut out = Vec::new();
        run_repl(&handle(), script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn commands_answer_and_quit_stops() {
        let out = transcript(
            "count web:home:timeline:tweet:avatar:click\n\
             top-names 0 1\n\
             user-events 0 0\n\
             sessions 0 0\n\
             lag\n\
             quit\n\
             count never:reached:a:b:c:d\n",
        );
        assert!(out.starts_with("10\n"), "count first: {out}");
        assert!(out.contains("web:home:timeline:tweet:avatar:click\t10"));
        assert!(out.contains("(5 events"));
        assert!(out.contains("(1 sessions"));
        assert!(out.contains("index_lag_hours\t0"));
        assert!(!out.contains("never:reached"));
    }

    #[test]
    fn count_last_window_and_errors() {
        let out = transcript(
            "count web:home:timeline:tweet:avatar:click --last 1h\n\
             count x --last zh\n\
             bogus\n\
             user-events nope 0\n",
        );
        assert!(out.starts_with("10\n"));
        assert!(out.contains("error: bad --last window"));
        assert!(out.contains("error: unknown command"));
        assert!(out.contains("error: usage: user-events"));
    }
}
