//! Incremental index maintenance at the mover's exactly-once delivery
//! point.
//!
//! [`IndexMaintainer`] implements [`uli_scribe::DeliveryTap`], so it fires
//! exactly once per successful atomic slide — after the rename that makes
//! the hour visible and after the mover's dedup commit, which is what makes
//! re-delivered duplicates invisible to the index. On each delivered hour
//! it builds the [`HourIndex`](crate::hour::HourIndex) by scanning the
//! landed files, commits it with the assemble-then-rename protocol, and
//! caches it for the query side.
//!
//! Crash safety is by construction: the only commit point is the rename of
//! the staged index directory. A crash between hour-land and index-commit
//! (simulated with [`IndexMaintainer::fail_next_commits`]) leaves a landed
//! hour with no index — [`IndexMaintainer::recover`] finds it, rebuilds
//! from the warehouse, and because a build is a wholesale scan of the
//! committed hour, the rebuilt index can never double-count.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use uli_obs::{Counter, Gauge, Registry};
use uli_scribe::DeliveryTap;
use uli_warehouse::{HourlyPartition, Warehouse, WarehouseResult, WhPath};

use crate::hour::{
    build_hour_index_parallel, commit_hour_index, encode, load_hour_index, HourIndex,
};

/// Registry mirrors, `set_total` discipline: the maintainer state stays
/// authoritative and the registry can only show values it computed.
struct ServeObs {
    hours_indexed: Counter,
    postings_bytes: Counter,
    lookups_served: Counter,
    row_groups_pruned: Counter,
    index_lag_hours: Gauge,
}

impl ServeObs {
    fn new(registry: &Registry) -> ServeObs {
        ServeObs {
            hours_indexed: registry.counter("serve", "hours_indexed"),
            postings_bytes: registry.counter("serve", "postings_bytes"),
            lookups_served: registry.counter("serve", "lookups_served"),
            row_groups_pruned: registry.counter("serve", "row_groups_pruned"),
            index_lag_hours: registry.gauge("serve", "index_lag_hours"),
        }
    }
}

pub(crate) struct Inner {
    pub(crate) warehouse: Warehouse,
    pub(crate) category: String,
    /// Committed hour indexes, cached for the query side.
    pub(crate) hours: BTreeMap<u64, HourIndex>,
    /// Newest hour the mover has delivered (observed via the tap).
    pub(crate) newest_delivered: Option<u64>,
    /// Sum of committed index sizes, in serialized bytes.
    pub(crate) postings_bytes: u64,
    /// Point lookups answered by the query side.
    pub(crate) lookups_served: u64,
    /// Row groups the index let lookups skip, cumulative.
    pub(crate) row_groups_pruned: u64,
    /// Decoded bytes spent building indexes (the maintenance overhead the
    /// serving layer pays once per hour, amortized over every lookup).
    pub(crate) build_decoded_bytes: u64,
    /// Fault injection: skip this many build+commit attempts, simulating a
    /// crash between hour-land and index-commit.
    fail_commits: u64,
    /// Worker budget for the per-file scans inside an hour build.
    workers: uli_warehouse::Parallelism,
    obs: Option<ServeObs>,
}

impl Inner {
    /// Hours behind the newest delivered hour the index is. Zero when
    /// fully caught up or nothing has been delivered; when nothing at all
    /// is indexed, every delivered hour (0..=newest) is behind.
    pub(crate) fn lag_hours(&self) -> u64 {
        let Some(newest) = self.newest_delivered else {
            return 0;
        };
        match self.hours.keys().next_back() {
            Some(&indexed) => newest.saturating_sub(indexed),
            None => newest + 1,
        }
    }

    pub(crate) fn sync_obs(&self) {
        let Some(obs) = &self.obs else { return };
        obs.hours_indexed.set_total(self.hours.len() as u64);
        obs.postings_bytes.set_total(self.postings_bytes);
        obs.lookups_served.set_total(self.lookups_served);
        obs.row_groups_pruned.set_total(self.row_groups_pruned);
        obs.index_lag_hours
            .set(self.lag_hours().min(i64::MAX as u64) as i64);
    }

    /// Builds and commits the index for one delivered hour, replacing any
    /// previous index for that hour wholesale.
    fn index_hour(&mut self, hour: u64) -> WarehouseResult<()> {
        let before = self.warehouse.stats();
        let index = build_hour_index_parallel(&self.warehouse, &self.category, hour, self.workers)?;
        self.build_decoded_bytes += self
            .warehouse
            .stats()
            .since(&before)
            .uncompressed_bytes_read;
        let bytes = commit_hour_index(&self.warehouse, &self.category, &index)?;
        if let Some(old) = self.hours.insert(hour, index) {
            self.postings_bytes -= encode(&old).len() as u64;
        }
        self.postings_bytes += bytes;
        Ok(())
    }
}

/// The serving layer's index maintainer. Cloneable; all clones share
/// state, so one clone can be boxed as the pipeline tap while another
/// hands out query handles.
#[derive(Clone)]
pub struct IndexMaintainer {
    pub(crate) inner: Arc<Mutex<Inner>>,
}

impl IndexMaintainer {
    /// A maintainer bound to the main warehouse it indexes, with no
    /// registry attached.
    pub fn new(warehouse: Warehouse, category: impl Into<String>) -> IndexMaintainer {
        Self::build(warehouse, category.into(), None)
    }

    /// A maintainer mirroring its counters into `serve/*` registry
    /// metrics on every delivered hour and every lookup.
    pub fn with_obs(
        warehouse: Warehouse,
        category: impl Into<String>,
        registry: &Registry,
    ) -> IndexMaintainer {
        Self::build(warehouse, category.into(), Some(ServeObs::new(registry)))
    }

    fn build(warehouse: Warehouse, category: String, obs: Option<ServeObs>) -> IndexMaintainer {
        IndexMaintainer {
            inner: Arc::new(Mutex::new(Inner {
                warehouse,
                category,
                hours: BTreeMap::new(),
                newest_delivered: None,
                postings_bytes: 0,
                lookups_served: 0,
                row_groups_pruned: 0,
                build_decoded_bytes: 0,
                fail_commits: 0,
                workers: uli_warehouse::Parallelism::serial(),
                obs,
            })),
        }
    }

    /// Shards the per-file scans inside each hour build across
    /// `workers`. The built index is identical at any worker count —
    /// file numbers are preassigned from the sorted listing and partials
    /// merge in file order.
    pub fn with_parallelism(self, workers: uli_warehouse::Parallelism) -> IndexMaintainer {
        self.inner.lock().workers = workers;
        self
    }

    /// A boxed tap sharing this maintainer's state, ready for
    /// [`uli_scribe::ScribePipeline::add_delivery_tap`].
    pub fn tap(&self) -> Box<dyn DeliveryTap> {
        Box::new(self.clone())
    }

    /// A query handle sharing this maintainer's state.
    pub fn handle(&self) -> crate::handle::ServeHandle {
        crate::handle::ServeHandle::new(self.inner.clone())
    }

    /// Fault injection: the next `n` delivered hours land but their index
    /// build+commit is skipped, simulating a crash in the window between
    /// hour-land and index-commit. [`IndexMaintainer::recover`] must make
    /// the index whole again.
    pub fn fail_next_commits(&self, n: u64) {
        self.inner.lock().fail_commits = n;
    }

    /// Restart path: walks every delivered hour under `/logs/<category>`,
    /// loads hours with a committed index, and rebuilds hours without one
    /// (crash-window victims). Rebuilds replace wholesale, so recovery is
    /// idempotent and can never double-count an hour.
    pub fn recover(&self) -> WarehouseResult<u64> {
        let mut inner = self.inner.lock();
        let delivered = delivered_hours(&inner.warehouse, &inner.category)?;
        let mut rebuilt = 0;
        for hour in delivered {
            inner.newest_delivered = Some(inner.newest_delivered.unwrap_or(0).max(hour));
            if inner.hours.contains_key(&hour) {
                continue;
            }
            match load_hour_index(&inner.warehouse, &inner.category, hour)? {
                Some(index) => {
                    inner.postings_bytes += encode(&index).len() as u64;
                    inner.hours.insert(hour, index);
                }
                None => {
                    inner.index_hour(hour)?;
                    rebuilt += 1;
                }
            }
        }
        inner.sync_obs();
        Ok(rebuilt)
    }

    /// Hours with a committed index, ascending.
    pub fn indexed_hours(&self) -> Vec<u64> {
        self.inner.lock().hours.keys().copied().collect()
    }

    /// The committed index for one hour, if any.
    pub fn hour_index(&self, hour: u64) -> Option<HourIndex> {
        self.inner.lock().hours.get(&hour).cloned()
    }

    /// Newest hour the mover has delivered, if any.
    pub fn newest_delivered(&self) -> Option<u64> {
        self.inner.lock().newest_delivered
    }

    /// Hours the index lags behind the newest delivered hour.
    pub fn lag_hours(&self) -> u64 {
        self.inner.lock().lag_hours()
    }

    /// Sum of committed index sizes in serialized bytes.
    pub fn postings_bytes(&self) -> u64 {
        self.inner.lock().postings_bytes
    }

    /// Decoded bytes spent building indexes so far.
    pub fn build_decoded_bytes(&self) -> u64 {
        self.inner.lock().build_decoded_bytes
    }
}

/// Every delivered hour under `/logs/<category>`, ascending, by walking
/// the year/month/day/hour directory tree.
fn delivered_hours(warehouse: &Warehouse, category: &str) -> WarehouseResult<Vec<u64>> {
    let root = match WhPath::parse(&format!("/logs/{category}")) {
        Ok(p) => p,
        Err(_) => return Ok(Vec::new()),
    };
    if !warehouse.is_dir(&root) {
        return Ok(Vec::new());
    }
    let mut hours = Vec::new();
    let mut stack = vec![(root, Vec::<u16>::new())];
    while let Some((dir, parts)) = stack.pop() {
        for (name, is_dir) in warehouse.list(&dir)? {
            if !is_dir {
                continue;
            }
            let Ok(n) = name.parse::<u16>() else { continue };
            let mut next = parts.clone();
            next.push(n);
            let child = dir.child(&name)?;
            if next.len() == 4 {
                let partition = HourlyPartition {
                    category: category.to_string(),
                    year: next[0],
                    month: next[1] as u8,
                    day: next[2] as u8,
                    hour: next[3] as u8,
                };
                hours.push(partition.hour_index());
            } else {
                stack.push((child, next));
            }
        }
    }
    hours.sort_unstable();
    Ok(hours)
}

impl DeliveryTap for IndexMaintainer {
    fn hour_delivered(&mut self, partition: &HourlyPartition, _payloads: &[Vec<u8>]) {
        let mut inner = self.inner.lock();
        if partition.category != inner.category {
            return;
        }
        let hour = partition.hour_index();
        inner.newest_delivered = Some(inner.newest_delivered.unwrap_or(0).max(hour));
        if inner.fail_commits > 0 {
            // Simulated crash between hour-land and index-commit: the hour
            // is visible, the index is not. recover() repairs this.
            inner.fail_commits -= 1;
        } else if let Err(e) = inner.index_hour(hour) {
            // Maintenance must never fail the delivery path; an unindexed
            // hour surfaces as lag and recover() retries it.
            debug_assert!(false, "index build failed for hour {hour}: {e}");
        }
        inner.sync_obs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::{
        write_client_events_columnar, ClientEvent, EventInitiator, EventName, Timestamp,
    };

    fn land_hour(wh: &Warehouse, hour: u64, n: i64) {
        let events: Vec<ClientEvent> = (0..n)
            .map(|i| {
                ClientEvent::new(
                    EventInitiator::CLIENT_USER,
                    EventName::parse("web:home:timeline:tweet:avatar:click").unwrap(),
                    i % 5,
                    format!("s{i}"),
                    "10.0.0.1",
                    Timestamp(hour as i64 * 3_600_000 + i * 1000),
                )
            })
            .collect();
        let dir = HourlyPartition::from_hour_index("client_events", hour).main_dir();
        write_client_events_columnar(wh, &dir.child("part-00000").unwrap(), &events, true, 8)
            .unwrap();
    }

    fn deliver(m: &IndexMaintainer, hour: u64) {
        let partition = HourlyPartition::from_hour_index("client_events", hour);
        m.tap().hour_delivered(&partition, &[]);
    }

    #[test]
    fn delivered_hours_are_indexed_and_persisted() {
        let wh = Warehouse::new();
        let m = IndexMaintainer::new(wh.clone(), "client_events");
        land_hour(&wh, 0, 20);
        land_hour(&wh, 1, 10);
        deliver(&m, 0);
        deliver(&m, 1);
        assert_eq!(m.indexed_hours(), vec![0, 1]);
        assert_eq!(m.lag_hours(), 0);
        assert!(m.postings_bytes() > 0);
        assert_eq!(m.hour_index(0).unwrap().events, 20);
        // A fresh maintainer reloads the committed indexes, no rebuild.
        let m2 = IndexMaintainer::new(wh.clone(), "client_events");
        assert_eq!(m2.recover().unwrap(), 0);
        assert_eq!(m2.hour_index(1), m.hour_index(1));
    }

    #[test]
    fn crash_between_land_and_commit_recovers_without_double_count() {
        let wh = Warehouse::new();
        let m = IndexMaintainer::new(wh.clone(), "client_events");
        land_hour(&wh, 0, 16);
        deliver(&m, 0);
        land_hour(&wh, 1, 24);
        m.fail_next_commits(1);
        deliver(&m, 1); // hour lands, index commit "crashes"
        assert_eq!(m.indexed_hours(), vec![0]);
        assert_eq!(m.lag_hours(), 1);
        assert_eq!(m.recover().unwrap(), 1);
        assert_eq!(m.indexed_hours(), vec![0, 1]);
        assert_eq!(m.lag_hours(), 0);
        assert_eq!(m.hour_index(1).unwrap().events, 24);
        // Recovering again is a no-op: wholesale rebuilds never add.
        assert_eq!(m.recover().unwrap(), 0);
        assert_eq!(m.hour_index(1).unwrap().events, 24);
    }

    #[test]
    fn obs_mirrors_maintainer_state() {
        let registry = Registry::new();
        let wh = Warehouse::new();
        let m = IndexMaintainer::with_obs(wh.clone(), "client_events", &registry);
        land_hour(&wh, 2, 12);
        deliver(&m, 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("serve/hours_indexed"), Some(1));
        assert_eq!(
            snap.counter_value("serve/postings_bytes"),
            Some(m.postings_bytes())
        );
        assert_eq!(snap.gauge_value("serve/index_lag_hours"), Some(0));
        assert!(registry.duplicate_registrations().is_empty());
    }
}
