//! Shared fixtures and formatting for the experiments.

use std::fmt::Write as _;
use std::time::Instant;

use uli_core::session::Materializer;
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, DayWorkload, WorkloadConfig};

/// The standard workload used by most experiments: large enough to have
/// stable statistics, small enough to run in seconds.
pub fn standard_config() -> WorkloadConfig {
    WorkloadConfig {
        users: 400,
        ..Default::default()
    }
}

/// A prepared day: events in the warehouse and sequences materialized.
pub struct PreparedDay {
    /// The warehouse holding raw logs, dictionary, and sequences.
    pub warehouse: Warehouse,
    /// The generated workload with ground truth.
    pub day: DayWorkload,
    /// The materialization report.
    pub report: uli_core::session::MaterializeReport,
}

/// Generates, lands, and materializes one day.
pub fn prepare_day(config: &WorkloadConfig, day_index: u64) -> PreparedDay {
    let day = generate_day(config, day_index);
    let warehouse = Warehouse::new();
    write_client_events(&warehouse, &day.events, 4).expect("fresh warehouse");
    let report = Materializer::new(warehouse.clone())
        .run_day(day_index)
        .expect("day exists");
    PreparedDay {
        warehouse,
        day,
        report,
    }
}

/// Prepares several consecutive days into one warehouse.
pub fn prepare_days(config: &WorkloadConfig, days: u64) -> (Warehouse, Vec<DayWorkload>) {
    let warehouse = Warehouse::new();
    let mut out = Vec::new();
    for d in 0..days {
        let day = generate_day(config, d);
        write_client_events(&warehouse, &day.events, 4).expect("fresh warehouse");
        Materializer::new(warehouse.clone())
            .run_day(d)
            .expect("day exists");
        out.push(day);
    }
    (warehouse, out)
}

/// Hardware threads visible to this process. Recorded in every full-scale
/// `BENCH_*.json` so readers can judge whether a wall-clock speedup was
/// measurable on the machine that produced it; smoke outputs omit it so the
/// CI goldens stay machine-independent.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Times a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1000.0)
}

/// A minimal fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Convenience macro-ish helper: stringifies cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let mut t = Table::new(&["name", "count"]);
        t.row(cells!["a", 1]).row(cells!["long_name", 100]);
        let text = t.render();
        assert!(text.contains("name"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn prepare_day_is_consistent() {
        let mut cfg = standard_config();
        cfg.users = 30;
        let p = prepare_day(&cfg, 0);
        assert_eq!(p.report.sessions, p.day.truth.sessions);
    }
}
