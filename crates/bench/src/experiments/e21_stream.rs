//! E21 — the lambda invariant: streaming analytics vs batch.
//!
//! The paper's analytics are batch-only; Twitter's production stack
//! layered a Summingbird speed layer over the same Scribe stream, trusting
//! the Algebird monoid laws to make streaming answers converge to batch.
//! This experiment measures that reproduction (`uli-stream`) end to end:
//!
//! 1. **lambda convergence** — a generated day is delivered through the
//!    Scribe pipeline with a speed-layer tap at each worker (shard) count;
//!    the streaming view must equal a batch scan of the landed warehouse
//!    exactly for exact aggregates and within declared bounds for sketches
//!    (HLL distinct users, Count-Min/TopK trending, percentile payload
//!    sizes), and views across shard counts must be byte-identical.
//! 2. **chaos reconciliation** — seeded crash/duplicate/outage schedules
//!    (`run_chaos_tapped`): streaming totals must equal the audited
//!    delivered partition for every seed.
//! 3. **memory** — the sketch state's fixed bytes against the exact state
//!    a batch job holds for the same answers.
//! 4. **throughput** (full runs only) — events/sec through the delivery
//!    tap over pre-encoded payloads.
//!
//! The smoke run's counters are machine-independent (delivery, hashing,
//! and chaos schedules are all deterministic), so CI diffs them against a
//! checked-in golden; the full run persists `BENCH_stream.json`.

use uli_core::client_event::CLIENT_EVENTS_CATEGORY;
use uli_scribe::message::LogEntry;
use uli_scribe::{run_chaos_tapped, ChaosConfig, PipelineConfig, ScribePipeline};
use uli_stream::{
    batch_reference, check_convergence, BatchSummary, StreamAnalytics, StreamConfig, StreamState,
    CHECKED_QUANTILES,
};
use uli_thrift::ThriftRecord;
use uli_warehouse::HourlyPartition;
use uli_workload::{DayStream, Scale, WorkloadConfig};

use crate::cells;
use crate::harness::{detected_cores, timed, Table};

/// Worker (shard) counts the lambda invariant is checked under.
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 8];

/// One checked quantile: streaming upper-bound estimate vs exact value.
pub struct QuantileDelta {
    /// Quantile in basis points (5000 = p50).
    pub q_bp: u32,
    /// Streaming log-linear sketch estimate.
    pub estimate: u64,
    /// Exact value from the batch payload sizes.
    pub exact: u64,
}

/// The full lambda measurement.
pub struct Measurements {
    /// Scale label of the generated day.
    pub scale: &'static str,
    /// Users in the day.
    pub users: u64,
    /// Records delivered to the speed layer (== batch records).
    pub records: u64,
    /// Decoded client events.
    pub events: u64,
    /// Hour windows that saw traffic.
    pub hours_with_traffic: u64,
    /// True when views at every entry of [`SHARD_COUNTS`] are identical.
    pub shard_invariant: bool,
    /// Exact aggregates matched batch byte-for-byte.
    pub exact_match: bool,
    /// Exact distinct logged-in users (batch).
    pub distinct_users_exact: u64,
    /// HLL estimate (streaming).
    pub distinct_users_est: u64,
    /// `|est − exact| / max(exact, 1)`.
    pub hll_rel_error: f64,
    /// HLL within its declared bound.
    pub hll_within_bound: bool,
    /// Largest trending-name over-count.
    pub topk_max_over: u64,
    /// The Count-Min additive bound `ε·total` for this stream.
    pub topk_error_bound: u64,
    /// Every trending estimate within `[true, true + bound]`.
    pub topk_within_bound: bool,
    /// Streaming vs exact at each checked quantile.
    pub quantiles: Vec<QuantileDelta>,
    /// Every checked quantile within the sketch contract.
    pub percentile_within_bound: bool,
    /// The lambda invariant, all shard counts.
    pub streaming_matches_batch: bool,
    /// Fixed sketch bytes per [`StreamState`].
    pub sketch_bytes: u64,
    /// Bytes of the streaming state's exact maps.
    pub stream_exact_bytes: u64,
    /// Bytes of the exact state a batch job holds for the same answers.
    pub batch_exact_bytes: u64,
    /// Chaos seeds swept.
    pub chaos_seeds: u64,
    /// Delivered records across the sweep (deterministic per seed).
    pub chaos_delivered: u64,
    /// Duplicates the mover squashed across the sweep.
    pub chaos_duplicates_merged: u64,
    /// Streaming totals equalled the delivered partition for every seed.
    pub chaos_reconciled: bool,
    /// Tap throughput, events/second (full runs only).
    pub tap_events_per_sec: Option<f64>,
    /// Hardware threads on the measuring host; `None` for smoke runs so
    /// the CI golden stays machine-independent.
    pub cores: Option<usize>,
}

/// Delivers one generated day through the Scribe pipeline with a
/// speed-layer tap, hour by hour, and returns the analytics handle plus
/// the batch answer scanned back out of the landed main warehouse.
fn deliver_day(config: &WorkloadConfig, shards: usize) -> (StreamAnalytics, BatchSummary) {
    let mut pipe = ScribePipeline::new(PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        ..Default::default()
    });
    let analytics = StreamAnalytics::new(StreamConfig {
        shards,
        trending_k: 5,
    });
    pipe.add_delivery_tap(analytics.tap());
    let mut by_hour: Vec<Vec<(i64, Vec<u8>)>> = vec![Vec::new(); 24];
    for ev in DayStream::new(config, 0) {
        by_hour[ev.timestamp.hour_index() as usize].push((ev.user_id, ev.to_bytes()));
    }
    for (hour, events) in by_hour.iter().enumerate() {
        for (i, (user, bytes)) in events.iter().enumerate() {
            pipe.log(
                (*user as usize) % 2,
                i % 4,
                LogEntry::new(CLIENT_EVENTS_CATEGORY, bytes.clone()),
            );
        }
        pipe.step();
        pipe.flush_hour(hour as u64);
        pipe.seal_hour(CLIENT_EVENTS_CATEGORY, hour as u64);
        pipe.move_hour(CLIENT_EVENTS_CATEGORY, hour as u64)
            .expect("all DCs sealed");
    }
    let batch = batch_reference(pipe.main_warehouse(), CLIENT_EVENTS_CATEGORY, 0..24)
        .expect("batch scan of the landed day");
    (analytics, batch)
}

/// Times a pure tap feed — pre-encoded payloads pushed straight through
/// `hour_delivered` in per-hour batches — and returns events/second.
fn tap_throughput(config: &WorkloadConfig) -> f64 {
    let mut by_hour: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 24];
    let mut total = 0u64;
    for ev in DayStream::new(config, 0) {
        by_hour[ev.timestamp.hour_index() as usize].push(ev.to_bytes());
        total += 1;
    }
    let analytics = StreamAnalytics::new(StreamConfig::default());
    let mut tap = analytics.tap();
    let ((), feed_ms) = timed(|| {
        for (hour, payloads) in by_hour.iter().enumerate() {
            if payloads.is_empty() {
                continue;
            }
            let partition = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour as u64);
            tap.hour_delivered(&partition, payloads);
        }
    });
    assert_eq!(analytics.running_view().records(), total);
    total as f64 / (feed_ms / 1000.0).max(1e-9)
}

/// Runs the lambda measurement at `scale` with `chaos_seeds` chaos runs.
pub fn measure_with(scale: Scale, chaos_seeds: u64) -> Measurements {
    let config = scale.config();

    // Lambda convergence at each worker count; views must be identical.
    let mut views: Vec<StreamState> = Vec::new();
    let mut batch = BatchSummary::default();
    let mut hours_with_traffic = 0u64;
    for &shards in &SHARD_COUNTS {
        let (analytics, b) = deliver_day(&config, shards);
        hours_with_traffic = analytics.hours().len() as u64;
        views.push(analytics.running_view());
        batch = b;
    }
    let shard_invariant = views.windows(2).all(|w| w[0] == w[1]);
    let stream = views.pop().expect("at least one shard count");
    let c = check_convergence(&stream, &batch);

    let quantiles = CHECKED_QUANTILES
        .iter()
        .map(|&q_bp| QuantileDelta {
            q_bp,
            estimate: stream.payload_bytes().quantile_bp(q_bp).unwrap_or(0),
            exact: batch.payload_quantile_bp(q_bp).unwrap_or(0),
        })
        .collect();

    // Chaos reconciliation: deterministic per seed, so the totals are
    // golden-stable.
    let chaos_cfg = ChaosConfig::default();
    let mut chaos_delivered = 0u64;
    let mut chaos_duplicates_merged = 0u64;
    let mut chaos_reconciled = true;
    for seed in 0..chaos_seeds {
        let analytics = StreamAnalytics::new(StreamConfig::default());
        let o = run_chaos_tapped(seed, &chaos_cfg, analytics.tap());
        chaos_reconciled &= o.is_clean();
        chaos_reconciled &= analytics.running_view().records() == o.accounting.delivered;
        chaos_delivered += o.accounting.delivered;
        chaos_duplicates_merged += o.report.duplicates_merged;
    }

    Measurements {
        scale: scale.label(),
        users: config.users,
        records: stream.records(),
        events: stream.events(),
        hours_with_traffic,
        shard_invariant,
        exact_match: c.exact_match,
        distinct_users_exact: batch.distinct_users.len() as u64,
        distinct_users_est: stream.distinct_users_estimate(),
        hll_rel_error: c.hll_rel_error,
        hll_within_bound: c.hll_within_bound,
        topk_max_over: c.topk_max_over,
        topk_error_bound: stream.trending().cms().error_bound(),
        topk_within_bound: c.topk_within_bound,
        quantiles,
        percentile_within_bound: c.percentile_within_bound,
        streaming_matches_batch: c.streaming_matches_batch && shard_invariant,
        sketch_bytes: StreamState::sketch_cost_bytes(),
        stream_exact_bytes: stream.exact_cost_bytes(),
        batch_exact_bytes: batch.exact_cost_bytes(),
        chaos_seeds,
        chaos_delivered,
        chaos_duplicates_merged,
        chaos_reconciled,
        tap_events_per_sec: None,
        cores: None,
    }
}

/// The full run: the default day for convergence, 16 chaos seeds, plus a
/// throughput pass over a larger pre-encoded day. Persists host cores.
pub fn measure() -> Measurements {
    let mut m = measure_with(Scale::Default, 16);
    m.tap_events_per_sec = Some(tap_throughput(&WorkloadConfig {
        users: 5_000,
        ..WorkloadConfig::default()
    }));
    m.cores = Some(detected_cores());
    m
}

/// The smoke run CI diffs against the checked-in golden: the pinned smoke
/// day, 4 chaos seeds, no wall-clock anywhere.
pub fn smoke_snapshot() -> Measurements {
    measure_with(Scale::Smoke, 4)
}

/// Renders the measurement as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = format!(
        "E21 — lambda invariant at --scale {}: {} users, {} records through \
         the delivery tap across {} traffic hours\n\n",
        m.scale, m.users, m.records, m.hours_with_traffic
    );
    out.push_str(&format!(
        "views identical across workers {SHARD_COUNTS:?}: {}\n\
         exact aggregates match batch byte-for-byte: {}\n\n",
        m.shard_invariant, m.exact_match
    ));
    let mut t = Table::new(&["aggregate", "streaming", "batch (exact)", "within bound"]);
    t.row(cells![
        "distinct users (HLL)",
        format!(
            "{} (±{:.2}%)",
            m.distinct_users_est,
            m.hll_rel_error * 100.0
        ),
        m.distinct_users_exact,
        m.hll_within_bound
    ]);
    t.row(cells![
        "trending names (CM/TopK)",
        format!("max over-count {}", m.topk_max_over),
        format!("bound {}", m.topk_error_bound),
        m.topk_within_bound
    ]);
    for q in &m.quantiles {
        t.row(cells![
            format!("payload p{}", q.q_bp / 100),
            q.estimate,
            q.exact,
            m.percentile_within_bound
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsketch state: {} B fixed vs {} B exact batch state \
         ({} B streaming exact maps)\n",
        m.sketch_bytes, m.batch_exact_bytes, m.stream_exact_bytes
    ));
    out.push_str(&format!(
        "chaos sweep: {} seeds, {} records delivered, {} duplicates \
         squashed, streaming == delivered partition: {}\n",
        m.chaos_seeds, m.chaos_delivered, m.chaos_duplicates_merged, m.chaos_reconciled
    ));
    out.push_str(&format!(
        "lambda invariant (streaming_matches_batch): {}\n",
        m.streaming_matches_batch
    ));
    if let Some(eps) = m.tap_events_per_sec {
        out.push_str(&format!("tap throughput: {eps:.0} events/sec\n"));
    }
    if let Some(cores) = m.cores {
        out.push_str(&format!(
            "{cores} hardware thread(s) visible; throughput is wall-clock \
             on this host.\n"
        ));
    }
    out
}

/// Serializes the run as the `BENCH_stream.json` payload (full runs) or
/// the machine-independent smoke metrics (when `cores` is unset).
pub fn to_json(m: &Measurements) -> String {
    let mut head = String::new();
    if let Some(c) = m.cores {
        head.push_str(&format!("  \"cores\": {c},\n"));
    }
    if let Some(eps) = m.tap_events_per_sec {
        head.push_str(&format!("  \"tap_events_per_sec\": {eps:.1},\n"));
    }
    let quantiles: Vec<String> = m
        .quantiles
        .iter()
        .map(|q| {
            format!(
                "    {{\"q_bp\": {}, \"estimate\": {}, \"exact\": {}}}",
                q.q_bp, q.estimate, q.exact
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"stream\",\n  \"schema\": \"uli-stream-v1\",\n\
         {head}  \"scale\": \"{}\",\n  \"users\": {},\n  \"records\": {},\n  \
         \"events\": {},\n  \"hours_with_traffic\": {},\n  \
         \"shard_counts\": [1, 4, 8],\n  \"shard_invariant\": {},\n  \
         \"exact_match\": {},\n  \"distinct_users_exact\": {},\n  \
         \"distinct_users_est\": {},\n  \"hll_rel_error\": {:.4},\n  \
         \"hll_within_bound\": {},\n  \"topk_max_over\": {},\n  \
         \"topk_error_bound\": {},\n  \"topk_within_bound\": {},\n  \
         \"quantiles\": [\n{}\n  ],\n  \"percentile_within_bound\": {},\n  \
         \"sketch_bytes\": {},\n  \"stream_exact_bytes\": {},\n  \
         \"batch_exact_bytes\": {},\n  \"chaos_seeds\": {},\n  \
         \"chaos_delivered\": {},\n  \"chaos_duplicates_merged\": {},\n  \
         \"chaos_reconciled\": {},\n  \"streaming_matches_batch\": {}\n}}\n",
        m.scale,
        m.users,
        m.records,
        m.events,
        m.hours_with_traffic,
        m.shard_invariant,
        m.exact_match,
        m.distinct_users_exact,
        m.distinct_users_est,
        m.hll_rel_error,
        m.hll_within_bound,
        m.topk_max_over,
        m.topk_error_bound,
        m.topk_within_bound,
        quantiles.join(",\n"),
        m.percentile_within_bound,
        m.sketch_bytes,
        m.stream_exact_bytes,
        m.batch_exact_bytes,
        m.chaos_seeds,
        m.chaos_delivered,
        m.chaos_duplicates_merged,
        m.chaos_reconciled,
        m.streaming_matches_batch,
    )
}

/// Runs the experiment at full scale.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_lambda_invariant_holds_and_json_is_machine_independent() {
        let m = smoke_snapshot();
        assert_eq!(m.scale, "smoke");
        assert_eq!(m.users, 120);
        // The pinned generator goldens fix the smoke day exactly.
        assert_eq!(m.records, 2657);
        assert_eq!(m.records, m.events, "generated payloads all decode");
        assert!(m.shard_invariant, "views diverged across shard counts");
        assert!(m.exact_match);
        assert!(m.hll_within_bound, "hll error {}", m.hll_rel_error);
        assert!(m.topk_within_bound);
        assert!(m.percentile_within_bound);
        assert!(m.streaming_matches_batch);
        assert!(m.chaos_reconciled);
        assert!(m.chaos_delivered > 0, "chaos sweep delivered nothing");
        assert!(
            m.sketch_bytes < m.batch_exact_bytes * 8,
            "sketch state should be the same order as (or smaller than) \
             exact state even on a tiny day: {} vs {}",
            m.sketch_bytes,
            m.batch_exact_bytes
        );
        let json = to_json(&m);
        assert!(json.contains("\"streaming_matches_batch\": true"));
        assert!(json.contains("\"chaos_reconciled\": true"));
        assert!(!json.contains("cores"), "smoke json must omit host cores");
        assert!(
            !json.contains("events_per_sec"),
            "smoke json must omit wall-clock throughput"
        );
    }

    #[test]
    fn full_json_records_cores_and_throughput() {
        let mut m = measure_with(Scale::Smoke, 2);
        m.cores = Some(2);
        m.tap_events_per_sec = Some(1234.5);
        let json = to_json(&m);
        assert!(json.contains("\"cores\": 2"));
        assert!(json.contains("\"tap_events_per_sec\": 1234.5"));
        assert!(json.contains("\"chaos_seeds\": 2"));
    }
}
