//! E14 — parallel scan/execute layer: serial vs worker-pool wall-clock.
//!
//! The paper's platform leans on Hadoop for parallelism; our single-process
//! reproduction gets the same lever from [`Parallelism`]: the materializer
//! shards its scan/encode passes and the engine runs its map phase per
//! block. This experiment sweeps worker counts over the same day and
//! verifies the outputs are identical while the wall-clock drops, plus
//! reports the decompressed-block cache hit rate for a repeated query.

use uli_core::session::Materializer;
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, WorkloadConfig};

use crate::cells;
use crate::experiments::e5_query_cost::raw_count_plan;
use crate::harness::{detected_cores, timed, Table};
use uli_core::event::EventPattern;

/// One row of the sweep.
pub struct WorkerSample {
    /// Worker count (1 = the pre-existing serial path).
    pub workers: usize,
    /// Full-day materialization wall-clock, milliseconds.
    pub materialize_ms: f64,
    /// Counting query over the raw logs, first run (cache warm from the
    /// materialize pass), milliseconds.
    pub query_ms: f64,
    /// Same query repeated, milliseconds.
    pub query_repeat_ms: f64,
    /// Deterministic cost-model estimate for the query, milliseconds. The
    /// model prices the work (tasks, scanned bytes, shuffle), so identical
    /// estimates across worker counts certify the sweep did the same work —
    /// the honest basis for comparison on a 1-core host, where wall-clock
    /// "speedups" would only measure scheduler noise.
    pub cost_model_ms: f64,
    /// Block-cache hit rate observed on this warehouse after both queries.
    pub cache_hit_rate: f64,
    /// Sessions materialized (must agree across worker counts).
    pub sessions: u64,
}

/// The full sweep result.
pub struct Measurements {
    /// Samples in worker order: 1, 2, 4, 8.
    pub samples: Vec<WorkerSample>,
    /// True when every worker count produced the same report and rows.
    pub outputs_identical: bool,
    /// Hardware threads visible to this process; the speedup column can
    /// only rise toward this ceiling (on a 1-core host the sweep shows
    /// parity and measures the pool's overhead instead).
    pub cores: usize,
}

/// Runs the sweep: for each worker count, land the same day in a fresh
/// warehouse, materialize, and run the same counting query twice.
pub fn measure() -> Measurements {
    measure_with(500, &[1, 2, 4, 8])
}

/// The sweep at a chosen scale — `--smoke` uses a small day and two worker
/// counts to keep CI wall-clock down while still exercising both paths.
pub fn measure_with(users: u64, worker_counts: &[usize]) -> Measurements {
    let config = WorkloadConfig {
        users,
        ..Default::default()
    };
    let day = generate_day(&config, 0);
    let pattern = EventPattern::parse("*:impression").expect("valid");

    let mut samples = Vec::new();
    let mut reference: Option<(uli_core::session::MaterializeReport, Vec<Tuple>)> = None;
    let mut outputs_identical = true;
    for &workers in worker_counts {
        let wh = Warehouse::new();
        write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
        let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
        let (report, materialize_ms) = timed(|| m.run_day(0).expect("day exists"));
        let dict = m.load_dictionary(0).expect("persisted");
        let engine = Engine::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
        let plan = raw_count_plan(&dict, &pattern);
        let (first, query_ms) = timed(|| engine.run(&plan).expect("runs"));
        let (second, query_repeat_ms) = timed(|| engine.run(&plan).expect("runs"));
        assert_eq!(first.rows, second.rows, "repeat must not change the answer");
        match &reference {
            None => reference = Some((report.clone(), first.rows.clone())),
            Some((r0, rows0)) => {
                outputs_identical &= *r0 == report && *rows0 == first.rows;
            }
        }
        samples.push(WorkerSample {
            workers,
            materialize_ms,
            query_ms,
            query_repeat_ms,
            cost_model_ms: first.estimated_cluster_ms,
            cache_hit_rate: wh.cache_stats().hit_rate(),
            sessions: report.sessions,
        });
    }
    Measurements {
        samples,
        outputs_identical,
        cores: detected_cores(),
    }
}

/// Renders the sweep as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = String::from(
        "E14 — parallel scan/execute: worker sweep over one day (identical outputs)\n\n",
    );
    let mut t = Table::new(&[
        "workers",
        "materialize ms",
        "query ms",
        "repeat ms",
        "cost-model ms",
        "cache hit rate",
        "speedup",
    ]);
    let base = m.samples[0].materialize_ms;
    let cost_base = m.samples[0].cost_model_ms;
    for s in &m.samples {
        // On a 1-core host wall-clock "speedup" only measures scheduler
        // noise, so the column switches to deterministic cost-model units
        // (parity certifies identical work, not a parallel win).
        let speedup = if m.cores == 1 {
            format!("{:.2}x (cost units)", cost_base / s.cost_model_ms)
        } else {
            format!("{:.2}x", base / s.materialize_ms)
        };
        t.row(cells![
            s.workers,
            format!("{:.1}", s.materialize_ms),
            format!("{:.1}", s.query_ms),
            format!("{:.1}", s.query_repeat_ms),
            format!("{:.1}", s.cost_model_ms),
            format!("{:.1}%", s.cache_hit_rate * 100.0),
            speedup
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n{} hardware thread(s) visible; speedup is capped at that ceiling.\n",
        m.cores
    ));
    if m.cores == 1 {
        out.push_str(
            "1-core host: the speedup column reports cost-model units, not \
             wall-clock — parity means the sweep did identical work.\n",
        );
    }
    out.push_str(&format!(
        "outputs identical across worker counts: {}\n\
         (report, dictionary, sequence bytes, and query rows all compared)\n",
        m.outputs_identical
    ));
    out
}

/// Serializes the sweep as the `BENCH_parallel_scan.json` payload.
pub fn to_json(m: &Measurements) -> String {
    let mut rows = Vec::new();
    for s in &m.samples {
        rows.push(format!(
            "    {{\"workers\": {}, \"materialize_ms\": {:.3}, \"query_ms\": {:.3}, \
             \"query_repeat_ms\": {:.3}, \"cost_model_ms\": {:.3}, \
             \"cache_hit_rate\": {:.4}, \"sessions\": {}}}",
            s.workers,
            s.materialize_ms,
            s.query_ms,
            s.query_repeat_ms,
            s.cost_model_ms,
            s.cache_hit_rate,
            s.sessions
        ));
    }
    // On a 1-core host the persisted speedups are cost-model units, so the
    // JSON names its basis instead of implying a wall-clock win.
    let basis = if m.cores == 1 {
        "cost_model"
    } else {
        "wall_clock"
    };
    format!(
        "{{\n  \"experiment\": \"parallel_scan\",\n  \"cores\": {},\n  \
         \"speedup_basis\": \"{}\",\n  \"outputs_identical\": {},\n  \"samples\": [\n{}\n  ]\n}}\n",
        m.cores,
        basis,
        m.outputs_identical,
        rows.join(",\n")
    )
}

/// Runs the experiment.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_consistent_and_serializes() {
        let m = measure();
        assert!(m.outputs_identical, "parallel outputs diverged from serial");
        assert_eq!(m.samples.len(), 4);
        assert!(m.samples.iter().all(|s| s.sessions > 0));
        assert!(
            m.samples.iter().any(|s| s.cache_hit_rate > 0.0),
            "repeated query should hit the block cache"
        );
        let json = to_json(&m);
        assert!(json.contains("\"workers\": 8"));
        assert!(json.contains("\"experiment\": \"parallel_scan\""));
    }
}
