//! E3 — Table 2 / §3.2: the client event message — codec round-trip,
//! schema evolution, and encoded size vs the legacy formats.

use uli_core::client_event::ClientEvent;
use uli_core::legacy::LegacyCategory;
use uli_thrift::{CompactReader, ThriftRecord};
use uli_workload::{generate_day, legacy_category_for, WorkloadConfig};

use crate::cells;
use crate::harness::{timed, Table};

/// Runs the experiment.
pub fn run() -> String {
    let day = generate_day(
        &WorkloadConfig {
            users: 200,
            ..Default::default()
        },
        0,
    );
    let mut out = String::from(
        "E3 — client event codec (Table 2, §3.2)\n\
         every event carries initiator, name, user_id, session_id, ip,\n\
         timestamp, details — with identical semantics everywhere.\n\n",
    );

    // Round-trip every event; measure encode/decode throughput.
    let (encoded, enc_ms) = timed(|| day.events.iter().map(|e| e.to_bytes()).collect::<Vec<_>>());
    let (decoded, dec_ms) = timed(|| {
        encoded
            .iter()
            .map(|b| ClientEvent::from_bytes(b).expect("own encoding decodes"))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        decoded, day.events,
        "lossless round trip over the whole day"
    );
    let n = day.events.len() as f64;
    let thrift_bytes: usize = encoded.iter().map(Vec::len).sum();
    out.push_str(&format!(
        "{} events round-tripped losslessly; encode {:.2} us/event, decode {:.2} us/event\n\n",
        day.events.len(),
        enc_ms * 1000.0 / n,
        dec_ms * 1000.0 / n,
    ));

    // Size comparison: unified Thrift vs what each legacy format would use.
    let mut sizes = Table::new(&["format", "total KB", "bytes/event"]);
    sizes.row(cells![
        "unified thrift (client_events)",
        thrift_bytes / 1024,
        format!("{:.1}", thrift_bytes as f64 / n)
    ]);
    for cat in LegacyCategory::ALL {
        let events: Vec<&ClientEvent> = day
            .events
            .iter()
            .filter(|e| legacy_category_for(e) == cat)
            .collect();
        if events.is_empty() {
            continue;
        }
        let bytes: usize = events.iter().map(|e| cat.encode(e).len()).sum();
        sizes.row(cells![
            format!("legacy {} ({:?})", cat.category_name(), cat),
            bytes / 1024,
            format!("{:.1}", bytes as f64 / events.len() as f64)
        ]);
    }
    out.push_str(&sizes.render());
    out.push_str(
        "\n(unified logs are more verbose than terse TSV — the §4.1 cost the\n\
         session sequences repay — but carry every common field in every\n\
         message, unlike the legacy formats.)\n\n",
    );

    // Schema evolution: a future writer adds field 9; today's reader skips.
    let sample = &day.events[0];
    let mut w = uli_thrift::CompactWriter::new();
    w.struct_begin();
    w.field_i8(1, sample.initiator.code());
    w.field_string(2, sample.name.as_str());
    w.field_i64(3, sample.user_id);
    w.field_string(4, &sample.session_id);
    w.field_string(5, &sample.ip);
    w.field_i64(6, sample.timestamp.millis());
    w.field_string_map(7, &sample.details);
    w.field_string(9, "added-by-a-2013-client");
    w.struct_end();
    let bytes = w.into_bytes();
    let mut r = CompactReader::new(&bytes);
    let evolved = ClientEvent::read(&mut r).expect("old reader tolerates new fields");
    assert_eq!(&evolved, sample);
    out.push_str(
        "schema evolution: message with an unknown field 9 decoded by the\n\
         current reader with no loss of the known fields (checked).\n",
    );
    out
}
