//! E9 — §3.1: application-specific logging vs unified client events.
//!
//! The same ground-truth day is logged both ways: once as unified client
//! events and once across three legacy categories (nested JSON with
//! `userId` and second-resolution timestamps, TSV with no session id,
//! "natural language" lines). The experiment measures what the legacy mess
//! costs in query complexity and sessionization accuracy — the pain that
//! motivated unification.

use std::sync::Arc;

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::legacy::{
    approximate_sessions, LegacyCategory, LegacyEvent, LegacyLoader, LEGACY_SCHEMA,
};
use uli_core::session::day_dir;
use uli_core::time::SESSION_GAP_MS;
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, write_legacy_events, WorkloadConfig};

use crate::cells;
use crate::harness::{timed, Table};

/// Runs the experiment.
pub fn run() -> String {
    let config = WorkloadConfig {
        users: 400,
        ..Default::default()
    };
    let day = generate_day(&config, 0);
    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
    write_legacy_events(&wh, &day.events, 4).expect("fresh warehouse");

    let engine = Engine::new(wh.clone());
    let mut out = String::from(
        "E9 — legacy application-specific logging vs unified client events (§3.1)\n\
         identical ground truth logged both ways.\n\n",
    );

    // --- Unified path: one category, one group-by. ---
    let unified_plan = Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .foreach(vec![
        ("user_id", Expr::col(2)),
        ("session_id", Expr::col(3)),
    ])
    .group_by(vec![0, 1]);
    let (unified, unified_ms) = timed(|| engine.run(&unified_plan).expect("runs"));
    let unified_sessions = unified.rows.len() as u64;

    // --- Legacy path: three categories, three formats, union, then a
    //     group-by on the only shared key (user id). ---
    let legacy_plan = {
        let mut loads = LegacyCategory::ALL.iter().map(|cat| {
            Plan::load(
                day_dir(cat.category_name(), 0),
                Arc::new(LegacyLoader::new(*cat)),
                LEGACY_SCHEMA.to_vec(),
            )
        });
        let first = loads.next().expect("three categories");
        first.union(loads.collect()).group_by(vec![0])
    };
    let (legacy, legacy_ms) = timed(|| engine.run(&legacy_plan).expect("runs"));

    let mut t = Table::new(&[
        "path",
        "categories",
        "formats parsed",
        "mappers",
        "shuffle KB",
        "wall ms",
    ]);
    t.row(cells![
        "unified",
        1,
        "thrift only",
        unified.stats.map_tasks,
        unified.stats.shuffle_bytes / 1024,
        format!("{unified_ms:.1}")
    ]);
    t.row(cells![
        "legacy",
        3,
        "json+tsv+natural",
        legacy.stats.map_tasks,
        legacy.stats.shuffle_bytes / 1024,
        format!("{legacy_ms:.1}")
    ]);
    out.push_str(&t.render());

    // --- Accuracy: sessionization. ---
    // Unified reconstructs sessions exactly (consistent ids everywhere).
    assert_eq!(unified_sessions, day.truth.sessions);
    // Legacy: search logs have no session id, so the best cross-category
    // strategy is user+gap approximation; frontend timestamps also lost
    // millisecond order.
    let mut legacy_events: Vec<LegacyEvent> = Vec::new();
    for cat in LegacyCategory::ALL {
        let dir = day_dir(cat.category_name(), 0);
        for file in wh.list_files_recursive(&dir).expect("written above") {
            let mut reader = wh.open(&file).expect("file exists");
            while let Some(record) = reader.next_record().expect("clean read") {
                if let Some(ev) = cat.decode(record) {
                    legacy_events.push(ev);
                }
            }
        }
    }
    assert_eq!(
        legacy_events.len(),
        day.events.len(),
        "no events lost in parsing"
    );
    let approx = approximate_sessions(legacy_events, SESSION_GAP_MS);
    let approx_sessions = approx.len() as u64;
    let err =
        (approx_sessions as f64 - day.truth.sessions as f64).abs() / day.truth.sessions as f64;

    out.push_str(&format!(
        "\nsessionization accuracy (truth: {} sessions):\n\
           unified  : {} sessions — exact (group-by on shared user/session ids)\n\
           legacy   : {} sessions — {:.1}% error (no session id in '{}';\n\
                      concurrent sessions of one user merge under the\n\
                      user+inactivity-gap approximation)\n",
        day.truth.sessions,
        unified_sessions,
        approx_sessions,
        err * 100.0,
        LegacyCategory::SearchBackend.category_name(),
    ));
    assert!(
        approx_sessions < day.truth.sessions,
        "the approximation must merge concurrent sessions"
    );
    assert!(err > 0.01, "the error must be visible");

    out.push_str(
        "\nresource discovery: the legacy data lives in categories named\n\
         'rainbird', 'quail_feed', 'm5_events' — nothing says which holds\n\
         search events (§3.1's discovery problem); unified logs live in one\n\
         place: /logs/client_events.\n",
    );
    out
}
