//! E18 — ingest fast path: Scribe message batching + streaming block
//! compression.
//!
//! The paper's ingest tier lives or dies on per-message overhead: "Scribe
//! daemons ... aggregate service logs from each production host" (§2), and
//! at Twitter's volumes every RPC and every allocation on that path is paid
//! hundreds of millions of times a day. This experiment ablates the batched
//! fast path along two axes:
//!
//! 1. **Batching** — one network message per entry (the legacy path) versus
//!    size/count-bounded batches at 8, 32, and 128 records.
//! 2. **Compression** — the landed day's bytes replayed through both the
//!    one-shot [`compress`] function and the streaming [`Compressor`] the
//!    writer uses, asserting byte-identical output.
//!
//! The headline gate is *safety*: the landed warehouse files must be
//! byte-identical at every batch setting (batching may only change how
//! entries share network messages, never what lands), and the streaming
//! compressor must match one-shot compression bit for bit. The headline
//! *numbers* are the cost-model counters: network messages, wire bytes, and
//! encode-allocation bytes.

use uli_core::session::day_dir;
use uli_scribe::pipeline::PipelineConfig;
use uli_scribe::{BatchPolicy, LogEntry, ScribePipeline};
use uli_thrift::ThriftRecord;
use uli_warehouse::compress::{compress, Compressor};
use uli_workload::{generate_day, WorkloadConfig};

use crate::cells;
use crate::harness::Table;

/// Replay block size for the streaming-vs-one-shot comparison, roughly the
/// warehouse's block granularity.
const REPLAY_BLOCK_BYTES: usize = 16 * 1024;

/// One fault-free ingest day at a fixed batch policy.
pub struct IngestSample {
    /// Human-readable policy name (`unbatched`, `batch-8`, ...).
    pub label: String,
    /// The policy's record cap.
    pub max_records: usize,
    /// Entries logged on production hosts.
    pub logged: u64,
    /// Entries merged into the main warehouse.
    pub moved: u64,
    /// Network messages the topology paid (every `send_batch`, including
    /// host→aggregator and any retries).
    pub network_messages: u64,
    /// Encoded bytes those messages carried.
    pub wire_bytes: u64,
    /// Batches acked daemon-side.
    pub batches_sent: u64,
    /// Mean entries per acked batch.
    pub avg_batch: f64,
    /// Send attempts beyond the first (zero in this fault-free plan).
    pub retried: u64,
    /// Cost model: encode allocation bytes on the legacy path — one fresh
    /// `Vec` per record, so the sum of landed record-envelope lengths.
    pub enc_alloc_legacy: u64,
    /// Cost model: encode allocation bytes with the reused scratch buffer —
    /// the buffer grows to the largest envelope once per landed file.
    pub enc_alloc_scratch: u64,
    /// Uncompressed bytes replayed through both compressors.
    pub compress_bytes_in: u64,
    /// Blocks sealed during the replay.
    pub compress_blocks: u64,
    /// Compressed output of the streaming replay.
    pub compress_bytes_out: u64,
    /// True when every replayed block compressed identically both ways.
    pub streaming_matches_oneshot: bool,
    /// The landed day, as `(path, records)` pairs — the byte-identity gate.
    pub files: Vec<(String, Vec<Vec<u8>>)>,
}

/// The full ablation.
pub struct Measurements {
    /// Samples in grid order; the first is the unbatched baseline.
    pub samples: Vec<IngestSample>,
    /// True when every setting landed files byte-identical to the baseline.
    pub landed_identical: bool,
    /// True when the streaming compressor matched one-shot everywhere.
    pub streaming_matches_oneshot: bool,
    /// Hardware threads on the measuring host; `None` for smoke runs (the
    /// CI-diffed smoke metrics must stay machine-independent).
    pub cores: Option<usize>,
}

/// The ablation grid: the unbatched baseline plus three batch sizes under
/// the default 32 KiB byte cap.
fn grid() -> Vec<(String, BatchPolicy)> {
    let mut settings = vec![("unbatched".to_string(), BatchPolicy::unbatched())];
    for records in [8usize, 32, 128] {
        settings.push((
            format!("batch-{records}"),
            BatchPolicy {
                max_records: records,
                ..BatchPolicy::default()
            },
        ));
    }
    settings
}

/// Drives one fault-free day end to end and collects the cost counters plus
/// the landed files.
fn run_once(users: u64, label: &str, batch: BatchPolicy) -> IngestSample {
    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        batch,
        ..Default::default()
    };
    let day = generate_day(
        &WorkloadConfig {
            users,
            ..Default::default()
        },
        0,
    );
    let mut pipe = ScribePipeline::new(config);
    for hour in 0..24u64 {
        for (i, ev) in day
            .events
            .iter()
            .filter(|e| e.timestamp.hour_index() == hour)
            .enumerate()
        {
            let dc = (ev.user_id as usize) % config.datacenters;
            pipe.log(
                dc,
                i % config.hosts_per_dc,
                LogEntry::new("client_events", ev.to_bytes()),
            );
        }
        pipe.step();
        pipe.flush_hour(hour);
        pipe.seal_hour("client_events", hour);
        pipe.move_hour("client_events", hour)
            .expect("fault-free day: every hour moves");
    }
    let report = pipe.report();
    let (network_messages, wire_bytes) = pipe.network().message_cost();

    let wh = pipe.main_warehouse();
    let mut files = Vec::new();
    for path in wh
        .list_files_recursive(&day_dir("client_events", 0))
        .expect("day landed")
    {
        let records = wh
            .open(&path)
            .expect("file")
            .read_all()
            .expect("clean read");
        files.push((path.as_str().to_string(), records));
    }

    // Encode-allocation cost model, from measured byte totals: the legacy
    // aggregator allocated one envelope Vec per record; the scratch path
    // reuses one buffer per file, which grows to the largest envelope.
    let mut enc_alloc_legacy = 0u64;
    let mut enc_alloc_scratch = 0u64;
    for (_, records) in &files {
        enc_alloc_legacy += records.iter().map(|r| r.len() as u64).sum::<u64>();
        enc_alloc_scratch += records.iter().map(|r| r.len() as u64).max().unwrap_or(0);
    }

    // Replay the landed bytes through both compressors at block granularity:
    // the streaming compressor is fed record by record (as the writer feeds
    // it) and must seal blocks byte-identical to one-shot compression of the
    // concatenated payload.
    let mut streaming = Compressor::new();
    let mut payload = Vec::new();
    let mut compress_bytes_in = 0u64;
    let mut compress_blocks = 0u64;
    let mut compress_bytes_out = 0u64;
    let mut streaming_matches_oneshot = true;
    let mut seal = |streaming: &mut Compressor, payload: &mut Vec<u8>| {
        let stream_block = streaming.finish_block();
        streaming_matches_oneshot &= stream_block == compress(payload);
        compress_bytes_in += payload.len() as u64;
        compress_bytes_out += stream_block.len() as u64;
        compress_blocks += 1;
        payload.clear();
    };
    for (_, records) in &files {
        for record in records {
            streaming.write(record);
            payload.extend_from_slice(record);
            if payload.len() >= REPLAY_BLOCK_BYTES {
                seal(&mut streaming, &mut payload);
            }
        }
    }
    if !payload.is_empty() {
        seal(&mut streaming, &mut payload);
    }

    IngestSample {
        label: label.to_string(),
        max_records: batch.max_records,
        logged: report.logged,
        moved: report.moved,
        network_messages,
        wire_bytes,
        batches_sent: report.batches_sent,
        avg_batch: report.logged as f64 / report.batches_sent.max(1) as f64,
        retried: report.retried,
        enc_alloc_legacy,
        enc_alloc_scratch,
        compress_bytes_in,
        compress_blocks,
        compress_bytes_out,
        streaming_matches_oneshot,
        files,
    }
}

/// Runs the ablation at full scale.
pub fn measure() -> Measurements {
    let mut m = measure_with(300);
    m.cores = Some(crate::harness::detected_cores());
    m
}

/// The ablation at a chosen day size — `--smoke` uses a small day; CI
/// golden-diffs the smoke metrics.
pub fn measure_with(users: u64) -> Measurements {
    let samples: Vec<IngestSample> = grid()
        .into_iter()
        .map(|(label, batch)| run_once(users, &label, batch))
        .collect();
    let landed_identical = samples.iter().all(|s| s.files == samples[0].files);
    let streaming_matches_oneshot = samples.iter().all(|s| s.streaming_matches_oneshot);
    Measurements {
        samples,
        landed_identical,
        streaming_matches_oneshot,
        cores: None,
    }
}

/// Renders the ablation as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = String::from(
        "E18 — ingest fast path: message batching x streaming compression;\n\
         fault-free day, landed files gated byte-identical across settings\n\n",
    );
    let mut t = Table::new(&[
        "policy",
        "logged",
        "messages",
        "wire-bytes",
        "avg-batch",
        "alloc-legacy",
        "alloc-scratch",
        "compress-in",
        "compress-out",
    ]);
    for s in &m.samples {
        t.row(cells![
            s.label,
            s.logged,
            s.network_messages,
            s.wire_bytes,
            format!("{:.1}", s.avg_batch),
            s.enc_alloc_legacy,
            s.enc_alloc_scratch,
            s.compress_bytes_in,
            s.compress_bytes_out
        ]);
    }
    out.push_str(&t.render());
    let base = &m.samples[0];
    let batched = &m.samples[m.samples.len() - 1];
    out.push_str(&format!(
        "\nlanded files byte-identical across all settings: {}\n\
         streaming compressor matches one-shot: {}\n\
         messages: {} -> {} ({:.1}x fewer at {})\n\
         encode allocation bytes (cost model): {} -> {} ({:.1}x fewer)\n",
        m.landed_identical,
        m.streaming_matches_oneshot,
        base.network_messages,
        batched.network_messages,
        base.network_messages as f64 / batched.network_messages.max(1) as f64,
        batched.label,
        base.enc_alloc_legacy,
        base.enc_alloc_scratch,
        base.enc_alloc_legacy as f64 / base.enc_alloc_scratch.max(1) as f64,
    ));
    out
}

/// Serializes the ablation as the `BENCH_ingest.json` payload.
pub fn to_json(m: &Measurements) -> String {
    let mut rows = Vec::new();
    for s in &m.samples {
        rows.push(format!(
            "    {{\"policy\": \"{}\", \"max_records\": {}, \"logged\": {}, \
             \"moved\": {}, \"network_messages\": {}, \"wire_bytes\": {}, \
             \"batches_sent\": {}, \"avg_batch\": {:.2}, \"retried\": {}, \
             \"enc_alloc_legacy\": {}, \"enc_alloc_scratch\": {}, \
             \"compress_bytes_in\": {}, \"compress_blocks\": {}, \
             \"compress_bytes_out\": {}}}",
            s.label,
            s.max_records,
            s.logged,
            s.moved,
            s.network_messages,
            s.wire_bytes,
            s.batches_sent,
            s.avg_batch,
            s.retried,
            s.enc_alloc_legacy,
            s.enc_alloc_scratch,
            s.compress_bytes_in,
            s.compress_blocks,
            s.compress_bytes_out,
        ));
    }
    let base = &m.samples[0];
    let batched = &m.samples[m.samples.len() - 1];
    let cores = m
        .cores
        .map_or(String::new(), |c| format!("  \"cores\": {c},\n"));
    format!(
        "{{\n  \"experiment\": \"ingest\",\n  \"schema\": \"uli-ingest-v1\",\n\
         {}  \"landed_identical\": {},\n  \"streaming_matches_oneshot\": {},\n  \
         \"message_reduction\": {:.2},\n  \"alloc_reduction\": {:.2},\n  \
         \"samples\": [\n{}\n  ]\n}}\n",
        cores,
        m.landed_identical,
        m.streaming_matches_oneshot,
        base.network_messages as f64 / batched.network_messages.max(1) as f64,
        base.enc_alloc_legacy as f64 / base.enc_alloc_scratch.max(1) as f64,
        rows.join(",\n"),
    )
}

/// The smoke-scale metrics CI diffs against the checked-in golden file.
pub fn smoke_snapshot() -> Measurements {
    measure_with(120)
}

/// Runs the experiment.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_reduces_cost_without_changing_landed_bytes() {
        let m = measure_with(60);
        assert!(
            m.landed_identical,
            "batching must not change what lands in the warehouse"
        );
        assert!(
            m.streaming_matches_oneshot,
            "streaming compression must be byte-identical to one-shot"
        );
        let base = &m.samples[0];
        assert_eq!(base.label, "unbatched");
        assert_eq!(
            base.network_messages, base.logged,
            "the unbatched baseline pays one message per entry"
        );
        for s in &m.samples[1..] {
            assert!(
                s.network_messages < base.network_messages / 2,
                "{}: {} messages vs baseline {}",
                s.label,
                s.network_messages,
                base.network_messages
            );
            assert!(s.wire_bytes < base.wire_bytes, "{}", s.label);
            assert_eq!(s.logged, base.logged);
            assert_eq!(s.moved, base.moved);
            assert!(s.avg_batch > 2.0, "{}: avg {}", s.label, s.avg_batch);
        }
        // Bigger caps mean fewer messages, monotonically.
        for pair in m.samples.windows(2) {
            assert!(pair[1].network_messages <= pair[0].network_messages);
        }
        assert!(
            base.enc_alloc_scratch * 8 < base.enc_alloc_legacy,
            "scratch reuse must cut encode allocations by >8x (got {} vs {})",
            base.enc_alloc_scratch,
            base.enc_alloc_legacy
        );
        let json = to_json(&m);
        assert!(json.contains("\"experiment\": \"ingest\""));
        assert!(json.contains("\"schema\": \"uli-ingest-v1\""));
    }
}
