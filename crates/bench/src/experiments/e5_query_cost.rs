//! E5 — §4.1/§5.2: query cost, raw client event logs vs session sequences.
//!
//! Paper claim: "queries over session sequences are substantially faster
//! than queries over the raw client event logs, both in terms of lower
//! latency and higher throughput", because the raw path pays "large
//! amounts of brute force scans and data shuffling".

use std::sync::Arc;

use uli_analytics::CountClientEvents;
use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::event::EventPattern;
use uli_core::session::{
    day_dir, sequences_dir, EventDictionary, SessionSequenceLoader, SESSION_SEQUENCE_SCHEMA,
};
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;

use crate::cells;
use crate::harness::{prepare_day, standard_config, timed, Table};

/// Counting query over the raw logs: load → filter by name → count.
pub fn raw_count_plan(dict: &EventDictionary, pattern: &EventPattern) -> Plan {
    let matching: Vec<String> = dict
        .iter()
        .filter(|(_, n, _)| pattern.matches(n))
        .map(|(_, n, _)| n.as_str().to_string())
        .collect();
    let mut predicate = Expr::lit(false);
    for name in &matching {
        predicate = predicate.or(Expr::col(1).eq(Expr::lit(name.as_str())));
    }
    Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .filter(predicate)
    .aggregate(vec![Agg::count()])
}

/// The same query over sequences via `CountClientEvents`.
pub fn sequence_count_plan(dict: &EventDictionary, pattern: &EventPattern) -> Plan {
    let udf = CountClientEvents::new(pattern, dict);
    Plan::load(
        sequences_dir(0),
        Arc::new(SessionSequenceLoader),
        SESSION_SEQUENCE_SCHEMA.to_vec(),
    )
    .foreach(vec![("n", Expr::udf(udf, vec![Expr::col(3)]))])
    .aggregate(vec![Agg::sum(0).named("total")])
}

/// The session-reconstruction job the sequences eliminate: group raw events
/// by (user, session) — "a large group-by across potentially terabytes".
pub fn raw_sessionize_plan() -> Plan {
    Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .foreach(vec![
        ("user_id", Expr::col(2)),
        ("session_id", Expr::col(3)),
        ("name", Expr::col(1)),
        ("timestamp", Expr::col(5)),
    ])
    .group_by(vec![0, 1])
}

/// Runs the experiment.
pub fn run() -> String {
    let prepared = prepare_day(&standard_config(), 0);
    let wh: &Warehouse = &prepared.warehouse;
    let dict = uli_core::session::Materializer::new(wh.clone())
        .load_dictionary(0)
        .expect("dictionary persisted");
    let engine = Engine::new(wh.clone());

    let mut out =
        String::from("E5 — event counting: raw logs vs session sequences (§4.1, §5.2)\n\n");
    let mut t = Table::new(&[
        "pattern",
        "path",
        "answer",
        "mappers",
        "MB scanned",
        "shuffle KB",
        "wall ms",
        "est. cluster s",
    ]);
    for pattern in ["*:impression", "*:profile_click", "web:search:*"] {
        let p = EventPattern::parse(pattern).expect("valid");
        let raw_plan = raw_count_plan(&dict, &p);
        let (raw, raw_ms) = timed(|| engine.run(&raw_plan).expect("runs"));
        let seq_plan = sequence_count_plan(&dict, &p);
        let (seq, seq_ms) = timed(|| engine.run(&seq_plan).expect("runs"));
        assert_eq!(raw.rows[0][0], seq.rows[0][0], "answers agree: {pattern}");
        for (label, r, ms) in [("raw", &raw, raw_ms), ("sequences", &seq, seq_ms)] {
            t.row(cells![
                pattern,
                label,
                r.rows[0][0],
                r.stats.map_tasks,
                format!("{:.2}", r.stats.input_bytes_uncompressed as f64 / 1048576.0),
                r.stats.shuffle_bytes / 1024,
                format!("{ms:.1}"),
                format!("{:.2}", r.estimated_cluster_ms / 1000.0)
            ]);
        }
        assert!(
            seq.stats.input_bytes_uncompressed * 5 < raw.stats.input_bytes_uncompressed,
            "sequences must scan far less"
        );
    }
    out.push_str(&t.render());

    // The group-by the sequences pre-materialize.
    let (group, group_ms) = timed(|| engine.run(&raw_sessionize_plan()).expect("runs"));
    out.push_str(&format!(
        "\nsession reconstruction over raw logs (the job sequences replace):\n\
         {} sessions rebuilt; {} mappers, {} KB shuffled, {:.1} ms wall,\n\
         {:.2} s estimated cluster time — paid by EVERY session-level query\n\
         before unification; amortized once by materialization after.\n",
        group.rows.len(),
        group.stats.map_tasks,
        group.stats.shuffle_bytes / 1024,
        group_ms,
        group.estimated_cluster_ms / 1000.0,
    ));
    assert_eq!(group.rows.len() as u64, prepared.report.sessions);
    out
}
