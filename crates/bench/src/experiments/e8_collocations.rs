//! E8 — §5.4: activity collocates via PMI and log-likelihood ratio.
//!
//! The workload plants impression→click successor boosts; the experiment
//! checks the miners recover them and demonstrates the classic PMI-vs-LLR
//! behaviour (PMI rewards rare perfect pairs, LLR wants support).

use std::collections::BTreeSet;

use uli_analytics::{load_sequences, CollocationMiner};
use uli_core::session::Materializer;
use uli_workload::{build_universe, BehaviorModel, WorkloadConfig};

use crate::cells;
use crate::harness::{prepare_day, Table};

/// Runs the experiment.
pub fn run() -> String {
    let config = WorkloadConfig {
        users: 700,
        funnel_fraction: 0.0, // pure Markov traffic isolates the boosts
        ..Default::default()
    };
    let prepared = prepare_day(&config, 0);
    let dict = Materializer::new(prepared.warehouse.clone())
        .load_dictionary(0)
        .expect("dictionary persisted");
    let sequences = load_sequences(&prepared.warehouse, 0).expect("materialized");

    let mut miner = CollocationMiner::new();
    for s in &sequences {
        miner.add_string(&s.sequence);
    }

    // Ground truth: the planted boost pairs, as event-name pairs.
    let universe = build_universe(&config.universe);
    let mut planted: BTreeSet<(String, String)> = BTreeSet::new();
    for client in &config.universe.clients {
        let slice: Vec<_> = universe
            .iter()
            .filter(|n| n.client() == *client)
            .cloned()
            .collect();
        let model = BehaviorModel::with_default_boosts(slice, config.zipf_alpha);
        for b in model.boosts() {
            planted.insert((
                model.universe()[b.from].as_str().to_string(),
                model.universe()[b.to].as_str().to_string(),
            ));
        }
    }

    let mut out = format!(
        "E8 — activity collocates (§5.4)\n\
         {} sessions, {} adjacent pairs; {} planted boost pairs\n\n",
        sequences.len(),
        miner.total_pairs(),
        planted.len()
    );

    let name_of = |rank: u32| {
        dict.name_of(rank)
            .map(|n| n.as_str().to_string())
            .unwrap_or_else(|| format!("rank{rank}"))
    };
    let top = miner.top_by_llr(10, 25);
    let mut t = Table::new(&["G^2", "PMI", "count", "pair", "planted?"]);
    let mut hits = 0;
    for s in &top {
        let pair = (name_of(s.a), name_of(s.b));
        let is_planted = planted.contains(&pair);
        if is_planted {
            hits += 1;
        }
        t.row(cells![
            format!("{:.0}", s.llr),
            format!("{:.2}", s.pmi),
            s.count,
            format!("{} -> {}", pair.0, pair.1),
            if is_planted { "yes" } else { "no" }
        ]);
    }
    out.push_str(&t.render());
    let precision = hits as f64 / top.len() as f64;
    out.push_str(&format!(
        "\nprecision@10 against planted pairs (LLR): {:.0}%\n",
        precision * 100.0
    ));
    assert!(
        precision >= 0.5,
        "LLR must surface planted collocates: {precision}"
    );
    // The strongest evidence must be planted structure.
    for s in top.iter().take(3) {
        let pair = (name_of(s.a), name_of(s.b));
        assert!(planted.contains(&pair), "top-3 must be planted: {pair:?}");
    }
    // The remaining top pairs are not noise: they are *discovered*
    // same-client repetition (sessions never switch clients, so head
    // events of one client co-occur above global independence) — the
    // behavioural analogue of the paper's non-compositional "hot dog".
    let unplanned: Vec<&uli_analytics::CollocationScore> = top
        .iter()
        .filter(|s| !planted.contains(&(name_of(s.a), name_of(s.b))))
        .collect();
    for s in &unplanned {
        let (a, b) = (name_of(s.a), name_of(s.b));
        let client_a = a.split(':').next().unwrap_or("").to_string();
        let client_b = b.split(':').next().unwrap_or("").to_string();
        assert_eq!(client_a, client_b, "unplanned collocates share a client");
        assert!(s.pmi > 0.0);
    }
    out.push_str(
        "unplanned top pairs are same-client head-event repetitions — genuine\nsession-level structure the miner discovered (sessions never switch\nclients), not noise (checked: all share a client).\n",
    );

    // PMI comparison at the same support floor.
    let by_pmi = miner.top_by_pmi(10, 25);
    let pmi_hits = by_pmi
        .iter()
        .filter(|s| planted.contains(&(name_of(s.a), name_of(s.b))))
        .count();
    out.push_str(&format!(
        "precision@10 (PMI, same count floor): {:.0}%\n",
        100.0 * pmi_hits as f64 / by_pmi.len() as f64
    ));
    out.push_str(
        "\n(both statistics surface the planted impression→click structure;\n\
         Dunning's G^2 ranks by evidence, PMI by association strength.)\n",
    );
    out
}
