//! E15 — pushdown scan path: eager vs lazy decode on a selective query.
//!
//! The paper's ad-hoc queries pay "large amounts of brute force scans"
//! (§4.1): every column of every record is decoded before the first FILTER
//! runs. PR 2's pushdown path moves FOREACH projections and cheap FILTER
//! predicates into the loader and consults per-block zone maps before
//! decompressing. This experiment runs one 2-column selective query — a
//! timestamp window plus an event-name equality — under four configs
//! (eager, projection-only, projection+predicate, +zone-maps) and two
//! worker counts, verifies the rows are byte-identical everywhere, and
//! reports how much decode work each layer removes.

use std::collections::BTreeMap;
use std::sync::Arc;

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::session::day_dir;
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, WorkloadConfig};

use crate::cells;
use crate::harness::{detected_cores, timed, Table};

/// Width of the client-event load schema.
const WIDTH: u64 = CLIENT_EVENT_SCHEMA.len() as u64;

/// The four configs in sweep order: each row adds one pushdown layer.
pub const CONFIGS: [(&str, Pushdown); 4] = [
    (
        "eager",
        Pushdown {
            projection: false,
            predicate: false,
            zone_maps: false,
        },
    ),
    (
        "projection",
        Pushdown {
            projection: true,
            predicate: false,
            zone_maps: false,
        },
    ),
    (
        "proj+pred",
        Pushdown {
            projection: true,
            predicate: true,
            zone_maps: false,
        },
    ),
    (
        "proj+pred+zones",
        Pushdown {
            projection: true,
            predicate: true,
            zone_maps: true,
        },
    ),
];

/// One (config, workers) cell of the sweep.
pub struct ConfigSample {
    /// Config label from [`CONFIGS`].
    pub config: &'static str,
    /// Scan/execute worker count.
    pub workers: usize,
    /// Query wall-clock, milliseconds.
    pub query_ms: f64,
    /// Blocks decompressed and scanned.
    pub input_blocks: u64,
    /// Blocks skipped before decompression (zone maps / index).
    pub blocks_skipped: u64,
    /// Records scanned.
    pub input_records: u64,
    /// Records decoded then dropped by a pushed predicate.
    pub records_skipped_by_predicate: u64,
    /// Fields skipped without materializing (projection pushdown).
    pub fields_skipped: u64,
    /// Uncompressed bytes handed to mappers.
    pub input_bytes_uncompressed: u64,
    /// Fields actually decoded: `input_records × width − fields_skipped`.
    pub decoded_fields: u64,
    /// Rows the query produced (must agree across every cell).
    pub output_rows: u64,
}

/// The full sweep.
pub struct Measurements {
    /// Samples in config-major, worker-minor order.
    pub samples: Vec<ConfigSample>,
    /// True when every config × worker cell produced identical rows.
    pub outputs_identical: bool,
    /// Eager decoded fields ÷ full-pushdown decoded fields (same workers).
    pub decode_work_ratio: f64,
    /// Users in the generated day.
    pub users: u64,
    /// The event name the query selects.
    pub event_name: String,
    /// Hardware threads on the measuring host, recorded in the persisted
    /// JSON so wall-clock columns can be judged against the machine.
    pub cores: usize,
}

/// The 2-column selective query: a timestamp window AND one event name,
/// projecting only (user_id, name) before a per-user count. Columns touched:
/// name (1), user_id (2), timestamp (5) — 3 of the 7 in the load schema.
fn selective_plan(name: &str, t0: i64, t1: i64) -> Plan {
    Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .filter(
        Expr::col(5)
            .ge(Expr::lit(t0))
            .and(Expr::col(5).le(Expr::lit(t1))),
    )
    .filter(Expr::col(1).eq(Expr::lit(name)))
    .foreach(vec![("user_id", Expr::col(2)), ("name", Expr::col(1))])
    .aggregate_by(vec![0], vec![Agg::count()])
}

/// Runs the sweep over `users` with the given worker counts.
pub fn measure_with(users: u64, worker_counts: &[usize]) -> Measurements {
    let config = WorkloadConfig {
        users,
        ..Default::default()
    };
    let day = generate_day(&config, 0);

    // Pick the most frequent event name (deterministic tie-break by name)
    // and the middle half of the day's timestamp range, so the query is
    // selective but never empty.
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut t_min = i64::MAX;
    let mut t_max = i64::MIN;
    for ev in &day.events {
        *counts.entry(ev.name.as_str()).or_default() += 1;
        t_min = t_min.min(ev.timestamp.millis());
        t_max = t_max.max(ev.timestamp.millis());
    }
    let event_name = counts
        .iter()
        .max_by_key(|(name, n)| (**n, **name))
        .map(|(name, _)| name.to_string())
        .expect("generated day is non-empty");
    let span = t_max - t_min;
    let (t0, t1) = (t_min + span / 4, t_min + 3 * span / 4);
    let plan = selective_plan(&event_name, t0, t1);

    let mut samples = Vec::new();
    let mut reference: Option<Vec<Tuple>> = None;
    let mut outputs_identical = true;
    for (label, pushdown) in CONFIGS {
        for &workers in worker_counts {
            let wh = Warehouse::new();
            write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
            let engine = Engine::new(wh)
                .with_parallelism(Parallelism::fixed(workers))
                .with_pushdown(pushdown);
            let (result, query_ms) = timed(|| engine.run(&plan).expect("runs"));
            match &reference {
                None => reference = Some(result.rows.clone()),
                Some(rows0) => outputs_identical &= *rows0 == result.rows,
            }
            let s = &result.stats;
            samples.push(ConfigSample {
                config: label,
                workers,
                query_ms,
                input_blocks: s.input_blocks,
                blocks_skipped: s.blocks_skipped,
                input_records: s.input_records,
                records_skipped_by_predicate: s.records_skipped_by_predicate,
                fields_skipped: s.fields_skipped,
                input_bytes_uncompressed: s.input_bytes_uncompressed,
                decoded_fields: s.input_records * WIDTH - s.fields_skipped,
                output_rows: result.rows.len() as u64,
            });
        }
    }
    let per_config = worker_counts.len();
    let eager = samples[0].decoded_fields;
    let full = samples[samples.len() - per_config].decoded_fields;
    Measurements {
        samples,
        outputs_identical,
        decode_work_ratio: eager as f64 / (full.max(1)) as f64,
        users,
        event_name,
        cores: detected_cores(),
    }
}

/// Runs the standard sweep: 600 users, workers {1, 4}.
pub fn measure() -> Measurements {
    measure_with(600, &[1, 4])
}

/// Renders the sweep as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = format!(
        "E15 — pushdown scan path: timestamp window AND name = {:?}, \
         project 2 of {WIDTH} columns ({} users)\n\n",
        m.event_name, m.users
    );
    let mut t = Table::new(&[
        "config",
        "workers",
        "query ms",
        "blocks read",
        "blocks skipped",
        "records",
        "pred-skipped",
        "fields skipped",
        "decoded fields",
    ]);
    for s in &m.samples {
        t.row(cells![
            s.config,
            s.workers,
            format!("{:.1}", s.query_ms),
            s.input_blocks,
            s.blocks_skipped,
            s.input_records,
            s.records_skipped_by_predicate,
            s.fields_skipped,
            s.decoded_fields
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ndecode work (fields materialized): eager / full pushdown = {:.2}x\n\
         outputs identical across all configs and worker counts: {}\n",
        m.decode_work_ratio, m.outputs_identical
    ));
    out
}

/// Serializes the sweep as the `BENCH_pushdown.json` payload.
pub fn to_json(m: &Measurements) -> String {
    let mut rows = Vec::new();
    for s in &m.samples {
        rows.push(format!(
            "    {{\"config\": \"{}\", \"workers\": {}, \"query_ms\": {:.3}, \
             \"input_blocks\": {}, \"blocks_skipped\": {}, \"input_records\": {}, \
             \"records_skipped_by_predicate\": {}, \"fields_skipped\": {}, \
             \"input_bytes_uncompressed\": {}, \"decoded_fields\": {}, \"output_rows\": {}}}",
            s.config,
            s.workers,
            s.query_ms,
            s.input_blocks,
            s.blocks_skipped,
            s.input_records,
            s.records_skipped_by_predicate,
            s.fields_skipped,
            s.input_bytes_uncompressed,
            s.decoded_fields,
            s.output_rows
        ));
    }
    format!(
        "{{\n  \"experiment\": \"pushdown\",\n  \"cores\": {},\n  \"users\": {},\n  \
         \"event_name\": \"{}\",\n  \
         \"outputs_identical\": {},\n  \"decode_work_ratio\": {:.4},\n  \"samples\": [\n{}\n  ]\n}}\n",
        m.cores,
        m.users,
        m.event_name,
        m.outputs_identical,
        m.decode_work_ratio,
        rows.join(",\n")
    )
}

/// Runs the experiment.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_consistent_and_beats_eager_by_2x() {
        let m = measure_with(200, &[1, 4]);
        assert!(m.outputs_identical, "pushdown changed query results");
        assert_eq!(m.samples.len(), CONFIGS.len() * 2);
        let eager = &m.samples[0];
        assert_eq!(eager.fields_skipped, 0);
        assert_eq!(eager.records_skipped_by_predicate, 0);
        assert_eq!(eager.blocks_skipped, 0);
        let full = &m.samples[m.samples.len() - 2];
        assert_eq!(full.config, "proj+pred+zones");
        assert!(full.fields_skipped > 0, "projection skipped nothing");
        assert!(full.records_skipped_by_predicate > 0, "predicate unpushed");
        assert!(full.blocks_skipped > 0, "zone maps pruned nothing");
        assert!(
            m.decode_work_ratio >= 2.0,
            "decode work must drop ≥2x, got {:.2}x",
            m.decode_work_ratio
        );
        let json = to_json(&m);
        assert!(json.contains("\"experiment\": \"pushdown\""));
        assert!(json.contains("\"config\": \"proj+pred+zones\""));
    }
}
