//! E23 — parallel pipelined delivery: the multi-worker mover landing a
//! generated day end-to-end.
//!
//! The paper's Scribe aggregation tier is massively parallel; until this
//! experiment the reproduction's delivery path — staged-file decode, dedup,
//! columnar encode, block compression, tap dispatch — ran on one thread.
//! E23 drives a generated day through the real daemon→aggregator→mover
//! topology hour by hour (no per-day batching shortcut) at each entry of
//! [`WORKER_COUNTS`] and checks, in order of importance:
//!
//! 1. **identity** — the landed warehouse files (by digest), the committed
//!    seen-set snapshot, the tap dispatch stream (by digest), and the move
//!    report totals must be byte-identical across worker counts. A parallel
//!    mover that changes any delivered byte is wrong, not fast.
//! 2. **chaos** — the default seeded fault mix swept with the 8-worker
//!    mover must stay invariant-clean and byte-identical to the serial
//!    mover's same-seed outcome.
//! 3. **throughput** — delivery records/sec per worker count (full runs
//!    only), plus a machine-independent cost model derived from the move
//!    reports' byte counters. Per the repro honesty convention, single-core
//!    hosts gate on the cost model (`speedup_basis = "cost_model"`) since
//!    wall-clock parallel speedup is unobservable there.
//!
//! The cost model: decode and encode/compress shard perfectly across `w`
//! workers (pure per-file / per-chunk work), while the dedup merge stays
//! serial at ~16 units per examined record (hash + set probe per id).
//! `units(w) = (decode_bytes + encode_bytes)/w + 16·(records + duplicates)`
//! — Amdahl's law with the measured byte totals as the parallel fraction.
//!
//! The smoke run is fully deterministic (pinned day, pinned seeds, no
//! wall-clock, no cores), so CI diffs it against a checked-in golden; the
//! full run persists `BENCH_delivery.json`.

use uli_core::client_event::CLIENT_EVENTS_CATEGORY;
use uli_core::session::day_dir;
use uli_scribe::message::LogEntry;
use uli_scribe::{run_chaos, ChaosConfig, DeliveryTap, PipelineConfig, ScribePipeline};
use uli_thrift::ThriftRecord;
use uli_warehouse::{HourlyPartition, Parallelism};
use uli_workload::{DayStream, Scale};

use crate::cells;
use crate::harness::{detected_cores, timed, Table};

/// Worker counts the delivery identity and speedup are checked under.
pub const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

/// Serial merge cost per examined record in the model, in byte-equivalent
/// units: one id hash plus one seen-set probe.
const MERGE_UNITS_PER_RECORD: f64 = 16.0;

/// One worker count's delivery pass over the same generated day.
pub struct WorkerRun {
    /// Mover worker count.
    pub workers: usize,
    /// Records the mover merged into the main warehouse.
    pub records: u64,
    /// Duplicate copies squashed by the merge.
    pub duplicates: u64,
    /// Landed output files across the day.
    pub output_files: u64,
    /// FNV digest over every landed file's digest, in path order.
    pub landed_digest: u64,
    /// FNV digest over the tap dispatch stream (hour order × payload order).
    pub tap_digest: u64,
    /// Committed seen-set watermarks digest (hosts × next-seq + residual).
    pub seen_digest: u64,
    /// Cost-model units for the delivery day at this worker count.
    pub cost_units: f64,
    /// `units(1) / units(workers)` — the machine-independent speedup.
    pub speedup_cost_model: f64,
    /// Wall-clock milliseconds spent inside `move_hour` (full runs only).
    pub move_ms: Option<f64>,
    /// Delivery throughput over the move calls (full runs only).
    pub records_per_sec: Option<f64>,
    /// Wall-clock speedup over the serial pass (full runs only).
    pub speedup_wall_clock: Option<f64>,
}

/// The full delivery measurement.
pub struct Measurements {
    /// Scale label of the generated day.
    pub scale: &'static str,
    /// Users in the day.
    pub users: u64,
    /// Events generated (= records offered to the daemons).
    pub events: u64,
    /// Hours that saw traffic.
    pub hours_moved: u64,
    /// Uncompressed staged bytes the decode stage read (serial pass).
    pub decode_bytes: u64,
    /// Accepted payload bytes the land stage encoded (serial pass).
    pub encode_bytes: u64,
    /// Hosts with a non-zero seen watermark after the day.
    pub seen_watermark_hosts: u64,
    /// Residual ids the watermark compaction could not absorb.
    pub seen_residual_ids: u64,
    /// One pass per entry of [`WORKER_COUNTS`].
    pub runs: Vec<WorkerRun>,
    /// Landed files, seen-set, tap stream, and report totals identical
    /// across every worker count.
    pub identical_across_workers: bool,
    /// Chaos seeds swept with the 8-worker mover.
    pub chaos_seeds: u64,
    /// Records delivered across the sweep (deterministic per seed).
    pub chaos_delivered: u64,
    /// Every swept seed invariant-clean.
    pub chaos_clean: bool,
    /// Every swept seed byte-identical to the serial mover's outcome.
    pub chaos_matches_serial: bool,
    /// `"wall_clock"` or `"cost_model"`; `None` for smoke runs.
    pub speedup_basis: Option<&'static str>,
    /// The ≥3× gate value: speedup at 8 workers on the chosen basis
    /// (cost model for smoke runs, which have no wall-clock).
    pub gate_speedup_at_8: f64,
    /// Hardware threads on the measuring host; `None` for smoke runs so
    /// the CI golden stays machine-independent.
    pub cores: Option<usize>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// Digests the tap dispatch stream without retaining it: payload order is
/// part of the delivery contract, so the digest folds lengths and bytes in
/// arrival order.
struct DigestTap(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl DeliveryTap for DigestTap {
    fn hour_delivered(&mut self, partition: &HourlyPartition, payloads: &[Vec<u8>]) {
        let mut h = self.0.load(std::sync::atomic::Ordering::Relaxed);
        h = fnv_u64(h, partition.hour_index());
        for p in payloads {
            h = fnv_u64(h, p.len() as u64);
            h = fnv_bytes(h, p);
        }
        self.0.store(h, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Drives the pre-encoded day through the full topology at one worker
/// count. `timed_moves` controls whether `move_hour` wall-clock is
/// collected (full runs) or skipped (smoke, machine-independent).
fn deliver_day(
    by_hour: &[Vec<(i64, Vec<u8>)>],
    workers: usize,
    timed_moves: bool,
) -> (WorkerRun, u64, u64, (u64, u64)) {
    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        workers: Parallelism::fixed(workers),
        ..Default::default()
    };
    let mut pipe = ScribePipeline::new(config);
    let tap_digest = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(FNV_OFFSET));
    pipe.add_delivery_tap(Box::new(DigestTap(tap_digest.clone())));

    let mut records = 0u64;
    let mut duplicates = 0u64;
    let mut output_files = 0u64;
    let mut decode_bytes = 0u64;
    let mut encode_bytes = 0u64;
    let mut move_ms = 0f64;
    for (hour, events) in by_hour.iter().enumerate() {
        for (i, (user, bytes)) in events.iter().enumerate() {
            pipe.log(
                (*user as usize) % 2,
                i % 4,
                LogEntry::new(CLIENT_EVENTS_CATEGORY, bytes.clone()),
            );
        }
        pipe.step();
        pipe.flush_hour(hour as u64);
        pipe.seal_hour(CLIENT_EVENTS_CATEGORY, hour as u64);
        let (report, ms) = timed(|| {
            pipe.move_hour(CLIENT_EVENTS_CATEGORY, hour as u64)
                .expect("fault-free day: every hour moves")
        });
        if timed_moves {
            move_ms += ms;
        }
        records += report.records;
        duplicates += report.duplicates;
        output_files += report.output_files;
        decode_bytes += report.decode_bytes;
        encode_bytes += report.encode_bytes;
    }

    // Landed-day digest: every file's block-stream digest, in path order.
    let wh = pipe.main_warehouse();
    let mut files = wh
        .list_files_recursive(&day_dir(CLIENT_EVENTS_CATEGORY, 0))
        .expect("day landed");
    files.sort();
    let mut landed = FNV_OFFSET;
    for f in &files {
        landed = fnv_bytes(landed, f.as_str().as_bytes());
        landed = fnv_u64(landed, wh.file_digest(f).expect("landed file digests"));
    }

    // Seen-set digest plus the compaction shape.
    let (watermarks, residual) = pipe.seen_snapshot();
    let mut seen = FNV_OFFSET;
    for (host, next) in &watermarks {
        seen = fnv_u64(seen, *host);
        seen = fnv_u64(seen, *next);
    }
    for id in &residual {
        seen = fnv_u64(seen, id.host);
        seen = fnv_u64(seen, id.seq);
    }

    let run = WorkerRun {
        workers,
        records,
        duplicates,
        output_files,
        landed_digest: landed,
        tap_digest: tap_digest.load(std::sync::atomic::Ordering::Relaxed),
        seen_digest: seen,
        cost_units: 0.0,
        speedup_cost_model: 0.0,
        move_ms: timed_moves.then_some(move_ms),
        records_per_sec: timed_moves.then(|| records as f64 / (move_ms / 1000.0).max(1e-9)),
        speedup_wall_clock: None,
    };
    (
        run,
        decode_bytes,
        encode_bytes,
        (watermarks.len() as u64, residual.len() as u64),
    )
}

/// `units(w)` per the module cost model.
fn cost_units(decode_bytes: u64, encode_bytes: u64, examined: u64, workers: usize) -> f64 {
    let parallel = (decode_bytes + encode_bytes) as f64 / workers as f64;
    parallel + MERGE_UNITS_PER_RECORD * examined as f64
}

/// Runs the delivery measurement at `scale` with `chaos_seeds` chaos runs.
pub fn measure_with(scale: Scale, chaos_seeds: u64, timed_moves: bool) -> Measurements {
    let config = scale.config();

    // Generate once, deliver once per worker count: the day's bytes are
    // identical across passes by construction, so any divergence below is
    // the mover's.
    let mut by_hour: Vec<Vec<(i64, Vec<u8>)>> = vec![Vec::new(); 24];
    let mut events = 0u64;
    for ev in DayStream::new(&config, 0) {
        by_hour[ev.timestamp.hour_index() as usize].push((ev.user_id, ev.to_bytes()));
        events += 1;
    }

    let mut runs = Vec::new();
    let mut decode_bytes = 0u64;
    let mut encode_bytes = 0u64;
    let mut seen_shape = (0u64, 0u64);
    for &workers in &WORKER_COUNTS {
        let (run, d, e, shape) = deliver_day(&by_hour, workers, timed_moves);
        decode_bytes = d;
        encode_bytes = e;
        seen_shape = shape;
        runs.push(run);
    }
    let hours_moved = by_hour.iter().filter(|h| !h.is_empty()).count() as u64;

    let identical_across_workers = runs.windows(2).all(|w| {
        w[0].records == w[1].records
            && w[0].duplicates == w[1].duplicates
            && w[0].output_files == w[1].output_files
            && w[0].landed_digest == w[1].landed_digest
            && w[0].tap_digest == w[1].tap_digest
            && w[0].seen_digest == w[1].seen_digest
    });

    // Cost model from the serial pass's byte counters.
    let examined = runs[0].records + runs[0].duplicates;
    let serial_units = cost_units(decode_bytes, encode_bytes, examined, 1);
    let serial_ms = runs[0].move_ms;
    for run in &mut runs {
        run.cost_units = cost_units(decode_bytes, encode_bytes, examined, run.workers);
        run.speedup_cost_model = serial_units / run.cost_units;
        run.speedup_wall_clock = match (serial_ms, run.move_ms) {
            (Some(s), Some(m)) => Some(s / m.max(1e-9)),
            _ => None,
        };
    }

    // Chaos: the 8-worker mover through the default fault mix, each seed
    // compared against the serial mover's same-seed outcome.
    let mut parallel_cfg = ChaosConfig::default();
    parallel_cfg.topology.workers = Parallelism::fixed(8);
    let serial_cfg = ChaosConfig::default();
    let mut chaos_delivered = 0u64;
    let mut chaos_clean = true;
    let mut chaos_matches_serial = true;
    for seed in 0..chaos_seeds {
        let p = run_chaos(seed, &parallel_cfg);
        let s = run_chaos(seed, &serial_cfg);
        chaos_clean &= p.is_clean();
        chaos_matches_serial &= p.report == s.report;
        chaos_matches_serial &= format!("{:?}", p.accounting) == format!("{:?}", s.accounting);
        chaos_delivered += p.accounting.delivered;
    }

    let gate_speedup_at_8 = runs
        .iter()
        .find(|r| r.workers == 8)
        .map(|r| r.speedup_cost_model)
        .unwrap_or(0.0);

    Measurements {
        scale: scale.label(),
        users: config.users,
        events,
        hours_moved,
        decode_bytes,
        encode_bytes,
        seen_watermark_hosts: seen_shape.0,
        seen_residual_ids: seen_shape.1,
        runs,
        identical_across_workers,
        chaos_seeds,
        chaos_delivered,
        chaos_clean,
        chaos_matches_serial,
        speedup_basis: None,
        gate_speedup_at_8,
        cores: None,
    }
}

/// The full run: the 1m-user day end-to-end, 16 chaos seeds, wall-clock
/// per pass. Single-core hosts gate on the cost model — wall-clock
/// parallel speedup is unobservable there and reporting it as a win (or a
/// regression) would be dishonest either way.
pub fn measure() -> Measurements {
    let mut m = measure_with(Scale::OneM, 16, true);
    let cores = detected_cores();
    m.cores = Some(cores);
    m.speedup_basis = Some(if cores == 1 {
        "cost_model"
    } else {
        "wall_clock"
    });
    if cores > 1 {
        m.gate_speedup_at_8 = m
            .runs
            .iter()
            .find(|r| r.workers == 8)
            .and_then(|r| r.speedup_wall_clock)
            .unwrap_or(0.0);
    }
    m
}

/// The smoke run CI diffs against the checked-in golden: the pinned smoke
/// day, 4 chaos seeds, no wall-clock anywhere.
pub fn smoke_snapshot() -> Measurements {
    measure_with(Scale::Smoke, 4, false)
}

/// Renders the measurement as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = format!(
        "E23 — parallel pipelined delivery at --scale {}: {} users, {} events \
         through daemon→aggregator→mover across {} traffic hours\n\n",
        m.scale, m.users, m.events, m.hours_moved
    );
    out.push_str(&format!(
        "landed files, seen-set, tap stream identical across workers \
         {WORKER_COUNTS:?}: {}\n\n",
        m.identical_across_workers
    ));
    let mut t = Table::new(&[
        "workers",
        "records",
        "duplicates",
        "files",
        "cost units",
        "speedup (model)",
        "records/sec",
        "speedup (wall)",
    ]);
    for r in &m.runs {
        t.row(cells![
            r.workers,
            r.records,
            r.duplicates,
            r.output_files,
            format!("{:.0}", r.cost_units),
            format!("{:.2}x", r.speedup_cost_model),
            r.records_per_sec
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.speedup_wall_clock
                .map(|v| format!("{v:.2}x"))
                .unwrap_or_else(|| "-".into())
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ndecode {} B staged, encode {} B accepted; seen-set compacted to \
         {} host watermarks + {} residual ids\n",
        m.decode_bytes, m.encode_bytes, m.seen_watermark_hosts, m.seen_residual_ids
    ));
    out.push_str(&format!(
        "chaos sweep (8-worker mover): {} seeds, {} records delivered, \
         clean: {}, identical to serial: {}\n",
        m.chaos_seeds, m.chaos_delivered, m.chaos_clean, m.chaos_matches_serial
    ));
    out.push_str(&format!(
        "speedup at 8 workers ({}): {:.2}x (gate: >= 3x)\n",
        m.speedup_basis.unwrap_or("cost_model"),
        m.gate_speedup_at_8
    ));
    if let Some(cores) = m.cores {
        out.push_str(&format!(
            "{cores} hardware thread(s) visible; wall-clock columns are \
             this host's, the cost model is machine-independent.\n"
        ));
    }
    out
}

/// Serializes the run as the `BENCH_delivery.json` payload (full runs) or
/// the machine-independent smoke metrics (when `cores` is unset).
pub fn to_json(m: &Measurements) -> String {
    let mut head = String::new();
    if let Some(c) = m.cores {
        head.push_str(&format!("  \"cores\": {c},\n"));
    }
    if let Some(basis) = m.speedup_basis {
        head.push_str(&format!("  \"speedup_basis\": \"{basis}\",\n"));
    }
    let runs: Vec<String> = m
        .runs
        .iter()
        .map(|r| {
            let mut wall = String::new();
            if let (Some(ms), Some(rps)) = (r.move_ms, r.records_per_sec) {
                wall.push_str(&format!(
                    "\"move_ms\": {ms:.1}, \"records_per_sec\": {rps:.0}, "
                ));
            }
            if let Some(s) = r.speedup_wall_clock {
                wall.push_str(&format!("\"speedup_wall_clock\": {s:.3}, "));
            }
            format!(
                "    {{\"workers\": {}, \"records\": {}, \"duplicates\": {}, \
                 \"output_files\": {}, {}\"cost_units\": {:.0}, \
                 \"speedup_cost_model\": {:.3}}}",
                r.workers,
                r.records,
                r.duplicates,
                r.output_files,
                wall,
                r.cost_units,
                r.speedup_cost_model,
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"delivery\",\n  \"schema\": \"uli-delivery-v1\",\n\
         {head}  \"scale\": \"{}\",\n  \"users\": {},\n  \"events\": {},\n  \
         \"hours_moved\": {},\n  \"worker_counts\": [1, 4, 8],\n  \
         \"decode_bytes\": {},\n  \"encode_bytes\": {},\n  \
         \"seen_watermark_hosts\": {},\n  \"seen_residual_ids\": {},\n  \
         \"runs\": [\n{}\n  ],\n  \"identical_across_workers\": {},\n  \
         \"chaos_seeds\": {},\n  \"chaos_delivered\": {},\n  \
         \"chaos_clean\": {},\n  \"chaos_matches_serial\": {},\n  \
         \"gate_speedup_at_8\": {:.3}\n}}\n",
        m.scale,
        m.users,
        m.events,
        m.hours_moved,
        m.decode_bytes,
        m.encode_bytes,
        m.seen_watermark_hosts,
        m.seen_residual_ids,
        runs.join(",\n"),
        m.identical_across_workers,
        m.chaos_seeds,
        m.chaos_delivered,
        m.chaos_clean,
        m.chaos_matches_serial,
        m.gate_speedup_at_8,
    )
}

/// Runs the experiment at full scale.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_delivery_is_identical_and_json_is_machine_independent() {
        let m = smoke_snapshot();
        assert_eq!(m.scale, "smoke");
        assert_eq!(m.users, 120);
        assert!(m.events > 0);
        assert!(
            m.identical_across_workers,
            "parallel delivery diverged from serial"
        );
        assert!(m.runs[0].duplicates == m.runs[1].duplicates);
        assert!(m.chaos_clean, "a chaos seed violated an invariant");
        assert!(
            m.chaos_matches_serial,
            "parallel chaos diverged from serial"
        );
        assert!(
            m.gate_speedup_at_8 >= 3.0,
            "cost-model speedup at 8 workers {:.2}x under the 3x gate",
            m.gate_speedup_at_8
        );
        assert!(
            m.seen_watermark_hosts > 0,
            "the day should compact to host watermarks"
        );
        let json = to_json(&m);
        assert!(json.contains("\"identical_across_workers\": true"));
        assert!(json.contains("\"chaos_clean\": true"));
        assert!(!json.contains("cores"), "smoke json must omit host cores");
        assert!(
            !json.contains("records_per_sec"),
            "smoke json must omit wall-clock throughput"
        );
        assert!(
            !json.contains("speedup_basis"),
            "smoke json must omit the basis (it has no wall-clock)"
        );
    }

    #[test]
    fn full_json_records_cores_and_basis() {
        let mut m = measure_with(Scale::Smoke, 2, true);
        m.cores = Some(1);
        m.speedup_basis = Some("cost_model");
        let json = to_json(&m);
        assert!(json.contains("\"cores\": 1"));
        assert!(json.contains("\"speedup_basis\": \"cost_model\""));
        assert!(json.contains("\"records_per_sec\""));
        assert!(json.contains("\"chaos_seeds\": 2"));
    }

    #[test]
    fn cost_model_is_amdahl_shaped() {
        // Parallel fraction shrinks units monotonically but never below
        // the serial merge term.
        let (d, e, n) = (1_000_000, 900_000, 10_000);
        let serial = cost_units(d, e, n, 1);
        let at4 = cost_units(d, e, n, 4);
        let at8 = cost_units(d, e, n, 8);
        assert!(serial > at4 && at4 > at8);
        assert!(at8 > MERGE_UNITS_PER_RECORD * n as f64);
        assert!(serial / at8 < 8.0, "speedup must stay sub-linear");
    }
}
