//! One module per experiment in DESIGN.md's index.

pub mod e10_summary;
pub mod e11_index;
pub mod e12_catalog;
pub mod e13_layouts;
pub mod e14_parallel;
pub mod e15_pushdown;
pub mod e16_chaos;
pub mod e17_obs;
pub mod e18_ingest;
pub mod e19_columnar;
pub mod e1_scribe;
pub mod e20_scale;
pub mod e21_stream;
pub mod e22_serve;
pub mod e23_delivery;
pub mod e2_rollups;
pub mod e3_codec;
pub mod e4_compression;
pub mod e5_query_cost;
pub mod e6_funnel;
pub mod e7_ngram;
pub mod e8_collocations;
pub mod e9_legacy;
