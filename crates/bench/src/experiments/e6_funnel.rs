//! E6 — §5.3: funnel analytics on the signup flow.
//!
//! Reproduces the paper's output shape — `(0, 490123) (1, 297071) …` — and
//! validates the measured per-stage counts against the generator's planted
//! abandonment profile, including the per-user (DISTINCT) variant.

use std::collections::BTreeSet;

use uli_analytics::{load_sequences, ClientEventsFunnel};
use uli_core::session::Materializer;
use uli_workload::{signup_funnel, WorkloadConfig};

use crate::cells;
use crate::harness::{prepare_day, Table};

/// Runs the experiment.
pub fn run() -> String {
    let config = WorkloadConfig {
        users: 800,
        funnel_fraction: 0.30,
        ..Default::default()
    };
    let prepared = prepare_day(&config, 0);
    let dict = Materializer::new(prepared.warehouse.clone())
        .load_dictionary(0)
        .expect("dictionary persisted");
    let sequences = load_sequences(&prepared.warehouse, 0).expect("materialized");

    let spec = signup_funnel();
    let funnel = ClientEventsFunnel::new(spec.stages.clone(), &dict);
    let report = funnel.evaluate(sequences.iter().map(|s| s.sequence.as_str()));

    let mut out = String::from(
        "E6 — signup funnel (§5.3)\n\
         output in the paper's `(stage, sessions)` shape; measured counts\n\
         must equal the generator's planted ground truth exactly.\n\n",
    );
    for (stage, count) in report.rows() {
        out.push_str(&format!("({stage}, {count})\n"));
    }
    out.push('\n');

    let mut t = Table::new(&[
        "stage",
        "sessions (measured)",
        "sessions (truth)",
        "abandonment",
        "planted",
    ]);
    let abandonment = report.abandonment();
    for (i, stage) in spec.stages.iter().enumerate() {
        assert_eq!(
            report.reached[i], prepared.day.truth.funnel_stage_counts[i],
            "stage {i}"
        );
        t.row(cells![
            stage,
            report.reached[i],
            prepared.day.truth.funnel_stage_counts[i],
            if i < abandonment.len() {
                format!("{:.1}%", abandonment[i] * 100.0)
            } else {
                "-".to_string()
            },
            if i < spec.continue_probability.len() {
                format!("{:.1}%", (1.0 - spec.continue_probability[i]) * 100.0)
            } else {
                "-".to_string()
            }
        ]);
    }
    out.push_str(&t.render());

    // Per-user variant: "translating these figures into the number of users
    // … is simply a matter of applying the unique operator".
    let per_user: Vec<u64> = (0..spec.stages.len())
        .map(|stage| {
            let users: BTreeSet<i64> = sequences
                .iter()
                .filter(|s| funnel.depth(&s.sequence) > stage)
                .map(|s| s.user_id)
                .collect();
            users.len() as u64
        })
        .collect();
    out.push_str("\nper-user variant (DISTINCT user_id):\n");
    for (stage, count) in per_user.iter().enumerate() {
        out.push_str(&format!("({stage}, {count})\n"));
        assert!(*count <= report.reached[stage], "users ≤ sessions");
    }
    out.push_str(&format!(
        "\nend-to-end conversion: {:.1}% of {} funnel entrants\n",
        report.conversion() * 100.0,
        report.reached.first().copied().unwrap_or(0)
    ));
    out
}
