//! E22 — the serving layer: point lookups off the incremental index vs
//! the batch engine.
//!
//! The paper's stack answers every question with a MapReduce-style scan;
//! §6 names the missing piece — a low-latency serving tier over the same
//! warehouse, kept fresh as hours land (Twitter's Elephant Twin lineage).
//! `uli-serve` supplies it; this experiment measures the reproduction:
//!
//! 1. **correctness** — one generated day is delivered through the Scribe
//!    pipeline with the columnar landing and an [`IndexMaintainer`] tap;
//!    a deterministic point-lookup suite (users present and absent, names
//!    hitting and missing the dictionary, busy/quiet/missing hours) must
//!    answer byte-identical to the batch dataflow engine at every worker
//!    count in [`WORKER_COUNTS`].
//! 2. **decoded-bytes reduction** — the serving answers must decode at
//!    most 1/50th of the bytes the batch answers decode over the same
//!    suite (the ≥50× gate), with the cost-model translation of both
//!    sides reported in milliseconds.
//! 3. **freshness + obs** — after the day lands the index lag is zero and
//!    every `serve/*` registry counter reconciles against the maintainer
//!    state, so the run is auditable from the registry alone.
//! 4. **chaos consistency** — seeded crash/duplicate/outage schedules
//!    (`run_chaos_prepared`) with crash-window injection between
//!    hour-land and index-commit: after [`IndexMaintainer::recover`] the
//!    indexed record totals must equal the audited delivered partition
//!    for every seed — never a lost hour, never a double-count.
//!
//! The smoke run's counters are machine-independent (generation,
//! delivery, landing, indexing, and the cost model are deterministic), so
//! CI diffs them against a checked-in golden; the full run persists
//! `BENCH_serve.json` with host cores and wall-clock lookup latency.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use uli_core::client_event::CLIENT_EVENTS_CATEGORY;
use uli_core::{ClientEvent, ClientEventLanding, SessionRecord};
use uli_dataflow::CostModel;
use uli_obs::Registry;
use uli_scribe::message::LogEntry;
use uli_scribe::{run_chaos_prepared, ChaosConfig, PipelineConfig, ScribePipeline};
use uli_serve::{
    batch_count, batch_sessions, batch_top_names, batch_user_events, IndexMaintainer, LookupStats,
    ServeAnswer, ServeHandle,
};
use uli_thrift::ThriftRecord;
use uli_warehouse::Warehouse;
use uli_workload::{DayStream, Scale, WorkloadConfig};

use crate::cells;
use crate::harness::{detected_cores, timed, Table};

/// Worker counts the serve/batch equivalence is checked under.
pub const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

/// Rows per sealed row group in the columnar landing. Small groups keep
/// postings fine-grained, which is what makes point-lookup pruning sharp.
pub const ROWS_PER_GROUP: usize = 8;

/// One class of point lookups (sessions / user-events / count /
/// top-names) with its decoded-byte bill on both sides.
pub struct LookupClass {
    /// Class label.
    pub label: &'static str,
    /// Lookups of this class in the suite.
    pub lookups: u64,
    /// Uncompressed bytes the serving layer decoded.
    pub serve_decoded_bytes: u64,
    /// Row groups the serving layer actually read.
    pub serve_groups_read: u64,
    /// Row groups the index proved irrelevant and skipped.
    pub serve_groups_pruned: u64,
    /// Uncompressed bytes the batch engine decoded for the same answers.
    pub batch_decoded_bytes: u64,
}

/// The full serving-layer measurement.
pub struct Measurements {
    /// Scale label of the generated day.
    pub scale: &'static str,
    /// Users in the day.
    pub users: u64,
    /// Records delivered through the pipeline.
    pub records: u64,
    /// Records that decoded as client events (== records here).
    pub events: u64,
    /// Hours with a committed index after the day landed.
    pub hours_indexed: u64,
    /// Index lag behind the newest delivered hour (must be 0).
    pub index_lag_hours: u64,
    /// Rows per row group in the columnar landing.
    pub rows_per_group: u64,
    /// Serialized bytes of all committed hour indexes.
    pub postings_bytes: u64,
    /// Decoded bytes spent building the indexes (maintenance overhead).
    pub index_build_decoded_bytes: u64,
    /// Every suite answer byte-identical to batch at every worker count.
    pub answers_match: bool,
    /// Per-class accounting.
    pub classes: Vec<LookupClass>,
    /// Point lookups in the suite.
    pub lookups: u64,
    /// Total bytes the serving layer decoded for the suite.
    pub serve_decoded_bytes: u64,
    /// Total bytes the batch engine decoded for the same suite.
    pub batch_decoded_bytes: u64,
    /// `batch_decoded_bytes / serve_decoded_bytes` — the ≥50× gate.
    pub decoded_bytes_ratio: f64,
    /// Suite cost in cost-model ms for the serving layer (pure scan of
    /// the decoded bytes at the model's per-slot rate).
    pub serve_cost_ms: f64,
    /// Suite cost in cost-model ms for batch (per-lookup job submit +
    /// task startup, plus the scan of its decoded bytes).
    pub batch_cost_ms: f64,
    /// Every `serve/*` registry metric equals the maintainer state.
    pub obs_reconciled: bool,
    /// Chaos seeds swept.
    pub chaos_seeds: u64,
    /// Records delivered across the sweep (deterministic per seed).
    pub chaos_delivered: u64,
    /// Records the rebuilt indexes account for across the sweep.
    pub chaos_indexed_records: u64,
    /// Crash-window hours `recover()` rebuilt across the sweep.
    pub chaos_rebuilt_hours: u64,
    /// Clean invariants and indexed == delivered for every seed.
    pub chaos_consistent: bool,
    /// Mean wall-clock per serve lookup, microseconds (full runs only).
    pub serve_lookup_wall_us: Option<f64>,
    /// Hardware threads on the measuring host; `None` for smoke runs so
    /// the CI golden stays machine-independent.
    pub cores: Option<usize>,
}

/// The delivered day the suite runs against.
struct Delivered {
    maintainer: IndexMaintainer,
    registry: Registry,
    warehouse: Warehouse,
    records: u64,
    events: Vec<ClientEvent>,
}

/// Deterministic suite parameters, derived from the generated day so the
/// same queries hit every scale.
struct Suite {
    /// The day's most active user (most events, smallest id on ties).
    heavy_user: i64,
    /// The user with median activity — the representative point lookup.
    /// (The heaviest user appears in nearly every tiny row group, so a
    /// day-wide lookup on them legitimately decodes most of the day.)
    median_user: i64,
    /// The day's least active user.
    light_user: i64,
    /// A user id the day never saw.
    absent_user: i64,
    /// The day's most frequent event name — guaranteed in the dictionary.
    top_name: String,
    /// A name no dictionary contains.
    absent_name: String,
    /// The hour with the most traffic.
    busy_hour: u64,
    /// The traffic hour with the least traffic.
    quiet_hour: u64,
    /// An hour past the day — never delivered, never indexed.
    missing_hour: u64,
}

/// Delivers one generated day through the Scribe pipeline, hour by hour,
/// with the columnar landing and the index-maintaining delivery tap.
fn deliver_day(config: &WorkloadConfig) -> Delivered {
    let mut pipe = ScribePipeline::new(PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        ..Default::default()
    });
    pipe.set_columnar_landing(Arc::new(ClientEventLanding {
        dictionary: true,
        rows_per_group: ROWS_PER_GROUP,
    }));
    let registry = Registry::new();
    let maintainer = IndexMaintainer::with_obs(
        pipe.main_warehouse().clone(),
        CLIENT_EVENTS_CATEGORY,
        &registry,
    );
    pipe.add_delivery_tap(maintainer.tap());
    let mut by_hour: Vec<Vec<(i64, Vec<u8>)>> = vec![Vec::new(); 24];
    let mut events = Vec::new();
    for ev in DayStream::new(config, 0) {
        by_hour[ev.timestamp.hour_index() as usize].push((ev.user_id, ev.to_bytes()));
        events.push(ev);
    }
    for (hour, hour_events) in by_hour.iter().enumerate() {
        for (i, (user, bytes)) in hour_events.iter().enumerate() {
            pipe.log(
                (*user as usize) % 2,
                i % 4,
                LogEntry::new(CLIENT_EVENTS_CATEGORY, bytes.clone()),
            );
        }
        pipe.step();
        pipe.flush_hour(hour as u64);
        pipe.seal_hour(CLIENT_EVENTS_CATEGORY, hour as u64);
        pipe.move_hour(CLIENT_EVENTS_CATEGORY, hour as u64)
            .expect("all DCs sealed");
    }
    Delivered {
        warehouse: pipe.main_warehouse().clone(),
        maintainer,
        registry,
        records: events.len() as u64,
        events,
    }
}

fn pick_suite(events: &[ClientEvent]) -> Suite {
    let mut by_user: BTreeMap<i64, u64> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
    let mut by_hour: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        *by_user.entry(ev.user_id).or_default() += 1;
        *by_name.entry(ev.name.as_str()).or_default() += 1;
        *by_hour.entry(ev.timestamp.hour_index()).or_default() += 1;
    }
    // BTreeMap iteration breaks count ties toward the smallest key, so
    // every pick is deterministic.
    let max_by_count = |m: &BTreeMap<i64, u64>, invert: bool| {
        m.iter()
            .map(|(&k, &v)| (if invert { u64::MAX - v } else { v }, k))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, k)| k)
            .unwrap_or(0)
    };
    let heavy_user = max_by_count(&by_user, false);
    let light_user = max_by_count(&by_user, true);
    let mut ranked: Vec<(u64, i64)> = by_user.iter().map(|(&u, &n)| (n, u)).collect();
    ranked.sort_unstable();
    let median_user = ranked.get(ranked.len() / 2).map(|&(_, u)| u).unwrap_or(0);
    let absent_user = by_user.keys().next_back().copied().unwrap_or(0) + 1_000;
    let top_name = by_name
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(name, _)| name.to_string())
        .unwrap_or_default();
    let busy_hour = by_hour
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(&h, _)| h)
        .unwrap_or(0);
    let quiet_hour = by_hour
        .iter()
        .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(b.0)))
        .map(|(&h, _)| h)
        .unwrap_or(0);
    Suite {
        heavy_user,
        median_user,
        light_user,
        absent_user,
        top_name,
        absent_name: "never:logged:by:any:client:ever".to_string(),
        busy_hour,
        quiet_hour,
        missing_hour: 27,
    }
}

/// The serving-layer side of the suite: every answer plus its cost.
struct ServeAnswers {
    sessions: Vec<(Vec<SessionRecord>, LookupStats)>,
    user_events: Vec<ServeAnswer>,
    counts: Vec<ServeAnswer>,
    tops: Vec<ServeAnswer>,
}

fn run_serve_suite(h: &ServeHandle, s: &Suite) -> ServeAnswers {
    let sessions = vec![
        h.sessions(s.median_user, 0).expect("serve sessions"),
        h.sessions(s.absent_user, 0).expect("serve sessions"),
    ];
    let user_events = vec![
        h.user_events(s.heavy_user, s.busy_hour).expect("serve"),
        h.user_events(s.light_user, s.quiet_hour).expect("serve"),
        h.user_events(s.absent_user, s.busy_hour).expect("serve"),
        h.user_events(s.heavy_user, s.missing_hour).expect("serve"),
    ];
    let counts = vec![
        h.count(&s.top_name, 0..24),
        h.count(&s.absent_name, 0..24),
        h.count(&s.top_name, [s.busy_hour]),
        h.count(&s.top_name, 24..48),
    ];
    let tops = vec![
        h.top_names(s.busy_hour, 5),
        h.top_names(s.quiet_hour, 3),
        h.top_names(s.missing_hour, 5),
    ];
    ServeAnswers {
        sessions,
        user_events,
        counts,
        tops,
    }
}

/// Runs the batch suite at `workers`, checks every answer against the
/// serving layer's, and (when `charge` is set) bills each class's decoded
/// bytes into `classes` by measuring warehouse stats deltas.
fn run_batch_suite(
    wh: &Warehouse,
    s: &Suite,
    serve: &ServeAnswers,
    workers: usize,
    charge: bool,
    classes: &mut [LookupClass],
) -> bool {
    let cat = CLIENT_EVENTS_CATEGORY;
    let mut matches = true;
    let mut bill = |class: usize, bytes: u64| {
        if charge {
            classes[class].batch_decoded_bytes += bytes;
        }
    };
    for (i, &user) in [s.median_user, s.absent_user].iter().enumerate() {
        let before = wh.stats();
        let b = batch_sessions(wh, cat, 0, user, workers).expect("batch sessions");
        bill(0, wh.stats().since(&before).uncompressed_bytes_read);
        matches &= b == serve.sessions[i].0;
    }
    let ue = [
        (s.heavy_user, s.busy_hour),
        (s.light_user, s.quiet_hour),
        (s.absent_user, s.busy_hour),
        (s.heavy_user, s.missing_hour),
    ];
    for (i, &(user, hour)) in ue.iter().enumerate() {
        let before = wh.stats();
        let b = batch_user_events(wh, cat, hour, user, workers).expect("batch user-events");
        bill(1, wh.stats().since(&before).uncompressed_bytes_read);
        matches &= b == serve.user_events[i].rows;
    }
    let count_specs: [(&str, Vec<u64>); 4] = [
        (&s.top_name, (0..24).collect()),
        (&s.absent_name, (0..24).collect()),
        (&s.top_name, vec![s.busy_hour]),
        (&s.top_name, (24..48).collect()),
    ];
    for (i, (name, hours)) in count_specs.iter().enumerate() {
        let before = wh.stats();
        let b = batch_count(wh, cat, hours.iter().copied(), name, workers).expect("batch count");
        bill(2, wh.stats().since(&before).uncompressed_bytes_read);
        matches &= b == serve.counts[i].rows;
    }
    let top_specs = [(s.busy_hour, 5), (s.quiet_hour, 3), (s.missing_hour, 5)];
    for (i, &(hour, k)) in top_specs.iter().enumerate() {
        let before = wh.stats();
        let b = batch_top_names(wh, cat, hour, k, workers).expect("batch top-names");
        bill(3, wh.stats().since(&before).uncompressed_bytes_read);
        matches &= b == serve.tops[i].rows;
    }
    matches
}

fn class_stats(label: &'static str, stats: &[LookupStats]) -> LookupClass {
    LookupClass {
        label,
        lookups: stats.len() as u64,
        serve_decoded_bytes: stats.iter().map(|s| s.decoded_bytes).sum(),
        serve_groups_read: stats.iter().map(|s| s.groups_read).sum(),
        serve_groups_pruned: stats.iter().map(|s| s.groups_pruned).sum(),
        batch_decoded_bytes: 0,
    }
}

/// Runs the serving measurement at `scale` with `chaos_seeds` chaos runs.
pub fn measure_with(scale: Scale, chaos_seeds: u64) -> Measurements {
    let config = scale.config();
    let d = deliver_day(&config);
    let suite = pick_suite(&d.events);

    let hours = d.maintainer.indexed_hours();
    let (mut idx_records, mut idx_events) = (0u64, 0u64);
    for &h in &hours {
        let i = d.maintainer.hour_index(h).expect("indexed hour");
        idx_records += i.records;
        idx_events += i.events;
    }

    let handle = d.maintainer.handle();
    let serve = run_serve_suite(&handle, &suite);
    let mut classes = vec![
        class_stats(
            "sessions",
            &serve.sessions.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
        ),
        class_stats(
            "user-events",
            &serve
                .user_events
                .iter()
                .map(|a| a.stats)
                .collect::<Vec<_>>(),
        ),
        class_stats(
            "count",
            &serve.counts.iter().map(|a| a.stats).collect::<Vec<_>>(),
        ),
        class_stats(
            "top-names",
            &serve.tops.iter().map(|a| a.stats).collect::<Vec<_>>(),
        ),
    ];

    let mut answers_match = true;
    for (wi, &workers) in WORKER_COUNTS.iter().enumerate() {
        answers_match &=
            run_batch_suite(&d.warehouse, &suite, &serve, workers, wi == 0, &mut classes);
    }

    let lookups: u64 = classes.iter().map(|c| c.lookups).sum();
    let serve_bytes: u64 = classes.iter().map(|c| c.serve_decoded_bytes).sum();
    let batch_bytes: u64 = classes.iter().map(|c| c.batch_decoded_bytes).sum();
    let groups_pruned: u64 = classes.iter().map(|c| c.serve_groups_pruned).sum();
    let decoded_bytes_ratio = batch_bytes as f64 / (serve_bytes.max(1)) as f64;

    // Cost-model translation: the serving layer pays only the scan of
    // what it decoded; every batch lookup also pays job submission and a
    // task startup before its (much larger) scan.
    let cm = CostModel::default();
    let scan_ms = |bytes: u64| bytes as f64 / (cm.scan_mb_per_s * 1000.0);
    let serve_cost_ms = scan_ms(serve_bytes);
    let batch_cost_ms =
        lookups as f64 * (cm.job_submit_ms + cm.task_startup_ms) + scan_ms(batch_bytes);

    // Registry reconciliation: the run must be auditable from `serve/*`
    // metrics alone.
    let snap = d.registry.snapshot();
    let obs_reconciled = snap.counter_value("serve/hours_indexed") == Some(hours.len() as u64)
        && snap.counter_value("serve/postings_bytes") == Some(d.maintainer.postings_bytes())
        && snap.counter_value("serve/lookups_served") == Some(lookups)
        && snap.counter_value("serve/row_groups_pruned") == Some(groups_pruned)
        && snap.gauge_value("serve/index_lag_hours") == Some(0)
        && d.registry.duplicate_registrations().is_empty();

    // Chaos consistency: crash-window injection between hour-land and
    // index-commit on two of every three seeds; recover() must make the
    // index account for exactly the audited delivered partition.
    let chaos_cfg = ChaosConfig::default();
    let mut chaos_delivered = 0u64;
    let mut chaos_indexed_records = 0u64;
    let mut chaos_rebuilt_hours = 0u64;
    let mut chaos_consistent = true;
    for seed in 0..chaos_seeds {
        let slot: RefCell<Option<IndexMaintainer>> = RefCell::new(None);
        let o = run_chaos_prepared(seed, &chaos_cfg, |pipe| {
            let m = IndexMaintainer::new(pipe.main_warehouse().clone(), CLIENT_EVENTS_CATEGORY);
            m.fail_next_commits(seed % 3);
            pipe.add_delivery_tap(m.tap());
            *slot.borrow_mut() = Some(m);
        });
        let m = slot.into_inner().expect("chaos prepare ran");
        chaos_consistent &= o.is_clean();
        chaos_rebuilt_hours += m.recover().expect("chaos recover");
        chaos_consistent &= m.lag_hours() == 0;
        let indexed: u64 = m
            .indexed_hours()
            .iter()
            .filter_map(|&h| m.hour_index(h))
            .map(|i| i.records)
            .sum();
        chaos_consistent &= indexed == o.accounting.delivered;
        chaos_delivered += o.accounting.delivered;
        chaos_indexed_records += indexed;
    }

    Measurements {
        scale: scale.label(),
        users: config.users,
        records: d.records,
        events: idx_events,
        hours_indexed: hours.len() as u64,
        index_lag_hours: d.maintainer.lag_hours(),
        rows_per_group: ROWS_PER_GROUP as u64,
        postings_bytes: d.maintainer.postings_bytes(),
        index_build_decoded_bytes: d.maintainer.build_decoded_bytes(),
        answers_match: answers_match && idx_records == d.records,
        classes,
        lookups,
        serve_decoded_bytes: serve_bytes,
        batch_decoded_bytes: batch_bytes,
        decoded_bytes_ratio,
        serve_cost_ms,
        batch_cost_ms,
        obs_reconciled,
        chaos_seeds,
        chaos_delivered,
        chaos_indexed_records,
        chaos_rebuilt_hours,
        chaos_consistent,
        serve_lookup_wall_us: None,
        cores: None,
    }
}

/// The full run: the default day, 16 chaos seeds, wall-clock lookup
/// latency, host cores.
pub fn measure() -> Measurements {
    let mut m = measure_with(Scale::Default, 16);
    // Wall-clock pass: re-deliver the day and time the whole suite.
    let config = Scale::Default.config();
    let d = deliver_day(&config);
    let suite = pick_suite(&d.events);
    let handle = d.maintainer.handle();
    let ((), ms) = timed(|| {
        run_serve_suite(&handle, &suite);
    });
    m.serve_lookup_wall_us = Some(ms * 1000.0 / m.lookups.max(1) as f64);
    m.cores = Some(detected_cores());
    m
}

/// The smoke run CI diffs against the checked-in golden: the pinned smoke
/// day, 4 chaos seeds, no wall-clock anywhere.
pub fn smoke_snapshot() -> Measurements {
    measure_with(Scale::Smoke, 4)
}

/// Renders the measurement as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = format!(
        "E22 — serving layer at --scale {}: {} users, {} records landed \
         columnar ({} rows/group), {} hours indexed, lag {}\n\n",
        m.scale, m.users, m.records, m.rows_per_group, m.hours_indexed, m.index_lag_hours
    );
    out.push_str(&format!(
        "index: {} B postings committed, {} B decoded building them\n\
         answers byte-identical to batch at workers {WORKER_COUNTS:?}: {}\n\n",
        m.postings_bytes, m.index_build_decoded_bytes, m.answers_match
    ));
    let mut t = Table::new(&[
        "lookup class",
        "lookups",
        "serve B decoded",
        "batch B decoded",
        "groups read",
        "groups pruned",
    ]);
    for c in &m.classes {
        t.row(cells![
            c.label,
            c.lookups,
            c.serve_decoded_bytes,
            c.batch_decoded_bytes,
            c.serve_groups_read,
            c.serve_groups_pruned
        ]);
    }
    t.row(cells![
        "total",
        m.lookups,
        m.serve_decoded_bytes,
        m.batch_decoded_bytes,
        "",
        ""
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ndecoded-bytes reduction: {:.1}x (gate: >= 50x)\n\
         cost model: serve {:.2} ms vs batch {:.0} ms for the suite\n",
        m.decoded_bytes_ratio, m.serve_cost_ms, m.batch_cost_ms
    ));
    out.push_str(&format!(
        "obs: serve/* registry reconciles against maintainer state: {}\n",
        m.obs_reconciled
    ));
    out.push_str(&format!(
        "chaos sweep: {} seeds, {} records delivered, {} indexed, {} \
         crash-window hours rebuilt, consistent: {}\n",
        m.chaos_seeds,
        m.chaos_delivered,
        m.chaos_indexed_records,
        m.chaos_rebuilt_hours,
        m.chaos_consistent
    ));
    if let Some(us) = m.serve_lookup_wall_us {
        out.push_str(&format!("serve lookup wall clock: {us:.1} us/lookup\n"));
    }
    if let Some(cores) = m.cores {
        out.push_str(&format!(
            "{cores} hardware thread(s) visible; wall clock is from this host.\n"
        ));
    }
    out
}

/// Serializes the run as the `BENCH_serve.json` payload (full runs) or
/// the machine-independent smoke metrics (when `cores` is unset).
pub fn to_json(m: &Measurements) -> String {
    let mut head = String::new();
    if let Some(c) = m.cores {
        head.push_str(&format!("  \"cores\": {c},\n"));
    }
    if let Some(us) = m.serve_lookup_wall_us {
        head.push_str(&format!("  \"serve_lookup_wall_us\": {us:.1},\n"));
    }
    let classes: Vec<String> = m
        .classes
        .iter()
        .map(|c| {
            format!(
                "    {{\"label\": \"{}\", \"lookups\": {}, \
                 \"serve_decoded_bytes\": {}, \"batch_decoded_bytes\": {}, \
                 \"groups_read\": {}, \"groups_pruned\": {}}}",
                c.label,
                c.lookups,
                c.serve_decoded_bytes,
                c.batch_decoded_bytes,
                c.serve_groups_read,
                c.serve_groups_pruned
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"serve\",\n  \"schema\": \"uli-serve-v1\",\n\
         {head}  \"scale\": \"{}\",\n  \"users\": {},\n  \"records\": {},\n  \
         \"events\": {},\n  \"hours_indexed\": {},\n  \
         \"index_lag_hours\": {},\n  \"rows_per_group\": {},\n  \
         \"postings_bytes\": {},\n  \"index_build_decoded_bytes\": {},\n  \
         \"worker_counts\": [1, 4, 8],\n  \"answers_match\": {},\n  \
         \"classes\": [\n{}\n  ],\n  \"lookups\": {},\n  \
         \"serve_decoded_bytes\": {},\n  \"batch_decoded_bytes\": {},\n  \
         \"decoded_bytes_ratio\": {:.1},\n  \"serve_cost_ms\": {:.3},\n  \
         \"batch_cost_ms\": {:.1},\n  \"obs_reconciled\": {},\n  \
         \"chaos_seeds\": {},\n  \"chaos_delivered\": {},\n  \
         \"chaos_indexed_records\": {},\n  \"chaos_rebuilt_hours\": {},\n  \
         \"chaos_consistent\": {}\n}}\n",
        m.scale,
        m.users,
        m.records,
        m.events,
        m.hours_indexed,
        m.index_lag_hours,
        m.rows_per_group,
        m.postings_bytes,
        m.index_build_decoded_bytes,
        m.answers_match,
        classes.join(",\n"),
        m.lookups,
        m.serve_decoded_bytes,
        m.batch_decoded_bytes,
        m.decoded_bytes_ratio,
        m.serve_cost_ms,
        m.batch_cost_ms,
        m.obs_reconciled,
        m.chaos_seeds,
        m.chaos_delivered,
        m.chaos_indexed_records,
        m.chaos_rebuilt_hours,
        m.chaos_consistent,
    )
}

/// Runs the experiment at full scale.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_serving_layer_matches_batch_and_prunes_50x() {
        let m = smoke_snapshot();
        assert_eq!(m.scale, "smoke");
        assert_eq!(m.users, 120);
        assert_eq!(m.records, 2657);
        assert_eq!(m.records, m.events, "landed payloads all decode");
        assert_eq!(m.hours_indexed, 24);
        assert_eq!(m.index_lag_hours, 0);
        assert!(m.answers_match, "serve diverged from batch");
        assert!(
            m.decoded_bytes_ratio >= 50.0,
            "decoded-bytes reduction {}x under the 50x gate ({} vs {} B)",
            m.decoded_bytes_ratio,
            m.serve_decoded_bytes,
            m.batch_decoded_bytes
        );
        assert!(m.obs_reconciled, "serve/* registry drifted from state");
        assert!(m.chaos_consistent);
        assert!(m.chaos_rebuilt_hours > 0, "no crash-window was exercised");
        assert!(m.serve_cost_ms < m.batch_cost_ms);
        let json = to_json(&m);
        assert!(json.contains("\"answers_match\": true"));
        assert!(json.contains("\"chaos_consistent\": true"));
        assert!(!json.contains("cores"), "smoke json must omit host cores");
        assert!(
            !json.contains("wall_us"),
            "smoke json must omit wall-clock latency"
        );
    }

    #[test]
    fn full_json_records_cores_and_wall_clock() {
        let mut m = measure_with(Scale::Smoke, 2);
        m.cores = Some(2);
        m.serve_lookup_wall_us = Some(321.5);
        let json = to_json(&m);
        assert!(json.contains("\"cores\": 2"));
        assert!(json.contains("\"serve_lookup_wall_us\": 321.5"));
        assert!(json.contains("\"chaos_seeds\": 2"));
    }
}
