//! E1 — Figure 1 / §2: the Scribe delivery pipeline under faults.
//!
//! Paper claim: "The entire pipeline is robust with respect to transient
//! failures — Scribe daemons discover alternative aggregators via ZooKeeper
//! upon aggregator failure, and aggregators buffer data on local disk in
//! case of HDFS outages." Hard crashes may lose unflushed data (Scribe is
//! not a database); the experiment quantifies the envelope.

use uli_scribe::pipeline::PipelineConfig;
use uli_scribe::{LogEntry, ScribePipeline};
use uli_thrift::ThriftRecord;
use uli_workload::{generate_day, WorkloadConfig};

use crate::cells;
use crate::harness::{timed, Table};

/// Drives one day through the pipeline with the given fault plan. Returns
/// (pipeline, wall ms).
pub fn drive(faults: bool) -> (ScribePipeline, f64) {
    let config = PipelineConfig {
        datacenters: 3,
        hosts_per_dc: 16,
        aggregators_per_dc: 4,
        records_per_file: 50_000,
        ..Default::default()
    };
    let day = generate_day(
        &WorkloadConfig {
            users: 300,
            ..Default::default()
        },
        0,
    );
    let mut pipe = ScribePipeline::new(config);
    let ((), ms) = timed(|| {
        for hour in 0..24u64 {
            for (i, ev) in day
                .events
                .iter()
                .filter(|e| e.timestamp.hour_index() == hour)
                .enumerate()
            {
                let dc = (ev.user_id as usize) % config.datacenters;
                pipe.log(
                    dc,
                    i % config.hosts_per_dc,
                    LogEntry::new("client_events", ev.to_bytes()),
                );
            }
            pipe.step();
            if faults {
                match hour {
                    6 => {
                        pipe.crash_aggregator(0, 0);
                        pipe.spawn_aggregator(0, 0);
                        pipe.step();
                    }
                    12 => pipe.set_staging_available(1, false),
                    14 => pipe.set_staging_available(1, true),
                    _ => {}
                }
            }
            pipe.flush_hour(hour);
            pipe.seal_hour("client_events", hour);
            let _ = pipe.move_hour("client_events", hour);
        }
        // Recovery sweep: flush buffers and move any deferred hours.
        pipe.flush_hour(23);
        for hour in 0..24u64 {
            pipe.seal_hour("client_events", hour);
            let _ = pipe.move_hour("client_events", hour);
        }
    });
    (pipe, ms)
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from(
        "E1 — Scribe pipeline robustness (Fig. 1, §2)\n\
         3 DCs x 16 hosts, 4 aggregators/DC; faults: 1 aggregator crash,\n\
         one 2-hour staging outage; hourly flush/seal/move.\n\n",
    );
    let mut table = Table::new(&[
        "scenario",
        "logged",
        "accepted",
        "flushed",
        "moved",
        "crash-lost",
        "host-buffered",
        "wall-ms",
    ]);
    for (label, faults) in [("fault-free", false), ("with-faults", true)] {
        let (pipe, ms) = drive(faults);
        let r = pipe.report();
        table.row(cells![
            label,
            r.logged,
            r.accepted,
            r.flushed,
            r.moved,
            r.lost_in_crashes,
            r.host_buffered,
            format!("{ms:.0}")
        ]);
        assert_eq!(
            r.moved + r.lost_in_crashes,
            r.logged,
            "conservation: moved + lost == logged"
        );
        if !faults {
            assert_eq!(r.lost_in_crashes, 0);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\ninvariant checked: moved + crash-lost == logged in both scenarios\n\
         (paper: robust to transient failures; hard crashes bound the loss\n\
         to entries accepted but not yet flushed).\n",
    );
    out
}
