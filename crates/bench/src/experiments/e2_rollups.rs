//! E2 — Table 1 / §3.2: the hierarchical namespace and its five automatic
//! roll-up schemas, with country and login breakdowns.

use uli_core::event::EventPattern;
use uli_oink::{compute_rollups, ROLLUP_LEVELS};

use crate::cells;
use crate::harness::{prepare_day, standard_config, Table};

/// Runs the experiment.
pub fn run() -> String {
    let prepared = prepare_day(&standard_config(), 0);
    let table = compute_rollups(&prepared.warehouse, 0).expect("day present");

    let mut out = String::from(
        "E2 — hierarchical namespace roll-ups (Table 1, §3.2)\n\
         counts aggregated under the five automatic schemas, by country and\n\
         logged-in status, with no developer intervention.\n\n",
    );

    // Grand-total invariant: every schema level counts each event once.
    let totals: Vec<u64> = ROLLUP_LEVELS
        .iter()
        .map(|level| {
            table
                .iter()
                .filter(|(k, _)| k.level == *level)
                .map(|(_, v)| v)
                .sum()
        })
        .collect();
    for t in &totals {
        assert_eq!(
            *t as usize,
            prepared.day.events.len(),
            "level totals equal events"
        );
    }
    out.push_str(&format!(
        "events: {}; every schema level totals the same (checked)\n\n",
        prepared.day.events.len()
    ));

    let mut t = Table::new(&["schema", "distinct keys", "top roll-up", "count"]);
    for level in ROLLUP_LEVELS {
        let keys = table.iter().filter(|(k, _)| k.level == level).count();
        let top = table.top_k(level, 1);
        let (name, count) = top.first().cloned().unwrap_or_default();
        let schema = match level {
            5 => "(client, page, section, component, element, action)",
            4 => "(client, page, section, component, *, action)",
            3 => "(client, page, section, *, *, action)",
            2 => "(client, page, *, *, *, action)",
            _ => "(client, *, *, *, *, action)",
        };
        t.row(cells![schema, keys, name, count]);
    }
    out.push_str(&t.render());

    // Wildcard slicing: the paper's two examples.
    let dict_universe: Vec<_> = prepared.day.events.iter().map(|e| e.name.clone()).collect();
    let mut universe = dict_universe;
    universe.sort();
    universe.dedup();
    out.push_str("\nwildcard slicing over the day's universe:\n");
    for pattern in ["web:home:mentions:*", "*:profile_click"] {
        let p = EventPattern::parse(pattern).expect("paper patterns are valid");
        let matched = universe.iter().filter(|n| p.matches(n)).count();
        out.push_str(&format!("  {pattern:<24} matches {matched} event types\n"));
        assert!(matched > 0, "paper patterns must match the workload");
    }

    // Country x login drill-down for the top level-1 roll-up.
    if let Some((top_name, _)) = table.top_k(1, 1).first().cloned() {
        out.push_str(&format!("\nbreakdown of {top_name}:\n"));
        let mut bt = Table::new(&["country", "logged-in", "logged-out"]);
        for country in ["us", "uk", "jp", "br", "de"] {
            bt.row(cells![
                country,
                table.get(1, &top_name, country, true),
                table.get(1, &top_name, country, false)
            ]);
        }
        out.push_str(&bt.render());
    }
    out
}
