//! E13 — §4.2's design discussion: why materialize *sequences* rather than
//! re-lay-out the raw Thrift or go columnar.
//!
//! "We had originally considered an alternative design where we simply
//! reorganized (i.e., rewrote) the complete Thrift messages by
//! reconstructing user sessions. This would have solved the second issue
//! (large group-by operations) but would have little impact on the first
//! (too many brute force scans). To mitigate that issue, we could adopt a
//! columnar storage format such as RCFile. However, this solution primarily
//! focuses on reducing the running time of each map task; without
//! modification, RCFiles would not reduce the number of mappers …
//! Our materialized session sequences … address both the group-by and brute
//! force scan issues at the same time."
//!
//! The experiment materializes all four layouts from one day of ground
//! truth and scores them on the two §4 costs: scan volume (bytes a
//! name-only counting query must process; scan units ≈ mappers) and
//! whether session reconstruction still needs a shuffle.

use std::collections::BTreeMap;

use uli_core::client_event::ClientEvent;
use uli_core::session::{day_dir, sequences_dir};
use uli_thrift::ThriftRecord;
use uli_warehouse::{ColumnarReader, ColumnarWriter, Warehouse, WhPath};

use crate::cells;
use crate::harness::{prepare_day, standard_config, Table};

/// The rejected "rewrite the complete Thrift messages grouped by session".
fn materialize_resessioned(wh: &Warehouse, events: &[ClientEvent]) -> WhPath {
    let mut by_session: BTreeMap<(i64, &str), Vec<&ClientEvent>> = BTreeMap::new();
    for ev in events {
        by_session
            .entry((ev.user_id, ev.session_id.as_str()))
            .or_default()
            .push(ev);
    }
    let dir = WhPath::parse("/layouts/resessioned").expect("valid");
    let mut w = wh
        .create(&dir.child("part-00000").expect("valid"))
        .expect("fresh dir");
    for evs in by_session.values() {
        for ev in evs {
            w.append_record(&ev.to_bytes());
        }
    }
    w.finish().expect("writes succeed");
    dir
}

/// The rejected RCFile-like columnar layout over the seven event fields.
/// Returns the directory and the total uncompressed cell bytes (the logical
/// data volume splits are computed over).
fn materialize_columnar(wh: &Warehouse, events: &[ClientEvent]) -> (WhPath, u64) {
    let dir = WhPath::parse("/layouts/columnar").expect("valid");
    let path = dir.child("part-00000").expect("valid");
    let mut logical_bytes = 0u64;
    let mut w = ColumnarWriter::create(wh, &path, 7, 256).expect("fresh dir");
    for ev in events {
        let initiator = ev.initiator.to_string();
        let ts = ev.timestamp.millis().to_string();
        let user = ev.user_id.to_string();
        let details = format!("{:?}", ev.details);
        let cells = [
            initiator.as_bytes(),
            ev.name.as_str().as_bytes(),
            user.as_bytes(),
            ev.session_id.as_bytes(),
            ev.ip.as_bytes(),
            ts.as_bytes(),
            details.as_bytes(),
        ];
        logical_bytes += cells.iter().map(|c| c.len() as u64).sum::<u64>();
        w.append_row(&cells);
    }
    w.finish().expect("writes succeed");
    (dir, logical_bytes)
}

/// Runs the experiment.
pub fn run() -> String {
    let prepared = prepare_day(&standard_config(), 0);
    let wh = prepared.warehouse.clone();
    let events = &prepared.day.events;

    let raw_dir = day_dir("client_events", 0);
    let re_dir = materialize_resessioned(&wh, events);
    let (col_dir, col_logical_bytes) = materialize_columnar(&wh, events);
    let seq_dir = sequences_dir(0);
    // Scan units are 64 KiB input splits over each layout's logical data
    // volume — the quantity Hadoop derives mapper counts from. Using a
    // uniform rule removes small-file artifacts from the comparison.
    let block = wh.block_capacity() as u64;
    let units_of = |bytes: u64| bytes.div_ceil(block).max(1);

    // --- The counting query's scan cost per layout: what must be read to
    //     see every event *name*. ---
    // Row formats (raw, resessioned): full records decompress.
    let scan_rows = |dir: &WhPath| -> u64 {
        wh.reset_stats();
        for f in wh.list_files_recursive(dir).expect("dir exists") {
            let mut r = wh.open(&f).expect("file opens");
            while let Some(rec) = r.next_record().expect("clean read") {
                std::hint::black_box(rec.len());
            }
        }
        wh.stats().uncompressed_bytes_read
    };
    let raw_bytes = scan_rows(&raw_dir);
    let re_bytes = scan_rows(&re_dir);
    let seq_bytes = scan_rows(&seq_dir);
    let (raw_units, re_units, seq_units) =
        (units_of(raw_bytes), units_of(re_bytes), units_of(seq_bytes));

    // Columnar: project only the name column.
    let col_path = col_dir.child("part-00000").expect("valid");
    let mut col = ColumnarReader::open(&wh, &col_path, &[1]).expect("file opens");
    while col.next_row().expect("clean read").is_some() {}
    let col_stats = col.stats();

    let mut out = String::from(
        "E13 — storage layout ablation (§4.2's design discussion)\n\
         cost of a name-only counting query plus whether session\n\
         reconstruction still needs a cluster-wide group-by.\n\n",
    );
    let mut t = Table::new(&[
        "layout",
        "on-disk KB",
        "scan units (≈mappers)",
        "KB processed for names",
        "group-by needed?",
    ]);
    let disk = |dir: &WhPath| {
        wh.dir_meta(dir)
            .map(|m| m.compressed_bytes / 1024)
            .unwrap_or(0)
    };
    t.row(cells![
        "raw hourly thrift (status quo)",
        disk(&raw_dir),
        raw_units,
        raw_bytes / 1024,
        "yes — every query"
    ]);
    t.row(cells![
        "resessioned full thrift (rejected #1)",
        disk(&re_dir),
        re_units,
        re_bytes / 1024,
        "no"
    ]);
    t.row(cells![
        "RCFile-like columnar (rejected #2)",
        disk(&col_dir),
        units_of(col_logical_bytes),
        col_stats.bytes_decompressed / 1024,
        "yes — every query"
    ]);
    t.row(cells![
        "session sequences (chosen)",
        disk(&seq_dir),
        seq_units,
        seq_bytes / 1024,
        "no"
    ]);
    out.push_str(&t.render());

    // The paper's three comparative claims, asserted.
    assert!(
        re_bytes >= raw_bytes / 2,
        "resessioning leaves scan volume essentially unchanged"
    );
    assert!(
        col_stats.bytes_decompressed * 2 < raw_bytes,
        "columnar projection cuts per-task bytes"
    );
    let col_units = units_of(col_logical_bytes);
    assert!(
        col_units * 2 > raw_units,
        "columnar scan units stay the same order of magnitude: {col_units} vs {raw_units}"
    );
    assert!(
        seq_bytes * 5 < raw_bytes && seq_units * 5 < raw_units,
        "sequences cut BOTH bytes and scan units"
    );
    out.push_str(
        "\nchecked: resessioning leaves scan volume unchanged; columnar cuts\n\
         per-task bytes but not scan units; only the sequences cut both —\n\
         'address both the group-by and brute force scan issues at the same\n\
         time' (§4.2).\n",
    );
    out
}
