//! E12 — §4.3: the automatically-generated client event catalog.
//!
//! "Since the event catalog is rebuilt every day, it is always up to date
//! … the catalog remains immensely useful as a single point of entry for
//! understanding log contents."

use uli_core::catalog::ClientEventCatalog;
use uli_core::event::EventPattern;
use uli_core::session::Materializer;
use uli_workload::WorkloadConfig;

use crate::cells;
use crate::harness::{prepare_days, Table};

/// Runs the experiment.
pub fn run() -> String {
    let config = WorkloadConfig {
        users: 300,
        ..Default::default()
    };
    let (wh, workloads) = prepare_days(&config, 2);
    let m = Materializer::new(wh.clone());

    // Day 0 build.
    let dict0 = m.load_dictionary(0).expect("day 0 dictionary");
    let samples0 = m.load_samples(0).expect("day 0 samples");
    let mut catalog = ClientEventCatalog::build(0, &dict0, &samples0);
    assert_eq!(catalog.len() as u64, workloads[0].truth.distinct_events);

    let mut out = format!(
        "E12 — client event catalog (§4.3)\n\
         day 0: {} event types cataloged, each with count, rank, samples.\n\n",
        catalog.len()
    );

    // Hierarchical browse.
    out.push_str("hierarchical browse (clients, then web pages):\n");
    let mut t = Table::new(&["level", "value", "events"]);
    for (client, count) in catalog.browse(&[]) {
        t.row(cells!["client", client, count]);
    }
    for (page, count) in catalog.browse(&["web"]) {
        t.row(cells!["web page", page, count]);
    }
    out.push_str(&t.render());

    // Pattern search.
    let hits = catalog.search(&EventPattern::parse("*:profile_click").unwrap());
    out.push_str(&format!(
        "\npattern search '*:profile_click': {} event types\n",
        hits.len()
    ));
    assert!(!hits.is_empty());

    // Developer description + daily rebuild.
    let top = catalog.by_frequency()[0].name.clone();
    catalog.describe(&top, "Most frequent event; baseline for CTR metrics.");
    let dict1 = m.load_dictionary(1).expect("day 1 dictionary");
    let samples1 = m.load_samples(1).expect("day 1 samples");
    let rebuilt = catalog.rebuild(1, &dict1, &samples1);
    assert_eq!(rebuilt.day_index(), 1);
    assert_eq!(
        rebuilt.get(&top).and_then(|e| e.description.as_deref()),
        Some("Most frequent event; baseline for CTR metrics."),
        "descriptions survive the daily rebuild"
    );
    assert_eq!(rebuilt.len() as u64, workloads[1].truth.distinct_events);
    out.push_str(&format!(
        "\nrebuilt for day 1 ({} types); developer description attached on\n\
         day 0 survived the rebuild (checked).\n\nsample entry:\n{}",
        rebuilt.len(),
        rebuilt.render_entry(&top).expect("entry exists")
    ));
    out
}
