//! E17 — unified observability: one metrics/span registry across the whole
//! pipeline.
//!
//! The paper's pipeline spans four loosely coupled layers — Scribe
//! delivery, the main warehouse, Oink scheduling, and the Pig-style query
//! engine — and §2 motivates the whole system by how hard it was to answer
//! "where did this day's data go?" across them. This experiment threads a
//! single [`Registry`] through every layer, drives an E1-style faulty day
//! end to end (aggregator crash at hour 6, a two-hour staging outage, Oink
//! retrying the mover until it succeeds, then the daily materialize +
//! count query), and checks two things:
//!
//! 1. **Reconciliation** — the layers agree with each other through the
//!    registry alone: entries logged by Scribe equal records scanned by
//!    the dataflow source stage plus crash losses and policy drops.
//! 2. **Determinism** — the exported snapshot (metrics, span forest, and
//!    critical path) is byte-identical at every worker count, so a golden
//!    file diff is a meaningful CI gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::session::{day_dir, Materializer};
use uli_dataflow::prelude::*;
use uli_obs::Registry;
use uli_oink::Oink;
use uli_scribe::pipeline::PipelineConfig;
use uli_scribe::{LogEntry, ScribePipeline};
use uli_thrift::ThriftRecord;
use uli_workload::{generate_day, WorkloadConfig};

use crate::cells;
use crate::harness::Table;

/// One run of the instrumented day at a fixed worker count.
pub struct ObsSample {
    /// Worker count used by the materializer and the query engine.
    pub workers: usize,
    /// `scribe/logged` — entries logged on production hosts.
    pub logged: u64,
    /// `scribe/moved` — entries merged into the main warehouse.
    pub moved: u64,
    /// `scribe/lost_in_crashes` — entries lost to the hour-6 crash.
    pub crash_lost: u64,
    /// `scribe/dropped_disk_full` — entries dropped at full host buffers.
    pub dropped: u64,
    /// `dataflow/input_records` — records scanned by the count query's
    /// source stage.
    pub scanned: u64,
    /// Sessions materialized by the Oink-scheduled daily job.
    pub sessions: u64,
    /// The count the query itself returned (must equal `scanned`).
    pub counted: u64,
    /// `oink/jobs_failed` — mover attempts that failed during the outage.
    pub oink_failures: u64,
    /// The full exported snapshot (metrics + span forest + critical path).
    pub snapshot_json: String,
    /// The rendered critical-path report.
    pub critical_path: String,
}

/// The full sweep result.
pub struct Measurements {
    /// Samples in worker order.
    pub samples: Vec<ObsSample>,
    /// True when every worker count exported a byte-identical snapshot.
    pub snapshots_identical: bool,
    /// True when `logged == scanned + crash_lost + dropped` in every
    /// sample (and the query's own count agrees with the scan counter).
    pub reconciled: bool,
    /// True when no sample recorded a duplicate metric registration.
    pub duplicates_clean: bool,
    /// Hardware threads on the measuring host; `None` for smoke runs (the
    /// CI-diffed smoke snapshot must stay machine-independent).
    pub cores: Option<usize>,
}

/// Drives one instrumented day: Scribe delivery with E1's fault plan, the
/// Oink-scheduled hourly mover (retried through the outage), and the daily
/// materialize + count-query jobs, all sharing one registry.
fn run_once(users: u64, workers: usize) -> ObsSample {
    let registry = Registry::new();
    let config = PipelineConfig {
        datacenters: 2,
        hosts_per_dc: 4,
        aggregators_per_dc: 2,
        records_per_file: 10_000,
        ..Default::default()
    };
    let day = generate_day(
        &WorkloadConfig {
            users,
            ..Default::default()
        },
        0,
    );
    let pipe = Arc::new(Mutex::new(ScribePipeline::new_with_obs(config, &registry)));
    let main = pipe.lock().unwrap().main_warehouse().clone();

    let mut oink = Oink::new();
    oink.attach_obs(&registry);
    let mover_pipe = Arc::clone(&pipe);
    oink.add_hourly("scribe_move", &[], move |hour| {
        let mut p = mover_pipe.lock().unwrap();
        p.seal_hour("client_events", hour);
        p.move_hour("client_events", hour)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let sessions_out = Arc::new(AtomicU64::new(0));
    let sessions_sink = Arc::clone(&sessions_out);
    let session_wh = main.clone();
    oink.add_daily("sessions", &["scribe_move"], move |day_index| {
        let m = Materializer::new(session_wh.clone()).with_parallelism(Parallelism::fixed(workers));
        let report = m.run_day(day_index).map_err(|e| e.to_string())?;
        sessions_sink.store(report.sessions, Ordering::SeqCst);
        Ok(())
    });
    // Build the engine once, outside the job closure: jobs may be retried,
    // and a second `with_obs` on the same registry would show up in the
    // duplicate-registration gate.
    let engine = Engine::new(main.clone())
        .with_obs(&registry)
        .with_parallelism(Parallelism::fixed(workers));
    let plan = Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .aggregate(vec![Agg::count()]);
    let counted_out = Arc::new(AtomicU64::new(0));
    let counted_sink = Arc::clone(&counted_out);
    oink.add_daily("count_query", &["sessions"], move |_day_index| {
        let result = engine.run(&plan).map_err(|e| e.to_string())?;
        match result.rows[0][0] {
            Value::Int(n) => counted_sink.store(n as u64, Ordering::SeqCst),
            ref other => return Err(format!("count query returned {other:?}")),
        }
        Ok(())
    });

    // E1's fault plan, with the mover driven by Oink instead of inline:
    // failed moves during the outage are retried on every later advance.
    for hour in 0..24u64 {
        {
            let mut p = pipe.lock().unwrap();
            for (i, ev) in day
                .events
                .iter()
                .filter(|e| e.timestamp.hour_index() == hour)
                .enumerate()
            {
                let dc = (ev.user_id as usize) % config.datacenters;
                p.log(
                    dc,
                    i % config.hosts_per_dc,
                    LogEntry::new("client_events", ev.to_bytes()),
                );
            }
            p.step();
            match hour {
                6 => {
                    p.crash_aggregator(0, 0);
                    p.spawn_aggregator(0, 0);
                    p.step();
                }
                12 => p.set_staging_available(1, false),
                14 => p.set_staging_available(1, true),
                _ => {}
            }
            p.flush_hour(hour);
        }
        oink.advance_hour(hour);
    }
    // Recovery sweep: flush whatever is still buffered, then let Oink
    // retry anything that failed (all periods are already completed in the
    // fault-free case, so this is a no-op there).
    pipe.lock().unwrap().flush_hour(23);
    oink.advance_hour(23);

    let snap = registry.snapshot();
    let counter = |key: &str| snap.counter_value(key).unwrap_or(0);
    ObsSample {
        workers,
        logged: counter("scribe/logged"),
        moved: counter("scribe/moved"),
        crash_lost: counter("scribe/lost_in_crashes"),
        dropped: counter("scribe/dropped_disk_full"),
        scanned: counter("dataflow/input_records"),
        sessions: sessions_out.load(Ordering::SeqCst),
        counted: counted_out.load(Ordering::SeqCst),
        oink_failures: counter("oink/jobs_failed"),
        critical_path: snap.critical_path_report(),
        snapshot_json: snap.to_json(),
    }
}

/// Runs the sweep at full scale.
pub fn measure() -> Measurements {
    let mut m = measure_with(300, &[1, 4, 8]);
    m.cores = Some(crate::harness::detected_cores());
    m
}

/// The sweep at a chosen scale — `--smoke` uses a small day and two worker
/// counts; CI golden-diffs the smoke snapshot.
pub fn measure_with(users: u64, worker_counts: &[usize]) -> Measurements {
    let mut samples = Vec::new();
    for &workers in worker_counts {
        samples.push(run_once(users, workers));
    }
    let snapshots_identical = samples
        .windows(2)
        .all(|w| w[0].snapshot_json == w[1].snapshot_json);
    let reconciled = samples
        .iter()
        .all(|s| s.logged == s.scanned + s.crash_lost + s.dropped && s.counted == s.scanned);
    let duplicates_clean = samples
        .iter()
        .all(|s| !s.snapshot_json.contains("\"duplicate_registrations\": [\""));
    Measurements {
        samples,
        snapshots_identical,
        reconciled,
        duplicates_clean,
        cores: None,
    }
}

/// Renders the sweep as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = String::from(
        "E17 — unified observability: one registry across scribe, warehouse,\n\
         oink, and dataflow; E1 fault plan; Oink-scheduled mover + daily jobs\n\n",
    );
    let mut t = Table::new(&[
        "workers",
        "logged",
        "moved",
        "crash-lost",
        "scanned",
        "counted",
        "sessions",
        "mover-failures",
        "snapshot-bytes",
    ]);
    for s in &m.samples {
        t.row(cells![
            s.workers,
            s.logged,
            s.moved,
            s.crash_lost,
            s.scanned,
            s.counted,
            s.sessions,
            s.oink_failures,
            s.snapshot_json.len()
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nreconciled (logged == scanned + crash-lost + dropped): {}\n\
         snapshots byte-identical across worker counts: {}\n\
         duplicate registrations: {}\n\ncritical path (workers={}):\n{}",
        m.reconciled,
        m.snapshots_identical,
        if m.duplicates_clean { "none" } else { "FOUND" },
        m.samples[0].workers,
        m.samples[0].critical_path,
    ));
    out
}

/// Serializes the sweep as the `BENCH_obs.json` payload. The first
/// sample's full snapshot is embedded verbatim (it is byte-identical to
/// every other sample's whenever `snapshots_identical` holds).
pub fn to_json(m: &Measurements) -> String {
    let mut rows = Vec::new();
    for s in &m.samples {
        rows.push(format!(
            "    {{\"workers\": {}, \"logged\": {}, \"moved\": {}, \"crash_lost\": {}, \
             \"scanned\": {}, \"counted\": {}, \"sessions\": {}, \"oink_failures\": {}}}",
            s.workers,
            s.logged,
            s.moved,
            s.crash_lost,
            s.scanned,
            s.counted,
            s.sessions,
            s.oink_failures
        ));
    }
    let snapshot = m.samples[0]
        .snapshot_json
        .lines()
        .collect::<Vec<_>>()
        .join("\n  ");
    let cores = m
        .cores
        .map_or(String::new(), |c| format!("  \"cores\": {c},\n"));
    format!(
        "{{\n  \"experiment\": \"obs\",\n{}  \"reconciled\": {},\n  \
         \"snapshots_identical\": {},\n  \"duplicates_clean\": {},\n  \
         \"samples\": [\n{}\n  ],\n  \"snapshot\": {}\n}}\n",
        cores,
        m.reconciled,
        m.snapshots_identical,
        m.duplicates_clean,
        rows.join(",\n"),
        snapshot
    )
}

/// The smoke-scale snapshot CI diffs against the checked-in golden file.
pub fn smoke_snapshot() -> Measurements {
    measure_with(120, &[1, 2])
}

/// Runs the experiment.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_reconcile_and_are_worker_invariant() {
        let m = measure_with(60, &[1, 4, 8]);
        assert!(m.reconciled, "cross-layer totals must reconcile");
        assert!(
            m.snapshots_identical,
            "metrics + span snapshot must not depend on worker count"
        );
        assert!(m.duplicates_clean, "no metric may be registered twice");
        assert!(
            m.samples.iter().all(|s| s.crash_lost > 0),
            "the hour-6 crash must lose something or the fault plan is dead"
        );
        assert!(
            m.samples.iter().all(|s| s.oink_failures > 0),
            "the staging outage must make the mover retry"
        );
        assert_eq!(
            m.samples[0].critical_path, m.samples[2].critical_path,
            "critical-path report must be identical at 1 and 8 workers"
        );
        let json = to_json(&m);
        assert!(json.contains("\"experiment\": \"obs\""));
        assert!(json.contains("\"schema\": \"uli-obs-v1\""));
    }
}
