//! E11 — §6: Elephant Twin index-assisted selective scans.
//!
//! "Indexes are important for query performance … our approach … integrates
//! with Hadoop at the level of InputFormats … indexes reside alongside the
//! data … re-indexing large amounts of data is feasible."

use std::sync::Arc;

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::event::EventPattern;
use uli_core::session::{day_dir, Materializer};
use uli_dataflow::prelude::*;
use uli_index::{build_client_event_index, EventIndexPruner};

use crate::cells;
use crate::harness::{prepare_day, standard_config, timed, Table};

/// Runs the experiment.
pub fn run() -> String {
    let prepared = prepare_day(&standard_config(), 0);
    let wh = prepared.warehouse.clone();
    let dict = Materializer::new(wh.clone())
        .load_dictionary(0)
        .expect("dictionary persisted");
    let data_dir = day_dir("client_events", 0);

    let (index, build_ms) =
        timed(|| build_client_event_index(&wh, &data_dir).expect("data present"));
    let index = Arc::new(index);
    let (_rebuilt, rebuild_ms) =
        timed(|| build_client_event_index(&wh, &data_dir).expect("rebuild from scratch"));

    let mut out = format!(
        "E11 — Elephant Twin index pushdown (§6)\n\
         index over {} files built in {:.0} ms; drop-and-rebuild {:.0} ms\n\
         (rebuild never rewrites data files — the anti-Trojan-layout design).\n\n",
        index.len(),
        build_ms,
        rebuild_ms
    );

    let mut t = Table::new(&[
        "pattern",
        "selectivity",
        "path",
        "answer",
        "mappers",
        "blocks read",
        "blocks skipped",
        "wall ms",
    ]);
    // Patterns from broad to highly selective (funnel events are rare).
    for pattern in ["*:impression", "*:follow", "web:signup:*"] {
        let p = EventPattern::parse(pattern).expect("valid");
        let matching: Vec<String> = dict
            .iter()
            .filter(|(_, n, _)| p.matches(n))
            .map(|(_, n, _)| n.as_str().to_string())
            .collect();
        let predicate = matching.iter().fold(Expr::lit(false), |acc, name| {
            acc.or(Expr::col(1).eq(Expr::lit(name.as_str())))
        });
        let make_plan = |pruner: Option<Arc<EventIndexPruner>>| {
            let mut plan = Plan::load(
                data_dir.clone(),
                Arc::new(ClientEventLoader),
                CLIENT_EVENT_SCHEMA.to_vec(),
            );
            if let Some(pr) = pruner {
                plan = plan.with_pruner(pr);
            }
            plan.filter(predicate.clone()).aggregate(vec![Agg::count()])
        };
        let engine = Engine::new(wh.clone());
        let (full, full_ms) = timed(|| engine.run(&make_plan(None)).expect("runs"));
        let pruner = EventIndexPruner::new(Arc::clone(&index), p.clone());
        let (pruned, pruned_ms) = timed(|| engine.run(&make_plan(Some(pruner))).expect("runs"));
        assert_eq!(
            full.rows[0][0], pruned.rows[0][0],
            "answers agree: {pattern}"
        );

        let selectivity =
            full.rows[0][0].as_int().unwrap_or(0) as f64 / prepared.day.events.len() as f64;
        for (label, r, ms) in [
            ("full scan", &full, full_ms),
            ("indexed", &pruned, pruned_ms),
        ] {
            t.row(cells![
                pattern,
                format!("{:.2}%", selectivity * 100.0),
                label,
                r.rows[0][0],
                r.stats.map_tasks,
                r.stats.input_blocks,
                r.stats.blocks_skipped,
                format!("{ms:.1}")
            ]);
        }
        if pattern != "*:impression" {
            assert!(
                pruned.stats.blocks_skipped > 0,
                "selective patterns must skip blocks: {pattern}"
            );
            assert!(pruned.stats.map_tasks <= full.stats.map_tasks);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape check: the more selective the pattern, the more blocks the\n\
         index skips; broad patterns degrade gracefully to a full scan.\n",
    );
    out
}
