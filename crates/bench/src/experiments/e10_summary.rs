//! E10 — §5.1: BirdBrain summary statistics over multiple days.
//!
//! "The dashboard displays the number of user sessions daily and plotted as
//! a function of time … with the ability to drill down by client type …
//! and by (bucketed) session duration."

use uli_analytics::{load_sequences, DailySummary};
use uli_core::session::Materializer;
use uli_workload::WorkloadConfig;

use crate::cells;
use crate::harness::{prepare_days, Table};

/// Runs the experiment.
pub fn run() -> String {
    let config = WorkloadConfig {
        users: 350,
        ..Default::default()
    };
    let days = 3;
    let (wh, workloads) = prepare_days(&config, days);

    let mut out = String::from(
        "E10 — BirdBrain summary statistics (§5.1)\n\
         daily session counts with client and duration drill-downs, computed\n\
         entirely from the compact session sequences.\n\n",
    );
    let mut t = Table::new(&[
        "day", "sessions", "events", "users", "web", "iphone", "android", "<1m", "1-10m", "10-30m",
        ">30m",
    ]);
    for day in 0..days {
        let dict = Materializer::new(wh.clone())
            .load_dictionary(day)
            .expect("dictionary per day");
        let seqs = load_sequences(&wh, day).expect("materialized");
        let s = DailySummary::compute(day, &seqs, &dict);
        // Cross-check against generator truth.
        let truth = &workloads[day as usize].truth;
        assert_eq!(s.sessions, truth.sessions, "day {day} sessions");
        assert_eq!(s.events, truth.events, "day {day} events");
        for (client, n) in &truth.sessions_by_client {
            assert_eq!(s.by_client.get(client), Some(n), "day {day} {client}");
        }
        use uli_analytics::DurationBucket::*;
        t.row(cells![
            day,
            s.sessions,
            s.events,
            s.distinct_users,
            s.by_client.get("web").copied().unwrap_or(0),
            s.by_client.get("iphone").copied().unwrap_or(0),
            s.by_client.get("android").copied().unwrap_or(0),
            s.by_duration.get(&UnderOneMinute).copied().unwrap_or(0),
            s.by_duration.get(&OneToTenMinutes).copied().unwrap_or(0),
            s.by_duration.get(&TenToThirtyMinutes).copied().unwrap_or(0),
            s.by_duration.get(&OverThirtyMinutes).copied().unwrap_or(0)
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nall rows validated against generator ground truth (sessions,\n\
         events, per-client mix). Client drill-down is recovered purely from\n\
         the first code point of each sequence via the dictionary.\n",
    );
    out
}
