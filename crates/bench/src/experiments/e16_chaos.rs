//! E16 — §2: delivery invariants of the Scribe path under seeded chaos.
//!
//! Paper claim: "The entire pipeline is robust with respect to transient
//! failures" — aggregator crashes, coordination hiccups, and staging
//! outages must never silently lose or duplicate acked data. E16 sweeps
//! seeded fault schedules through the chaos harness and reconciles every
//! entry id exactly: delivered + buffered + crash-lost + dropped == logged,
//! with zero duplicates surviving the log-mover merge. A final negative run
//! injects a fault the accounting does *not* cover (silent deletion of a
//! staged file) and shows the checker tripping — evidence the green sweep
//! is meaningful.

use uli_scribe::{run_chaos, run_chaos_with, ChaosConfig, FaultConfig, Sabotage};

use crate::cells;
use crate::harness::Table;

/// Sweeps `seeds` chaos schedules; panics (failing `repro`) on any
/// invariant violation. Returns the rendered report.
pub fn run_with(seeds: u64) -> String {
    let cfg = ChaosConfig::default();
    let mut out = format!(
        "E16 — chaos sweep over the Scribe delivery path (§2)\n\
         {} DCs x {} hosts, {} aggregators/DC; {} chaotic steps/seed;\n\
         faults: crashes, session expiries, staging outages, disk-full\n\
         windows, link drop/ack-loss/duplicate/delay; {seeds} seeds.\n\n",
        cfg.topology.datacenters,
        cfg.topology.hosts_per_dc,
        cfg.topology.aggregators_per_dc,
        cfg.steps,
    );
    let mut table = Table::new(&[
        "seed",
        "logged",
        "delivered",
        "buffered",
        "crash-lost",
        "dropped",
        "dups-squashed",
        "retries",
    ]);
    let (mut logged, mut delivered, mut lost, mut dropped, mut dups) = (0u64, 0, 0, 0, 0);
    for seed in 0..seeds {
        let o = run_chaos(seed, &cfg);
        assert!(
            o.is_clean(),
            "seed {seed}: invariant violations: {:?}",
            o.accounting.violations
        );
        let a = &o.accounting;
        assert_eq!(
            a.logged,
            a.delivered + a.buffered + a.lost + a.dropped,
            "seed {seed}: id accounting must reconcile exactly"
        );
        table.row(cells![
            seed,
            a.logged,
            a.delivered,
            a.buffered,
            a.lost,
            a.dropped,
            o.report.duplicates_merged,
            o.report.retried
        ]);
        logged += a.logged;
        delivered += a.delivered;
        lost += a.lost;
        dropped += a.dropped;
        dups += o.report.duplicates_merged;
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ntotals: logged {logged}, delivered {delivered}, crash-lost {lost}, \
         dropped {dropped}; {dups} duplicate copies squashed by the merge.\n\
         invariant checked per seed: delivered + buffered + crash-lost +\n\
         dropped == logged over unique entry ids, zero duplicates visible,\n\
         every hour moved all-or-nothing.\n",
    ));

    // Negative control: a fault outside the accounted model must trip the
    // checker, or the sweep above proves nothing.
    let quiet = ChaosConfig {
        faults: FaultConfig::quiet(),
        ..ChaosConfig::default()
    };
    let sabotaged = run_chaos_with(1, &quiet, Sabotage::DeleteStagedFile);
    assert!(
        !sabotaged.is_clean(),
        "negative control failed: silent staged-file deletion went undetected"
    );
    out.push_str(&format!(
        "\nnegative control: silently deleted one staged file pre-move;\n\
         checker tripped with {} violation(s), e.g. \"{}\".\n",
        sabotaged.accounting.violations.len(),
        sabotaged
            .accounting
            .violations
            .first()
            .map(String::as_str)
            .unwrap_or("<none>")
    ));
    out
}

/// Runs the experiment at full scale.
pub fn run() -> String {
    run_with(32)
}
