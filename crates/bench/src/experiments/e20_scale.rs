//! E20 — million-user day: bounded-memory operators at scale.
//!
//! The paper's pipeline handles "hundreds of millions of users" per day;
//! the interesting systems property is not the absolute numbers but that
//! no stage needs the day in memory. This experiment drives the whole
//! pipeline at a configurable `--scale` — generate, land, materialize,
//! query — with every stage streaming:
//!
//! 1. **generate + land** — [`uli_workload::DayStream`] yields events one
//!    session at a time and [`uli_workload::land_day_stream`] writes them
//!    straight into hour partitions (records/sec is the ingest headline);
//! 2. **materialize** — the streaming sessionizer reconstructs sessions
//!    under a memory budget, spilling sort runs to scratch files, and must
//!    produce byte-identical part files to the batch materializer;
//! 3. **query** — each query runs twice, unbounded and under a budget;
//!    budgeted runs must spill, stay under the budget's high-water mark,
//!    and return byte-identical rows.
//!
//! The full run (`--scale 1m`: one million users, >10M events) persists
//! `BENCH_scale.json`; the smoke run writes machine-independent counters
//! CI diffs against a golden file.

use std::sync::Arc;

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENTS_CATEGORY, CLIENT_EVENT_SCHEMA};
use uli_core::session::{day_dir, sequences_dir, Materializer};
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;
use uli_workload::{land_day_stream, DayStream, Scale};

use crate::cells;
use crate::harness::{detected_cores, timed, Table};

/// Part files per hour partition for the streamed landing.
const FILES_PER_HOUR: usize = 4;

/// One (query, arm) cell.
pub struct QuerySample {
    /// Query label.
    pub query: &'static str,
    /// `"unbounded"` or `"budgeted"`.
    pub arm: &'static str,
    /// Wall-clock, milliseconds (full runs only in the JSON).
    pub query_ms: f64,
    /// Deterministic cost-model estimate, milliseconds.
    pub cost_model_ms: f64,
    /// Records scanned.
    pub input_records: u64,
    /// Decoded bytes.
    pub input_bytes_uncompressed: u64,
    /// Sort/aggregate runs spilled to scratch files.
    pub spill_runs: u64,
    /// Bytes written to spill runs.
    pub spill_bytes: u64,
    /// Peak tracked operator memory, bytes.
    pub mem_high_water_bytes: u64,
    /// Rows produced.
    pub output_rows: u64,
}

/// The full pipeline measurement.
pub struct Measurements {
    /// Scale label (`smoke`, `default`, `1m`).
    pub scale: &'static str,
    /// Users in the generated day.
    pub users: u64,
    /// Events generated (= records landed).
    pub events: u64,
    /// Sessions per the generator's ground truth.
    pub sessions: u64,
    /// Part files landed.
    pub landed_files: u64,
    /// Raw day size, uncompressed bytes.
    pub raw_uncompressed_bytes: u64,
    /// Raw day size, on-disk bytes.
    pub raw_compressed_bytes: u64,
    /// Generate + land wall-clock, milliseconds.
    pub land_ms: f64,
    /// Ingest throughput, records/second (wall-clock-derived).
    pub ingest_records_per_sec: f64,
    /// Memory budget for the streaming materializer, bytes.
    pub mat_budget: u64,
    /// Sessions materialized.
    pub mat_sessions: u64,
    /// Sort runs the materializer spilled.
    pub mat_spill_runs: u64,
    /// Bytes the materializer spilled.
    pub mat_spill_bytes: u64,
    /// Materializer peak tracked memory, bytes.
    pub mat_high_water_bytes: u64,
    /// Streaming materialize wall-clock, milliseconds.
    pub mat_ms: f64,
    /// Whether streaming part files matched the batch materializer
    /// byte-for-byte (`None` when the comparison was skipped — the batch
    /// path needs the whole day in memory, so full-scale runs skip it).
    pub mat_matches_batch: Option<bool>,
    /// Memory budget for the budgeted query arms, bytes.
    pub query_budget: u64,
    /// Query cells, query-major with the unbounded arm first.
    pub samples: Vec<QuerySample>,
    /// True when every budgeted arm returned rows byte-identical to its
    /// unbounded arm.
    pub queries_identical: bool,
    /// Scan throughput of the first unbounded query, MB/second
    /// (wall-clock-derived).
    pub scan_mb_per_sec: f64,
    /// Hardware threads on the measuring host; `None` for smoke runs so
    /// the CI golden stays machine-independent.
    pub cores: Option<usize>,
}

impl Measurements {
    /// Spill runs across every budgeted stage — the "bounded memory was
    /// actually exercised" gate.
    pub fn budgeted_spill_runs(&self) -> u64 {
        self.mat_spill_runs
            + self
                .samples
                .iter()
                .filter(|s| s.arm == "budgeted")
                .map(|s| s.spill_runs)
                .sum::<u64>()
    }

    /// True when every budgeted stage stayed within its budget.
    pub fn peaks_within_budget(&self) -> bool {
        self.mat_high_water_bytes <= self.mat_budget
            && self
                .samples
                .iter()
                .filter(|s| s.arm == "budgeted")
                .all(|s| s.mem_high_water_bytes <= self.query_budget)
    }
}

/// The query suite. All aggregates are algebraic, so the engine's
/// map-chain path accumulates per-block partial states instead of
/// materializing the day; grouping by user id makes the state itself
/// O(users), which is what forces the budgeted arm to spill.
fn queries() -> Vec<(&'static str, Plan)> {
    let load = || {
        Plan::load(
            day_dir(CLIENT_EVENTS_CATEGORY, 0),
            Arc::new(ClientEventLoader),
            CLIENT_EVENT_SCHEMA.to_vec(),
        )
    };
    vec![
        // One group per user: the O(users) reduce state.
        (
            "events-per-user",
            load().aggregate_by(vec![2], vec![Agg::count()]),
        ),
        // Sketch-backed DISTINCT and percentile: per-name audience and
        // p95 timestamp, in O(names × sketch) memory.
        (
            "sketch-by-name",
            load().aggregate_by(
                vec![1],
                vec![
                    Agg::approx_count_distinct(2),
                    Agg::approx_percentile(5, 0.95),
                ],
            ),
        ),
        // Top-K short-circuit: ORDER BY timestamp DESC LIMIT 20 keeps a
        // 20-row bound instead of sorting the day.
        (
            "top-20-latest",
            load()
                .order_by(vec![(5, SortOrder::Desc), (2, SortOrder::Asc)])
                .limit(20),
        ),
    ]
}

/// Sequence part files of day 0 as `(path, records)` — the byte-identity
/// witness for the materializer comparison.
fn sequence_artifacts(wh: &Warehouse) -> Vec<(String, Vec<Vec<u8>>)> {
    let dir = sequences_dir(0);
    let mut out = Vec::new();
    for file in wh.list_files_recursive(&dir).expect("sequences exist") {
        let records = wh
            .open(&file)
            .and_then(|r| r.read_all())
            .expect("sequence file reads");
        out.push((file.as_str().to_string(), records));
    }
    out
}

/// Runs the pipeline at `scale` with the given stage budgets.
/// `compare_batch` additionally runs the batch materializer (which holds
/// the whole day in memory) and checks byte-identity — smoke scale only.
pub fn measure_with(
    scale: Scale,
    mat_budget: u64,
    query_budget: u64,
    compare_batch: bool,
) -> Measurements {
    let config = scale.config();
    let wh = Warehouse::new();
    let ((landed, truth), land_ms) = timed(|| {
        let mut stream = DayStream::new(&config, 0);
        let landed =
            land_day_stream(&wh, stream.by_ref(), FILES_PER_HOUR).expect("fresh warehouse");
        (landed, stream.into_truth())
    });
    let raw_dir = day_dir(CLIENT_EVENTS_CATEGORY, 0);
    let landed_files = wh.list_files_recursive(&raw_dir).expect("day landed").len() as u64;
    let raw = wh.dir_meta(&raw_dir).expect("day landed");

    let materializer = Materializer::new(wh.clone());
    let dict = materializer.build_dictionary(0).expect("pass 1 runs");
    let (mat, mat_ms) = timed(|| {
        materializer
            .materialize_sequences_streaming(0, &dict, Some(mat_budget))
            .expect("streaming pass 2 runs")
    });
    let mat_matches_batch = compare_batch.then(|| {
        let streamed = sequence_artifacts(&wh);
        materializer
            .materialize_sequences(0, &dict)
            .expect("batch pass 2 runs");
        streamed == sequence_artifacts(&wh)
    });

    let mut samples = Vec::new();
    let mut queries_identical = true;
    let mut scan_mb_per_sec = 0.0;
    for (label, plan) in queries() {
        let mut unbounded_rows: Option<Vec<Tuple>> = None;
        for (arm, budget) in [("unbounded", None), ("budgeted", Some(query_budget))] {
            let mut engine = Engine::new(wh.clone());
            if let Some(b) = budget {
                engine = engine.with_mem_budget(b);
            }
            let (result, query_ms) = timed(|| engine.run(&plan).expect("query runs"));
            match &unbounded_rows {
                None => unbounded_rows = Some(result.rows.clone()),
                Some(reference) => queries_identical &= *reference == result.rows,
            }
            let s = &result.stats;
            if label == "events-per-user" && arm == "unbounded" {
                scan_mb_per_sec =
                    s.input_bytes_uncompressed as f64 / 1_000_000.0 / (query_ms / 1000.0).max(1e-9);
            }
            samples.push(QuerySample {
                query: label,
                arm,
                query_ms,
                cost_model_ms: result.estimated_cluster_ms,
                input_records: s.input_records,
                input_bytes_uncompressed: s.input_bytes_uncompressed,
                spill_runs: s.spill_runs,
                spill_bytes: s.spill_bytes,
                mem_high_water_bytes: s.mem_high_water_bytes,
                output_rows: result.rows.len() as u64,
            });
        }
    }

    Measurements {
        scale: scale.label(),
        users: config.users,
        events: truth.events,
        sessions: truth.sessions,
        landed_files,
        raw_uncompressed_bytes: raw.uncompressed_bytes,
        raw_compressed_bytes: raw.compressed_bytes,
        land_ms,
        ingest_records_per_sec: landed as f64 / (land_ms / 1000.0).max(1e-9),
        mat_budget,
        mat_sessions: mat.sessions,
        mat_spill_runs: mat.spill_runs,
        mat_spill_bytes: mat.spill_bytes,
        mat_high_water_bytes: mat.mem_high_water_bytes,
        mat_ms,
        mat_matches_batch,
        query_budget,
        samples,
        queries_identical,
        scan_mb_per_sec,
        cores: None,
    }
}

/// Per-scale defaults for the two stage budgets, each sized well below
/// the scale's working set so the budgeted arms genuinely spill.
fn default_budgets(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Smoke => (2048, 32 * 1024),
        Scale::Default => (4096, 64 * 1024),
        Scale::OneM => (16 << 20, 64 << 20),
    }
}

/// A full (wall-clock) run at `scale`, with an optional `--mem-budget`
/// override for the query arms. The batch byte-identity comparison only
/// runs below `1m` — the batch materializer holds the whole day in
/// memory, which is exactly what this experiment exists to avoid.
pub fn measure_at(scale: Scale, query_budget_override: Option<u64>) -> Measurements {
    let (mat_budget, query_budget) = default_budgets(scale);
    let mut m = measure_with(
        scale,
        mat_budget,
        query_budget_override.unwrap_or(query_budget),
        !matches!(scale, Scale::OneM),
    );
    m.cores = Some(detected_cores());
    m
}

/// The full run: a million users, >10M events, budgets far below the
/// day's working set (16 MB materialize, 64 MB queries).
pub fn measure() -> Measurements {
    measure_at(Scale::OneM, None)
}

/// The smoke run CI diffs against the checked-in golden: tiny budgets
/// sized so every budgeted stage actually spills (the sketch states are
/// ~6 KB per group, so the query budget must sit above one entry but far
/// below the group count × entry size).
pub fn smoke_snapshot() -> Measurements {
    measure_with(Scale::Smoke, 2048, 32 * 1024, true)
}

/// Renders the pipeline as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = format!(
        "E20 — million-user day at --scale {}: {} users, {} events, \
         {} sessions; no stage holds the day in memory\n\n",
        m.scale, m.users, m.events, m.sessions
    );
    out.push_str(&format!(
        "generate+land (streaming): {} files, {} raw bytes ({} on disk), \
         {:.0} ms, {:.0} records/sec\n",
        m.landed_files,
        m.raw_uncompressed_bytes,
        m.raw_compressed_bytes,
        m.land_ms,
        m.ingest_records_per_sec
    ));
    out.push_str(&format!(
        "materialize (streaming, {} B budget): {} sessions, {} spill runs \
         ({} B), peak {} B, {:.0} ms{}\n\n",
        m.mat_budget,
        m.mat_sessions,
        m.mat_spill_runs,
        m.mat_spill_bytes,
        m.mat_high_water_bytes,
        m.mat_ms,
        match m.mat_matches_batch {
            Some(true) => ", byte-identical to batch",
            Some(false) => ", DIVERGED FROM BATCH",
            None => " (batch comparison skipped at this scale)",
        }
    ));
    let mut t = Table::new(&[
        "query",
        "arm",
        "query ms",
        "cost-model ms",
        "records",
        "decoded bytes",
        "spill runs",
        "spill bytes",
        "peak bytes",
        "rows",
    ]);
    for s in &m.samples {
        t.row(cells![
            s.query,
            s.arm,
            format!("{:.1}", s.query_ms),
            format!("{:.1}", s.cost_model_ms),
            s.input_records,
            s.input_bytes_uncompressed,
            s.spill_runs,
            s.spill_bytes,
            s.mem_high_water_bytes,
            s.output_rows
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nbudgeted arms byte-identical to unbounded: {}\n\
         budgeted spill runs across stages: {}\n\
         every stage within its budget: {}\n\
         scan throughput (events-per-user, unbounded): {:.1} MB/s\n",
        m.queries_identical,
        m.budgeted_spill_runs(),
        m.peaks_within_budget(),
        m.scan_mb_per_sec
    ));
    if let Some(cores) = m.cores {
        out.push_str(&format!(
            "{cores} hardware thread(s) visible; throughput numbers are \
             wall-clock on this host.\n"
        ));
    }
    out
}

/// Serializes one query cell; smoke runs drop wall-clock so the CI golden
/// is stable across hosts.
fn sample_json(s: &QuerySample, include_timing: bool) -> String {
    let timing = if include_timing {
        format!("\"query_ms\": {:.3}, ", s.query_ms)
    } else {
        String::new()
    };
    format!(
        "    {{\"query\": \"{}\", \"arm\": \"{}\", {}\"cost_model_ms\": {:.3}, \
         \"input_records\": {}, \"input_bytes_uncompressed\": {}, \
         \"spill_runs\": {}, \"spill_bytes\": {}, \"mem_high_water_bytes\": {}, \
         \"output_rows\": {}}}",
        s.query,
        s.arm,
        timing,
        s.cost_model_ms,
        s.input_records,
        s.input_bytes_uncompressed,
        s.spill_runs,
        s.spill_bytes,
        s.mem_high_water_bytes,
        s.output_rows
    )
}

/// Serializes the run as the `BENCH_scale.json` payload (full runs) or
/// the machine-independent smoke metrics (when `cores` is unset).
pub fn to_json(m: &Measurements) -> String {
    let full = m.cores.is_some();
    let rows: Vec<String> = m.samples.iter().map(|s| sample_json(s, full)).collect();
    let mut head = String::new();
    if let Some(c) = m.cores {
        head.push_str(&format!("  \"cores\": {c},\n"));
    }
    if full {
        head.push_str(&format!(
            "  \"land_ms\": {:.1},\n  \"ingest_records_per_sec\": {:.1},\n  \
             \"mat_ms\": {:.1},\n  \"scan_mb_per_sec\": {:.2},\n",
            m.land_ms, m.ingest_records_per_sec, m.mat_ms, m.scan_mb_per_sec
        ));
    }
    let mat_matches = m.mat_matches_batch.map_or(String::new(), |ok| {
        format!("  \"mat_matches_batch\": {ok},\n")
    });
    format!(
        "{{\n  \"experiment\": \"scale\",\n  \"schema\": \"uli-scale-v1\",\n\
         {head}  \"scale\": \"{}\",\n  \"users\": {},\n  \"events\": {},\n  \
         \"sessions\": {},\n  \"landed_files\": {},\n  \
         \"raw_uncompressed_bytes\": {},\n  \"raw_compressed_bytes\": {},\n  \
         \"mat_budget\": {},\n  \"mat_sessions\": {},\n  \"mat_spill_runs\": {},\n  \
         \"mat_spill_bytes\": {},\n  \"mat_high_water_bytes\": {},\n{mat_matches}  \
         \"query_budget\": {},\n  \"queries_identical\": {},\n  \
         \"budgeted_spill_runs\": {},\n  \"peaks_within_budget\": {},\n  \
         \"samples\": [\n{}\n  ]\n}}\n",
        m.scale,
        m.users,
        m.events,
        m.sessions,
        m.landed_files,
        m.raw_uncompressed_bytes,
        m.raw_compressed_bytes,
        m.mat_budget,
        m.mat_sessions,
        m.mat_spill_runs,
        m.mat_spill_bytes,
        m.mat_high_water_bytes,
        m.query_budget,
        m.queries_identical,
        m.budgeted_spill_runs(),
        m.peaks_within_budget(),
        rows.join(",\n")
    )
}

/// Runs the experiment at full scale.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pipeline_spills_stays_bounded_and_matches() {
        let m = smoke_snapshot();
        assert_eq!(m.scale, "smoke");
        assert_eq!(m.users, 120);
        // The pinned generator goldens fix the smoke day exactly.
        assert_eq!(m.events, 2657);
        assert_eq!(m.sessions, 223);
        assert!(m.queries_identical, "budgeted rows diverged");
        assert_eq!(m.mat_matches_batch, Some(true));
        assert!(m.mat_spill_runs > 0, "materializer never spilled");
        assert!(
            m.samples
                .iter()
                .any(|s| s.arm == "budgeted" && s.spill_runs > 0),
            "no budgeted query spilled"
        );
        assert!(m.peaks_within_budget());
        // Unbounded arms must not track (or spill) anything.
        for s in m.samples.iter().filter(|s| s.arm == "unbounded") {
            assert_eq!(s.spill_runs, 0, "{}: unbounded arm spilled", s.query);
            assert_eq!(s.mem_high_water_bytes, 0);
        }
        let top = m
            .samples
            .iter()
            .find(|s| s.query == "top-20-latest")
            .expect("query measured");
        assert_eq!(top.output_rows, 20);
        let json = to_json(&m);
        assert!(json.contains("\"queries_identical\": true"));
        assert!(json.contains("\"mat_matches_batch\": true"));
        assert!(json.contains("\"peaks_within_budget\": true"));
        assert!(
            !json.contains("query_ms"),
            "smoke json must omit wall-clock"
        );
        assert!(!json.contains("cores"), "smoke json must omit host cores");
        assert!(
            !json.contains("mb_per_sec"),
            "smoke json must omit throughput"
        );
    }

    #[test]
    fn full_json_records_cores_and_throughput() {
        let mut m = measure_with(Scale::Smoke, 2048, 32 * 1024, false);
        assert!(m.mat_matches_batch.is_none());
        m.cores = Some(2);
        let json = to_json(&m);
        assert!(json.contains("\"cores\": 2"));
        assert!(json.contains("ingest_records_per_sec"));
        assert!(json.contains("scan_mb_per_sec"));
        assert!(!json.contains("mat_matches_batch"));
    }
}
