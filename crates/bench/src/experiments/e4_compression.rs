//! E4 — §4.2: session-sequence materialization and the "about fifty times
//! smaller" claim, plus the variable-length-coding ablation.

use uli_core::session::dictionary::char_for_rank;
use uli_core::session::{EventDictionary, Materializer, SessionSequence, Sessionizer};
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, WorkloadConfig};

use crate::cells;
use crate::harness::Table;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from(
        "E4 — session-sequence compression (§4.2)\n\
         paper: sequences are 'about fifty times smaller than the original\n\
         client event logs'. Ratio grows with session length because the\n\
         fixed per-session fields amortize.\n\n",
    );
    let mut t = Table::new(&[
        "mean session len",
        "events",
        "sessions",
        "raw KB (disk)",
        "seq KB (disk)",
        "factor",
    ]);
    let mut factors = Vec::new();
    for mean_len in [4.0, 12.0, 40.0] {
        let config = WorkloadConfig {
            users: 300,
            mean_session_len: mean_len,
            ..Default::default()
        };
        let day = generate_day(&config, 0);
        let wh = Warehouse::new();
        write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
        let report = Materializer::new(wh).run_day(0).expect("day present");
        factors.push(report.compression_factor());
        t.row(cells![
            format!("{mean_len:.0}"),
            report.events,
            report.sessions,
            report.raw_compressed_bytes / 1024,
            report.sequences_compressed_bytes / 1024,
            format!("{:.1}x", report.compression_factor())
        ]);
    }
    out.push_str(&t.render());
    assert!(
        factors.windows(2).all(|w| w[1] > w[0]),
        "factor grows with session length"
    );
    assert!(
        factors[1] > 10.0,
        "double-digit compression at realistic session lengths"
    );

    // Dictionary code-point footprint: frequency-ranked coding puts the
    // traffic mass in 1-byte code points.
    let config = WorkloadConfig {
        users: 300,
        ..Default::default()
    };
    let day = generate_day(&config, 0);
    let mut counts = std::collections::BTreeMap::new();
    for ev in &day.events {
        *counts.entry(ev.name.clone()).or_insert(0u64) += 1;
    }
    let dict = EventDictionary::from_counts(counts.into_iter().collect());
    let mut by_width = [0u64; 4];
    let mut total = 0u64;
    for (rank, _, count) in dict.iter() {
        let width = char_for_rank(rank)
            .expect("alphabet fits unicode")
            .len_utf8();
        by_width[width - 1] += count;
        total += count;
    }
    out.push_str("\nUTF-8 footprint of the frequency-ranked dictionary:\n");
    let mut wt = Table::new(&["code width", "share of event traffic"]);
    for (w, c) in by_width.iter().enumerate() {
        if *c > 0 {
            wt.row(cells![
                format!("{} byte(s)", w + 1),
                format!("{:.1}%", 100.0 * *c as f64 / total as f64)
            ]);
        }
    }
    out.push_str(&wt.render());
    assert!(
        by_width[0] as f64 / total as f64 > 0.5,
        "most traffic encodes in one byte"
    );

    // Ablation: frequency-ranked vs arbitrary (alphabetical) assignment.
    let sessions = Sessionizer::new().sessionize(day.events.clone());
    let ranked_bytes: usize = sessions
        .iter()
        .filter_map(|s| SessionSequence::encode(s, &dict))
        .map(|s| s.sequence.len())
        .sum();
    let mut alpha: Vec<_> = dict.iter().map(|(_, n, _)| (n.clone(), 1u64)).collect();
    alpha.sort_by(|a, b| a.0.cmp(&b.0));
    // Equal counts → ties broken alphabetically → arbitrary order.
    let alpha_dict = EventDictionary::from_counts(alpha);
    let alpha_bytes: usize = sessions
        .iter()
        .filter_map(|s| SessionSequence::encode(s, &alpha_dict))
        .map(|s| s.sequence.len())
        .sum();
    out.push_str(&format!(
        "\nablation — encoded sequence bytes (no container overhead):\n\
         frequency-ranked {ranked_bytes} B vs arbitrary order {alpha_bytes} B \
         ({:.1}% smaller)\n",
        100.0 * (1.0 - ranked_bytes as f64 / alpha_bytes as f64)
    ));
    assert!(ranked_bytes <= alpha_bytes, "ranking can only help");
    out
}
