//! E7 — §5.4: n-gram language models over session sequences.
//!
//! "Intuitively, how the user behaves right now is strongly influenced by
//! immediately preceding actions; less so by an action 5 steps ago …
//! Language modeling techniques allow us to more precisely quantify this."
//! The expected shape: cross entropy drops sharply from unigram to bigram
//! (the planted impression→click structure) and then flattens.
//!
//! Methodology notes, both learned the hard way and both instructive:
//! dictionaries are rebuilt daily, so symbols of different days live in
//! different rank spaces — the held-out day must be re-encoded under the
//! training day's dictionary; and pure add-λ models degrade with order on
//! sparse session corpora, so Jelinek–Mercer interpolation is used (with
//! the naive model shown alongside for contrast).

use uli_analytics::{load_sequences, InterpolatedModel, NgramModel};
use uli_core::session::dictionary::rank_for_char;
use uli_core::session::Materializer;
use uli_workload::WorkloadConfig;

use crate::cells;
use crate::harness::{prepare_days, Table};

/// Runs the experiment.
pub fn run() -> String {
    let config = WorkloadConfig {
        users: 800,
        ..Default::default()
    };
    let (wh, _days) = prepare_days(&config, 2);
    let m = Materializer::new(wh.clone());
    let dict0 = m.load_dictionary(0).expect("day 0 dictionary");
    let dict1 = m.load_dictionary(1).expect("day 1 dictionary");

    // Train on day 0 in its own rank space.
    let train: Vec<Vec<u32>> = load_sequences(&wh, 0)
        .expect("day 0")
        .iter()
        .map(|s| s.sequence.chars().filter_map(rank_for_char).collect())
        .collect();
    // Re-encode day 1 under day 0's dictionary via event names; events
    // unseen on day 0 are dropped (they have no day-0 symbol).
    let test: Vec<Vec<u32>> = load_sequences(&wh, 1)
        .expect("day 1")
        .iter()
        .map(|s| {
            dict1
                .decode_sequence(&s.sequence)
                .expect("day-1 dictionary covers day 1")
                .into_iter()
                .filter_map(|name| dict0.rank_of(name))
                .collect()
        })
        .collect();

    let mut out = format!(
        "E7 — temporal signal via n-gram models (§5.4)\n\
         train: day 0 ({} sessions); test: day 1 ({} sessions), re-encoded\n\
         under day 0's dictionary. Interpolated (Jelinek-Mercer) smoothing,\n\
         w=0.5, lambda=0.05; naive add-lambda shown for contrast.\n\n",
        train.len(),
        test.len()
    );
    let mut t = Table::new(&[
        "n",
        "interpolated H (bits)",
        "perplexity",
        "delta vs n-1",
        "naive add-lambda H",
    ]);
    let mut entropies = Vec::new();
    for n in 1..=5usize {
        let model = InterpolatedModel::train(n, 0.05, 0.5, &train);
        let h = model.cross_entropy(&test);
        let naive = NgramModel::train(n, 0.05, train.iter().map(Vec::as_slice))
            .cross_entropy(test.iter().map(Vec::as_slice));
        let delta = entropies
            .last()
            .map(|prev: &f64| format!("{:+.3}", h - prev))
            .unwrap_or_else(|| "-".to_string());
        t.row(cells![
            n,
            format!("{h:.3}"),
            format!("{:.1}", 2f64.powf(h)),
            delta,
            format!("{naive:.3}")
        ]);
        entropies.push(h);
    }
    out.push_str(&t.render());

    // The paper's qualitative claim, checked quantitatively.
    let unigram_to_bigram = entropies[0] - entropies[1];
    let bigram_to_trigram = entropies[1] - entropies[2];
    assert!(
        unigram_to_bigram > 0.2,
        "bigram context must capture real signal: {unigram_to_bigram:.3}"
    );
    assert!(
        bigram_to_trigram < unigram_to_bigram,
        "gains diminish with context: {bigram_to_trigram:.3} vs {unigram_to_bigram:.3}"
    );
    out.push_str(&format!(
        "\nunigram→bigram gain {unigram_to_bigram:.3} bits; \
         bigram→trigram change {bigram_to_trigram:+.3} bits —\n\
         behaviour is 'strongly influenced by immediately preceding actions;\n\
         less so' by older context (checked: gains diminish after n=2,\n\
         matching the first-order Markov process that generated the data).\n"
    ));
    out
}
