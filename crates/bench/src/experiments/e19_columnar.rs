//! E19 — columnar-by-default: row vs columnar landing on a selective query.
//!
//! The paper (§4.2) weighs RCFile-style columnar storage and rejects it
//! only because it "would not reduce the number of mappers" — a Hadoop
//! scheduling constraint this reproduction does not have. E13 measured the
//! layout's per-task byte reduction in isolation; this experiment measures
//! the promoted, end-to-end path: the same selective query (timestamp
//! window AND one event name, project 3 of 7 columns) over four landings —
//!
//! 1. **row-eager** — row blocks, every field of every record decoded;
//! 2. **row-pushdown** — row blocks with projection + predicate + zone-map
//!    pushdown (the E15 full-pushdown baseline);
//! 3. **columnar** — column chunks per row group, vectorized batch scan,
//!    no dictionary;
//! 4. **columnar+dict** — the default landing: the event-name column is
//!    dictionary-coded, so the name predicate compares integer codes.
//!
//! Rows must be byte-identical across every arm and worker count. The
//! headline number is *decoded bytes* (`input_bytes_uncompressed`): the
//! row path charges every decompressed block in full, the columnar path
//! charges only the column chunks it actually decodes. Timings are
//! reported both as wall-clock and in deterministic cost-model units
//! (`CostModel::estimate_ms`), so the comparison survives 1-core CI hosts.

use std::collections::BTreeMap;
use std::sync::Arc;

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::session::day_dir;
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;
use uli_workload::{
    generate_day, write_client_events, write_client_events_layout, Layout, WorkloadConfig,
};

use crate::cells;
use crate::harness::{detected_cores, timed, Table};

/// Width of the client-event load schema.
const WIDTH: u64 = CLIENT_EVENT_SCHEMA.len() as u64;

/// One landing arm of the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Row blocks, pushdown disabled.
    RowEager,
    /// Row blocks, projection + predicate + zone maps (E15's best config).
    RowPushdown,
    /// Columnar row groups without a dictionary column.
    Columnar,
    /// Columnar row groups with the dictionary-coded name column.
    ColumnarDict,
}

/// The four arms in sweep order.
pub const ARMS: [(&str, Arm); 4] = [
    ("row-eager", Arm::RowEager),
    ("row-pushdown", Arm::RowPushdown),
    ("columnar", Arm::Columnar),
    ("columnar+dict", Arm::ColumnarDict),
];

/// The arm label a CLI `--layout` choice lands by default.
pub fn default_arm_label(layout: Layout) -> &'static str {
    match layout {
        Layout::Row => "row-pushdown",
        Layout::Columnar => "columnar+dict",
        Layout::ColumnarPlain => "columnar",
    }
}

/// One (arm, workers) cell of the sweep.
pub struct ArmSample {
    /// Arm label from [`ARMS`].
    pub config: &'static str,
    /// Scan/execute worker count.
    pub workers: usize,
    /// Query wall-clock, milliseconds (machine-dependent; full runs only).
    pub query_ms: f64,
    /// Deterministic cost-model estimate for the same job, milliseconds.
    pub cost_model_ms: f64,
    /// Row blocks / column row groups decompressed and scanned.
    pub input_blocks: u64,
    /// Blocks / row groups pruned before decompression.
    pub blocks_skipped: u64,
    /// Records scanned.
    pub input_records: u64,
    /// Records dropped by the pushed (or vectorized) predicate.
    pub records_skipped_by_predicate: u64,
    /// Fields never materialized (projection pushdown / unread columns).
    pub fields_skipped: u64,
    /// Decoded bytes: full blocks on the row path, only the decoded column
    /// chunks on the columnar path.
    pub input_bytes_uncompressed: u64,
    /// Fields actually decoded: `input_records × width − fields_skipped`.
    pub decoded_fields: u64,
    /// Rows the query produced (must agree across every cell).
    pub output_rows: u64,
}

/// The full ablation.
pub struct Measurements {
    /// Samples in arm-major, worker-minor order.
    pub samples: Vec<ArmSample>,
    /// True when every arm × worker cell produced identical rows.
    pub outputs_identical: bool,
    /// Decoded bytes, row-pushdown ÷ columnar+dict (single-worker cells).
    pub decoded_bytes_ratio: f64,
    /// Decoded fields, row-eager ÷ columnar+dict (single-worker cells).
    pub decode_work_ratio: f64,
    /// Users in the generated day.
    pub users: u64,
    /// The event name the query selects.
    pub event_name: String,
    /// The arm the CLI's `--layout` choice would land by default.
    pub default_layout: &'static str,
    /// Hardware threads on the measuring host; `None` for smoke runs so
    /// the CI golden stays machine-independent.
    pub cores: Option<usize>,
}

/// The selective query: a timestamp window AND one event name, projecting
/// (user_id, name) before a per-user count — the same shape as E15, so the
/// row-pushdown arm here is directly comparable to E15's best config.
fn selective_plan(name: &str, t0: i64, t1: i64) -> Plan {
    Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .filter(
        Expr::col(5)
            .ge(Expr::lit(t0))
            .and(Expr::col(5).le(Expr::lit(t1))),
    )
    .filter(Expr::col(1).eq(Expr::lit(name)))
    .foreach(vec![("user_id", Expr::col(2)), ("name", Expr::col(1))])
    .aggregate_by(vec![0], vec![Agg::count()])
}

/// Lands the day under one arm's layout into a fresh warehouse.
fn land(arm: Arm, events: &[uli_core::ClientEvent]) -> Warehouse {
    let wh = Warehouse::new();
    match arm {
        Arm::RowEager | Arm::RowPushdown => {
            write_client_events(&wh, events, 4).expect("fresh warehouse");
        }
        Arm::Columnar => {
            write_client_events_layout(&wh, events, 4, Layout::ColumnarPlain)
                .expect("fresh warehouse");
        }
        Arm::ColumnarDict => {
            write_client_events_layout(&wh, events, 4, Layout::Columnar).expect("fresh warehouse");
        }
    }
    wh
}

/// Runs the sweep over `users` with the given worker counts.
pub fn measure_with(users: u64, worker_counts: &[usize], default_layout: Layout) -> Measurements {
    let config = WorkloadConfig {
        users,
        ..Default::default()
    };
    let day = generate_day(&config, 0);

    // Pick the most frequent event name (deterministic tie-break by name)
    // and the middle half of the day's timestamp range, so the query is
    // selective but never empty — the same recipe as E15.
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut t_min = i64::MAX;
    let mut t_max = i64::MIN;
    for ev in &day.events {
        *counts.entry(ev.name.as_str()).or_default() += 1;
        t_min = t_min.min(ev.timestamp.millis());
        t_max = t_max.max(ev.timestamp.millis());
    }
    let event_name = counts
        .iter()
        .max_by_key(|(name, n)| (**n, **name))
        .map(|(name, _)| name.to_string())
        .expect("generated day is non-empty");
    let span = t_max - t_min;
    let (t0, t1) = (t_min + span / 4, t_min + 3 * span / 4);
    let plan = selective_plan(&event_name, t0, t1);

    let full = Pushdown {
        projection: true,
        predicate: true,
        zone_maps: true,
    };
    let mut samples = Vec::new();
    let mut reference: Option<Vec<Tuple>> = None;
    let mut outputs_identical = true;
    for (label, arm) in ARMS {
        for &workers in worker_counts {
            let wh = land(arm, &day.events);
            let pushdown = match arm {
                Arm::RowEager => Pushdown::disabled(),
                _ => full,
            };
            let engine = Engine::new(wh)
                .with_parallelism(Parallelism::fixed(workers))
                .with_pushdown(pushdown);
            let (result, query_ms) = timed(|| engine.run(&plan).expect("runs"));
            match &reference {
                None => reference = Some(result.rows.clone()),
                Some(rows0) => outputs_identical &= *rows0 == result.rows,
            }
            let s = &result.stats;
            samples.push(ArmSample {
                config: label,
                workers,
                query_ms,
                cost_model_ms: result.estimated_cluster_ms,
                input_blocks: s.input_blocks,
                blocks_skipped: s.blocks_skipped,
                input_records: s.input_records,
                records_skipped_by_predicate: s.records_skipped_by_predicate,
                fields_skipped: s.fields_skipped,
                input_bytes_uncompressed: s.input_bytes_uncompressed,
                decoded_fields: s.input_records * WIDTH - s.fields_skipped,
                output_rows: result.rows.len() as u64,
            });
        }
    }
    // Ratios compare single-worker cells; the byte counters are
    // worker-invariant anyway (the chunk cache charges decoded bytes on
    // hits and misses alike), but this keeps the definition obvious.
    let cell = |label: &str| {
        samples
            .iter()
            .find(|s| s.config == label && s.workers == worker_counts[0])
            .expect("arm measured")
    };
    let row_eager = cell("row-eager");
    let row_pushdown = cell("row-pushdown");
    let columnar_dict = cell("columnar+dict");
    Measurements {
        decoded_bytes_ratio: row_pushdown.input_bytes_uncompressed as f64
            / columnar_dict.input_bytes_uncompressed.max(1) as f64,
        decode_work_ratio: row_eager.decoded_fields as f64
            / columnar_dict.decoded_fields.max(1) as f64,
        samples,
        outputs_identical,
        users,
        event_name,
        default_layout: default_arm_label(default_layout),
        cores: None,
    }
}

/// Runs the standard sweep: 600 users, workers {1, 4}, with the host's
/// core count recorded for the persisted JSON.
pub fn measure_at(default_layout: Layout) -> Measurements {
    let mut m = measure_with(600, &[1, 4], default_layout);
    m.cores = Some(detected_cores());
    m
}

/// The standard sweep under the default (columnar) landing layout.
pub fn measure() -> Measurements {
    measure_at(Layout::default())
}

/// The smoke-scale sweep CI diffs against the checked-in golden file —
/// counters only, no wall-clock, no host core count.
pub fn smoke_snapshot(default_layout: Layout) -> Measurements {
    measure_with(120, &[1, 4], default_layout)
}

/// Renders the sweep as the experiment table.
pub fn render(m: &Measurements) -> String {
    let mut out = format!(
        "E19 — columnar-by-default: timestamp window AND name = {:?}, \
         project 3 of {WIDTH} columns ({} users, default layout lands {:?})\n\n",
        m.event_name, m.users, m.default_layout
    );
    let mut t = Table::new(&[
        "arm",
        "workers",
        "query ms",
        "cost-model ms",
        "blocks read",
        "blocks skipped",
        "records",
        "pred-skipped",
        "decoded bytes",
        "decoded fields",
    ]);
    for s in &m.samples {
        t.row(cells![
            s.config,
            s.workers,
            format!("{:.1}", s.query_ms),
            format!("{:.1}", s.cost_model_ms),
            s.input_blocks,
            s.blocks_skipped,
            s.input_records,
            s.records_skipped_by_predicate,
            s.input_bytes_uncompressed,
            s.decoded_fields
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ndecoded bytes: row-pushdown / columnar+dict = {:.2}x\n\
         decoded fields: row-eager / columnar+dict = {:.2}x\n\
         outputs identical across all arms and worker counts: {}\n",
        m.decoded_bytes_ratio, m.decode_work_ratio, m.outputs_identical
    ));
    if let Some(cores) = m.cores {
        out.push_str(&format!(
            "{cores} hardware thread(s) visible; on a 1-core host compare the \
             cost-model column, not wall-clock.\n"
        ));
    }
    out
}

/// Serializes one sample row; smoke runs drop the machine-dependent
/// wall-clock so the CI golden is stable across hosts.
fn sample_json(s: &ArmSample, include_timing: bool) -> String {
    let timing = if include_timing {
        format!("\"query_ms\": {:.3}, ", s.query_ms)
    } else {
        String::new()
    };
    format!(
        "    {{\"arm\": \"{}\", \"workers\": {}, {}\"cost_model_ms\": {:.3}, \
         \"input_blocks\": {}, \"blocks_skipped\": {}, \"input_records\": {}, \
         \"records_skipped_by_predicate\": {}, \"fields_skipped\": {}, \
         \"input_bytes_uncompressed\": {}, \"decoded_fields\": {}, \"output_rows\": {}}}",
        s.config,
        s.workers,
        timing,
        s.cost_model_ms,
        s.input_blocks,
        s.blocks_skipped,
        s.input_records,
        s.records_skipped_by_predicate,
        s.fields_skipped,
        s.input_bytes_uncompressed,
        s.decoded_fields,
        s.output_rows
    )
}

/// Serializes the sweep as the `BENCH_columnar.json` payload (full runs)
/// or the machine-independent smoke metrics (when `cores` is unset).
pub fn to_json(m: &Measurements) -> String {
    let rows: Vec<String> = m
        .samples
        .iter()
        .map(|s| sample_json(s, m.cores.is_some()))
        .collect();
    let cores = m
        .cores
        .map_or(String::new(), |c| format!("  \"cores\": {c},\n"));
    format!(
        "{{\n  \"experiment\": \"columnar\",\n  \"schema\": \"uli-columnar-v1\",\n\
         {}  \"users\": {},\n  \"event_name\": \"{}\",\n  \"default_layout\": \"{}\",\n  \
         \"outputs_identical\": {},\n  \"decoded_bytes_ratio\": {:.4},\n  \
         \"decode_work_ratio\": {:.4},\n  \"samples\": [\n{}\n  ]\n}}\n",
        cores,
        m.users,
        m.event_name,
        m.default_layout,
        m.outputs_identical,
        m.decoded_bytes_ratio,
        m.decode_work_ratio,
        rows.join(",\n")
    )
}

/// Runs the experiment.
pub fn run() -> String {
    render(&measure())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columnar_dict_cuts_decoded_bytes_4x_with_identical_rows() {
        let m = measure_with(200, &[1, 4], Layout::default());
        assert!(m.outputs_identical, "columnar arms changed query results");
        assert_eq!(m.samples.len(), ARMS.len() * 2);
        assert_eq!(m.default_layout, "columnar+dict");
        let cell = |label: &str, workers: usize| {
            m.samples
                .iter()
                .find(|s| s.config == label && s.workers == workers)
                .expect("cell measured")
        };
        let eager = cell("row-eager", 1);
        assert_eq!(eager.fields_skipped, 0);
        assert_eq!(eager.blocks_skipped, 0);
        let pushdown = cell("row-pushdown", 1);
        assert!(
            pushdown.blocks_skipped > 0,
            "zone maps pruned no row blocks"
        );
        let dict = cell("columnar+dict", 1);
        assert!(dict.blocks_skipped > 0, "zone maps pruned no row groups");
        assert!(dict.fields_skipped > 0, "projection read every column");
        assert!(
            dict.records_skipped_by_predicate > 0,
            "vectorized predicate dropped nothing"
        );
        assert!(
            m.decoded_bytes_ratio >= 4.0,
            "decoded bytes must drop ≥4x vs row-pushdown, got {:.2}x",
            m.decoded_bytes_ratio
        );
        // The dictionary column is smaller than the plain string column.
        let plain = cell("columnar", 1);
        assert!(
            dict.input_bytes_uncompressed < plain.input_bytes_uncompressed,
            "dictionary coding must shrink decoded bytes ({} vs {})",
            dict.input_bytes_uncompressed,
            plain.input_bytes_uncompressed
        );
        // Byte counters are worker-invariant (cache hits charge decoded
        // bytes too), so the persisted ratios do not depend on the host.
        for (label, _) in ARMS {
            assert_eq!(
                cell(label, 1).input_bytes_uncompressed,
                cell(label, 4).input_bytes_uncompressed,
                "{label}: decoded bytes varied with worker count"
            );
        }
        let json = to_json(&m);
        assert!(json.contains("\"experiment\": \"columnar\""));
        assert!(json.contains("\"arm\": \"columnar+dict\""));
        assert!(
            !json.contains("query_ms"),
            "smoke json must omit wall-clock"
        );
        assert!(!json.contains("cores"), "smoke json must omit host cores");
    }

    #[test]
    fn full_json_records_cores_and_timing() {
        let mut m = measure_with(60, &[1], Layout::Row);
        assert_eq!(m.default_layout, "row-pushdown");
        m.cores = Some(3);
        let json = to_json(&m);
        assert!(json.contains("\"cores\": 3"));
        assert!(json.contains("query_ms"));
    }
}
