//! The experiment harness: regenerates every table/figure-level claim of
//! the paper (see DESIGN.md's experiment index E1–E12).
//!
//! Each experiment lives in [`experiments`] as a `run() -> String` that
//! prints a self-contained table; the `repro` binary dispatches on ids.
//! Criterion benches under `benches/` cover the timing-sensitive pieces.

pub mod experiments;
pub mod harness;

/// Runs one experiment by id (`"e1"`…`"e23"`), returning its report.
pub fn run_experiment(id: &str) -> Option<String> {
    let out = match id {
        "e1" => experiments::e1_scribe::run(),
        "e2" => experiments::e2_rollups::run(),
        "e3" => experiments::e3_codec::run(),
        "e4" => experiments::e4_compression::run(),
        "e5" => experiments::e5_query_cost::run(),
        "e6" => experiments::e6_funnel::run(),
        "e7" => experiments::e7_ngram::run(),
        "e8" => experiments::e8_collocations::run(),
        "e9" => experiments::e9_legacy::run(),
        "e10" => experiments::e10_summary::run(),
        "e11" => experiments::e11_index::run(),
        "e12" => experiments::e12_catalog::run(),
        "e13" => experiments::e13_layouts::run(),
        "e14" => experiments::e14_parallel::run(),
        "e15" => experiments::e15_pushdown::run(),
        "e16" => experiments::e16_chaos::run(),
        "e17" => experiments::e17_obs::run(),
        "e18" => experiments::e18_ingest::run(),
        "e19" => experiments::e19_columnar::run(),
        "e20" => experiments::e20_scale::run(),
        "e21" => experiments::e21_stream::run(),
        "e22" => experiments::e22_serve::run(),
        "e23" => experiments::e23_delivery::run(),
        _ => return None,
    };
    Some(out)
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23",
];
