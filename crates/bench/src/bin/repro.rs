//! Regenerates the paper's tables and figures. Usage:
//!
//! ```text
//! cargo run --release -p uli-bench --bin repro -- all
//! cargo run --release -p uli-bench --bin repro -- e4 e5
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        uli_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        // E14 additionally persists its sweep for tooling that tracks the
        // serial-vs-parallel numbers across revisions.
        if id == "e14" {
            let m = uli_bench::experiments::e14_parallel::measure();
            println!("{}", "=".repeat(74));
            println!("{}", uli_bench::experiments::e14_parallel::render(&m));
            let json = uli_bench::experiments::e14_parallel::to_json(&m);
            match std::fs::write("BENCH_parallel_scan.json", json) {
                Ok(()) => println!("wrote BENCH_parallel_scan.json"),
                Err(e) => {
                    eprintln!("could not write BENCH_parallel_scan.json: {e}");
                    failed = true;
                }
            }
            continue;
        }
        match uli_bench::run_experiment(id) {
            Some(report) => {
                println!("{}", "=".repeat(74));
                println!("{report}");
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; valid: {} or 'all'",
                    uli_bench::ALL_EXPERIMENTS.join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
