//! Regenerates the paper's tables and figures. Usage:
//!
//! ```text
//! cargo run --release -p uli-bench --bin repro -- all
//! cargo run --release -p uli-bench --bin repro -- e4 e5
//! cargo run --release -p uli-bench --bin repro -- --smoke e14 e15
//! cargo run --release -p uli-bench --bin repro -- --layout row e19
//! ```
//!
//! `--smoke` runs the sweep experiments at reduced scale (small day, two
//! worker counts) for CI; smoke runs never overwrite the BENCH_*.json
//! artifacts. `--layout {row,columnar,columnar-plain}` picks the default
//! warehouse landing layout (columnar unless overridden) — E19 records
//! which ablation arm that choice corresponds to. `--scale
//! {smoke,default,1m}` sizes E20's synthetic day (default `1m`: one
//! million users, >10M events) and `--mem-budget <bytes>` overrides the
//! memory budget of E20's budgeted query arms; smoke E20 ignores both so
//! the CI golden stays fixed.

use std::process::ExitCode;

use uli_workload::{Layout, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut layout = Layout::default();
    let mut scale = Scale::OneM;
    let mut mem_budget: Option<u64> = None;
    let mut skip_value = false;
    let mut named: Vec<&str> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if skip_value {
            skip_value = false;
            continue;
        }
        // `--flag value` and `--flag=value` both work.
        let valued = |flag: &str, skip: &mut bool| -> Option<&str> {
            if let Some(v) = a.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
                Some(v)
            } else if a == flag {
                *skip = true;
                args.get(i + 1).map(String::as_str)
            } else {
                None
            }
        };
        if a == "--layout" || a.starts_with("--layout=") {
            layout = match valued("--layout", &mut skip_value).and_then(Layout::parse) {
                Some(l) => l,
                None => {
                    eprintln!("--layout takes one of: row, columnar, columnar-plain");
                    return ExitCode::FAILURE;
                }
            };
            continue;
        }
        if a == "--scale" || a.starts_with("--scale=") {
            scale = match valued("--scale", &mut skip_value).and_then(Scale::parse) {
                Some(s) => s,
                None => {
                    eprintln!("--scale takes one of: smoke, default, 1m");
                    return ExitCode::FAILURE;
                }
            };
            continue;
        }
        if a == "--mem-budget" || a.starts_with("--mem-budget=") {
            mem_budget = match valued("--mem-budget", &mut skip_value)
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|b| *b > 0)
            {
                Some(b) => Some(b),
                None => {
                    eprintln!("--mem-budget takes a positive byte count");
                    return ExitCode::FAILURE;
                }
            };
            continue;
        }
        if !a.starts_with("--") {
            named.push(a);
        }
    }
    let ids: Vec<&str> = if named.is_empty() || named.contains(&"all") {
        uli_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        named
    };
    let mut failed = false;
    for id in ids {
        // E14/E15 additionally persist their sweeps for tooling that tracks
        // the serial-vs-parallel and eager-vs-pushdown numbers across
        // revisions (full scale only).
        if id == "e14" {
            use uli_bench::experiments::e14_parallel as e14;
            let m = if smoke {
                e14::measure_with(120, &[1, 2])
            } else {
                e14::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e14::render(&m));
            if !smoke {
                match std::fs::write("BENCH_parallel_scan.json", e14::to_json(&m)) {
                    Ok(()) => println!("wrote BENCH_parallel_scan.json"),
                    Err(e) => {
                        eprintln!("could not write BENCH_parallel_scan.json: {e}");
                        failed = true;
                    }
                }
            }
            continue;
        }
        if id == "e15" {
            use uli_bench::experiments::e15_pushdown as e15;
            let m = if smoke {
                e15::measure_with(120, &[2])
            } else {
                e15::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e15::render(&m));
            if !m.outputs_identical {
                eprintln!("e15: pushdown outputs diverged from eager");
                failed = true;
            }
            if !smoke {
                match std::fs::write("BENCH_pushdown.json", e15::to_json(&m)) {
                    Ok(()) => println!("wrote BENCH_pushdown.json"),
                    Err(e) => {
                        eprintln!("could not write BENCH_pushdown.json: {e}");
                        failed = true;
                    }
                }
            }
            continue;
        }
        if id == "e16" {
            // The chaos sweep scales by seed count; smoke keeps CI fast
            // while still exercising the checker and the negative control.
            use uli_bench::experiments::e16_chaos as e16;
            let report = if smoke { e16::run_with(8) } else { e16::run() };
            println!("{}", "=".repeat(74));
            println!("{report}");
            continue;
        }
        if id == "e17" {
            // The observability sweep gates on its own invariants:
            // cross-layer reconciliation, worker-invariant snapshots, and a
            // clean duplicate-registration list. Smoke writes the snapshot
            // CI diffs against the checked-in golden file; full scale
            // persists BENCH_obs.json.
            use uli_bench::experiments::e17_obs as e17;
            let m = if smoke {
                e17::smoke_snapshot()
            } else {
                e17::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e17::render(&m));
            if !m.reconciled {
                eprintln!("e17: cross-layer totals did not reconcile");
                failed = true;
            }
            if !m.snapshots_identical {
                eprintln!("e17: snapshot differs across worker counts");
                failed = true;
            }
            if !m.duplicates_clean {
                eprintln!("e17: duplicate metric registrations found");
                failed = true;
            }
            let (path, payload) = if smoke {
                (
                    "target/e17_smoke.metrics.json",
                    m.samples[0].snapshot_json.clone(),
                )
            } else {
                ("BENCH_obs.json", e17::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if id == "e18" {
            // The ingest ablation gates on its own invariants: batching
            // must not change the landed bytes, and the streaming
            // compressor must match one-shot compression exactly. Smoke
            // writes the metrics CI diffs against the checked-in golden
            // file; full scale persists BENCH_ingest.json.
            use uli_bench::experiments::e18_ingest as e18;
            let m = if smoke {
                e18::smoke_snapshot()
            } else {
                e18::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e18::render(&m));
            if !m.landed_identical {
                eprintln!("e18: batching changed the landed warehouse bytes");
                failed = true;
            }
            if !m.streaming_matches_oneshot {
                eprintln!("e18: streaming compression diverged from one-shot");
                failed = true;
            }
            let (path, payload) = if smoke {
                ("target/e18_smoke.metrics.json", e18::to_json(&m))
            } else {
                ("BENCH_ingest.json", e18::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if id == "e19" {
            // The columnar ablation gates on its own invariants: identical
            // rows across every arm and worker count, and the ≥4x
            // decoded-bytes drop vs row-pushdown. Smoke writes the
            // machine-independent metrics CI diffs against the checked-in
            // golden file; full scale persists BENCH_columnar.json.
            use uli_bench::experiments::e19_columnar as e19;
            let m = if smoke {
                e19::smoke_snapshot(layout)
            } else {
                e19::measure_at(layout)
            };
            println!("{}", "=".repeat(74));
            println!("{}", e19::render(&m));
            if !m.outputs_identical {
                eprintln!("e19: columnar arms diverged from the row reference");
                failed = true;
            }
            if m.decoded_bytes_ratio < 4.0 {
                eprintln!(
                    "e19: columnar+dict decoded-bytes drop below 4x ({:.2}x)",
                    m.decoded_bytes_ratio
                );
                failed = true;
            }
            let (path, payload) = if smoke {
                ("target/e19_smoke.metrics.json", e19::to_json(&m))
            } else {
                ("BENCH_columnar.json", e19::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if id == "e20" {
            // The scale run gates on the bounded-memory invariants:
            // budgeted arms byte-identical to unbounded, spills actually
            // exercised, every stage's high-water mark under its budget,
            // and (below 1m) streaming materialization byte-identical to
            // batch. Smoke pins the scale and budgets so the golden file
            // stays fixed; full scale persists BENCH_scale.json.
            use uli_bench::experiments::e20_scale as e20;
            let m = if smoke {
                e20::smoke_snapshot()
            } else {
                e20::measure_at(scale, mem_budget)
            };
            println!("{}", "=".repeat(74));
            println!("{}", e20::render(&m));
            if !m.queries_identical {
                eprintln!("e20: budgeted query rows diverged from unbounded");
                failed = true;
            }
            if m.mat_matches_batch == Some(false) {
                eprintln!("e20: streaming materialization diverged from batch");
                failed = true;
            }
            if m.budgeted_spill_runs() == 0 {
                eprintln!("e20: no budgeted stage spilled — budgets too generous");
                failed = true;
            }
            if !m.peaks_within_budget() {
                eprintln!("e20: a stage's memory high-water mark exceeded its budget");
                failed = true;
            }
            let (path, payload) = if smoke {
                ("target/e20_smoke.metrics.json", e20::to_json(&m))
            } else {
                ("BENCH_scale.json", e20::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if id == "e21" {
            // The lambda run gates on its own invariants: streaming views
            // identical across worker counts and equal to batch (exactly
            // for exact aggregates, within bounds for sketches), and chaos
            // streaming totals equal to the audited delivered partition.
            // Smoke pins the day and seed count so the golden stays fixed;
            // full scale persists BENCH_stream.json with host cores.
            use uli_bench::experiments::e21_stream as e21;
            let m = if smoke {
                e21::smoke_snapshot()
            } else {
                e21::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e21::render(&m));
            if !m.shard_invariant {
                eprintln!("e21: streaming views diverged across worker counts");
                failed = true;
            }
            if !m.streaming_matches_batch {
                eprintln!("e21: streaming did not converge to batch");
                failed = true;
            }
            if !(m.hll_within_bound && m.topk_within_bound && m.percentile_within_bound) {
                eprintln!("e21: a sketch left its declared error bound");
                failed = true;
            }
            if !m.chaos_reconciled {
                eprintln!("e21: chaos streaming totals diverged from the delivered partition");
                failed = true;
            }
            let (path, payload) = if smoke {
                ("target/e21_smoke.metrics.json", e21::to_json(&m))
            } else {
                ("BENCH_stream.json", e21::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if id == "e22" {
            // The serving-layer run gates on its own invariants: every
            // point-lookup answer byte-identical to the batch engine at
            // every worker count, a >=50x decoded-bytes reduction over
            // the suite, the serve/* registry reconciling against the
            // maintainer state, and chaos indexes (with crash-window
            // injection) accounting for exactly the delivered partition.
            // Smoke pins the day and seed count so the golden stays
            // fixed; full scale persists BENCH_serve.json.
            use uli_bench::experiments::e22_serve as e22;
            let m = if smoke {
                e22::smoke_snapshot()
            } else {
                e22::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e22::render(&m));
            if !m.answers_match {
                eprintln!("e22: a serving answer diverged from the batch engine");
                failed = true;
            }
            if m.decoded_bytes_ratio < 50.0 {
                eprintln!(
                    "e22: decoded-bytes reduction {:.1}x under the 50x gate",
                    m.decoded_bytes_ratio
                );
                failed = true;
            }
            if m.index_lag_hours != 0 {
                eprintln!(
                    "e22: index lag {} hours after the day landed",
                    m.index_lag_hours
                );
                failed = true;
            }
            if !m.obs_reconciled {
                eprintln!("e22: serve/* registry metrics diverged from maintainer state");
                failed = true;
            }
            if !m.chaos_consistent {
                eprintln!("e22: chaos indexes diverged from the delivered partition");
                failed = true;
            }
            let (path, payload) = if smoke {
                ("target/e22_smoke.metrics.json", e22::to_json(&m))
            } else {
                ("BENCH_serve.json", e22::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        if id == "e23" {
            // The delivery run gates on its own invariants: landed files,
            // seen-set, and tap dispatch byte-identical to the serial
            // mover at workers {1,4,8}; the chaos sweep clean and
            // identical to serial with the 8-worker mover; and >=3x
            // speedup at 8 workers (cost-model basis on single-core
            // hosts, per the honesty convention). Smoke pins the day and
            // seed count so the golden stays fixed; full scale drives the
            // 1m-user day and persists BENCH_delivery.json.
            use uli_bench::experiments::e23_delivery as e23;
            let m = if smoke {
                e23::smoke_snapshot()
            } else {
                e23::measure()
            };
            println!("{}", "=".repeat(74));
            println!("{}", e23::render(&m));
            if !m.identical_across_workers {
                eprintln!("e23: parallel delivery diverged from serial");
                failed = true;
            }
            if !m.chaos_clean {
                eprintln!("e23: a chaos seed violated a delivery invariant");
                failed = true;
            }
            if !m.chaos_matches_serial {
                eprintln!("e23: parallel chaos outcome diverged from serial");
                failed = true;
            }
            if m.gate_speedup_at_8 < 3.0 {
                eprintln!(
                    "e23: speedup at 8 workers {:.2}x under the 3x gate",
                    m.gate_speedup_at_8
                );
                failed = true;
            }
            let (path, payload) = if smoke {
                ("target/e23_smoke.metrics.json", e23::to_json(&m))
            } else {
                ("BENCH_delivery.json", e23::to_json(&m))
            };
            match std::fs::write(path, payload) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    failed = true;
                }
            }
            continue;
        }
        match uli_bench::run_experiment(id) {
            Some(report) => {
                println!("{}", "=".repeat(74));
                println!("{report}");
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; valid: {} or 'all'",
                    uli_bench::ALL_EXPERIMENTS.join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
