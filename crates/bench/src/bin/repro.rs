//! Regenerates the paper's tables and figures. Usage:
//!
//! ```text
//! cargo run --release -p uli-bench --bin repro -- all
//! cargo run --release -p uli-bench --bin repro -- e4 e5
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        uli_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match uli_bench::run_experiment(id) {
            Some(report) => {
                println!("{}", "=".repeat(74));
                println!("{report}");
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; valid: {} or 'all'",
                    uli_bench::ALL_EXPERIMENTS.join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
