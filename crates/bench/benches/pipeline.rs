//! E1 bench: Scribe delivery throughput and the log mover's merge.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use uli_scribe::mover::{seal_hour, LogMover};
use uli_scribe::pipeline::PipelineConfig;
use uli_scribe::{LogEntry, ScribePipeline};
use uli_warehouse::{HourlyPartition, Warehouse};

fn bench_delivery(c: &mut Criterion) {
    let entries: Vec<LogEntry> = (0..5_000)
        .map(|i| LogEntry::new("client_events", format!("message-{i}").into_bytes()))
        .collect();

    let mut g = c.benchmark_group("scribe_delivery");
    g.throughput(Throughput::Elements(entries.len() as u64));
    g.bench_function("deliver_flush_move_5k", |b| {
        b.iter_batched(
            || {
                (
                    ScribePipeline::new(PipelineConfig {
                        datacenters: 2,
                        hosts_per_dc: 8,
                        aggregators_per_dc: 2,
                        records_per_file: 100_000,
                        ..Default::default()
                    }),
                    entries.clone(),
                )
            },
            |(mut pipe, entries)| {
                for (i, e) in entries.into_iter().enumerate() {
                    pipe.log(i % 2, (i / 2) % 8, e);
                }
                pipe.step();
                pipe.flush_hour(0);
                pipe.seal_hour("client_events", 0);
                black_box(pipe.move_hour("client_events", 0).expect("sealed"));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_mover_merge(c: &mut Criterion) {
    // Many small files → few big ones: the mover's core transformation.
    let partition = HourlyPartition::new("client_events", 2012, 8, 21, 14).unwrap();
    let staging = Warehouse::new();
    let dir = partition.main_dir();
    for f in 0..40 {
        let mut w = staging
            .create(&dir.child(&format!("agg-{f:03}")).unwrap())
            .unwrap();
        for r in 0..250 {
            w.append_record(format!("rec-{f}-{r}").as_bytes());
        }
        w.finish().unwrap();
    }
    seal_hour(&staging, &partition).unwrap();

    let mut g = c.benchmark_group("log_mover");
    g.throughput(Throughput::Elements(40 * 250));
    g.bench_function("merge_40_files_10k_records", |b| {
        b.iter_batched(
            || LogMover::new(Warehouse::new(), 5_000),
            |mut mover| {
                black_box(
                    mover
                        .move_hour(&partition, &[("dc0", &staging)])
                        .expect("sealed"),
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_delivery, bench_mover_merge
}
criterion_main!(benches);
