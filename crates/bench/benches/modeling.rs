//! E7/E8 benches: n-gram language modeling and collocation mining over a
//! day of session sequences.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use uli_analytics::{load_sequences, CollocationMiner, InterpolatedModel, NgramModel};
use uli_bench::harness::{prepare_day, standard_config};
use uli_core::session::dictionary::rank_for_char;

fn corpus() -> Vec<Vec<u32>> {
    let prepared = prepare_day(&standard_config(), 0);
    load_sequences(&prepared.warehouse, 0)
        .expect("materialized")
        .iter()
        .map(|s| s.sequence.chars().filter_map(rank_for_char).collect())
        .collect()
}

fn bench_ngram(c: &mut Criterion) {
    let train = corpus();
    let tokens: u64 = train.iter().map(|s| s.len() as u64).sum();

    let mut g = c.benchmark_group("ngram");
    g.throughput(Throughput::Elements(tokens));
    for n in [2usize, 3] {
        g.bench_function(format!("train_order_{n}"), |b| {
            b.iter(|| black_box(NgramModel::train(n, 0.05, &train)))
        });
    }
    let bigram = InterpolatedModel::train(2, 0.05, 0.5, &train);
    g.bench_function("cross_entropy_bigram", |b| {
        b.iter(|| black_box(bigram.cross_entropy(&train)))
    });
    g.finish();
}

fn bench_collocations(c: &mut Criterion) {
    let train = corpus();
    let tokens: u64 = train.iter().map(|s| s.len() as u64).sum();

    let mut g = c.benchmark_group("collocations");
    g.throughput(Throughput::Elements(tokens));
    g.bench_function("mine_day", |b| {
        b.iter(|| {
            let mut miner = CollocationMiner::new();
            for s in &train {
                miner.add_sequence(s);
            }
            black_box(miner.top_by_llr(10, 25))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ngram, bench_collocations
}
criterion_main!(benches);
