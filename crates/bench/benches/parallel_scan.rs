//! Parallel scan/execute benches: materialization and a raw-log counting
//! query at 1/2/4/8 workers, plus cold- vs warm-cache scans.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use uli_bench::experiments::e5_query_cost::raw_count_plan;
use uli_core::event::EventPattern;
use uli_core::session::Materializer;
use uli_dataflow::prelude::*;
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, WorkloadConfig};

fn landed_day() -> (Warehouse, u64) {
    let day = generate_day(
        &WorkloadConfig {
            users: 200,
            ..Default::default()
        },
        0,
    );
    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).unwrap();
    (wh, day.truth.events)
}

fn bench_materialize_workers(c: &mut Criterion) {
    let (wh, events) = landed_day();
    let mut g = c.benchmark_group("materialize_workers");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for workers in [1usize, 2, 4, 8] {
        let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
        g.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| black_box(m.run_day(0).expect("day present")))
        });
    }
    g.finish();
}

fn bench_query_workers(c: &mut Criterion) {
    let (wh, events) = landed_day();
    Materializer::new(wh.clone())
        .run_day(0)
        .expect("day present");
    let dict = Materializer::new(wh.clone())
        .load_dictionary(0)
        .expect("persisted");
    let plan = raw_count_plan(&dict, &EventPattern::parse("*:impression").expect("valid"));
    let mut g = c.benchmark_group("raw_count_workers");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
        g.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| black_box(engine.run(&plan).expect("runs")))
        });
    }
    g.finish();
}

fn bench_block_cache(c: &mut Criterion) {
    let (wh, events) = landed_day();
    Materializer::new(wh.clone())
        .run_day(0)
        .expect("day present");
    let dict = Materializer::new(wh.clone())
        .load_dictionary(0)
        .expect("persisted");
    let plan = raw_count_plan(&dict, &EventPattern::parse("*:impression").expect("valid"));
    let engine = Engine::new(wh.clone()).with_parallelism(Parallelism::fixed(4));
    let mut g = c.benchmark_group("block_cache");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    g.bench_function("cold", |b| {
        b.iter(|| {
            wh.clear_cache();
            black_box(engine.run(&plan).expect("runs"))
        })
    });
    engine.run(&plan).expect("runs"); // prime
    g.bench_function("warm", |b| {
        b.iter(|| black_box(engine.run(&plan).expect("runs")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_materialize_workers, bench_query_workers, bench_block_cache
}
criterion_main!(benches);
