//! Microbenchmarks for the serialization substrates: the Thrift-style
//! client event codec (E3) and the ulz block compressor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use uli_core::client_event::{ClientEvent, ClientEventLoader};
use uli_core::event::{EventName, EventPattern};
use uli_dataflow::Loader;
use uli_thrift::ThriftRecord;
use uli_warehouse::compress;
use uli_workload::{generate_day, WorkloadConfig};

fn sample_events() -> Vec<ClientEvent> {
    generate_day(
        &WorkloadConfig {
            users: 50,
            ..Default::default()
        },
        0,
    )
    .events
}

fn bench_thrift_codec(c: &mut Criterion) {
    let events = sample_events();
    let encoded: Vec<Vec<u8>> = events.iter().map(|e| e.to_bytes()).collect();
    let bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();

    let mut g = c.benchmark_group("thrift_codec");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("encode_day", |b| {
        b.iter(|| {
            for ev in &events {
                black_box(ev.to_bytes());
            }
        })
    });
    g.bench_function("decode_day", |b| {
        b.iter(|| {
            for buf in &encoded {
                black_box(ClientEvent::from_bytes(buf).expect("valid"));
            }
        })
    });
    g.bench_function("loader_parse_day", |b| {
        b.iter(|| {
            for buf in &encoded {
                black_box(ClientEventLoader.parse(buf).expect("ok"));
            }
        })
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let events = sample_events();
    let mut block = Vec::new();
    for ev in events.iter().take(500) {
        block.extend_from_slice(&ev.to_bytes());
    }
    let compressed = compress::compress(&block);

    let mut g = c.benchmark_group("ulz");
    g.throughput(Throughput::Bytes(block.len() as u64));
    g.bench_function("compress_block", |b| {
        b.iter(|| black_box(compress::compress(&block)))
    });
    g.bench_function("decompress_block", |b| {
        b.iter(|| black_box(compress::decompress(&compressed).expect("valid")))
    });
    g.finish();
}

fn bench_event_names(c: &mut Criterion) {
    let names: Vec<String> = sample_events()
        .iter()
        .take(1000)
        .map(|e| e.name.as_str().to_string())
        .collect();
    let parsed: Vec<EventName> = names.iter().map(|n| EventName::parse(n).unwrap()).collect();
    let pattern = EventPattern::parse("web:home:mentions:*").unwrap();

    let mut g = c.benchmark_group("event_names");
    g.bench_function("parse_1k", |b| {
        b.iter(|| {
            for n in &names {
                black_box(EventName::parse(n).expect("valid"));
            }
        })
    });
    g.bench_function("pattern_match_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for n in &parsed {
                if pattern.matches(n) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("rollup_1k", |b| {
        b.iter_batched(
            || parsed.clone(),
            |names| {
                for n in &names {
                    for level in 1..=5 {
                        black_box(n.rollup(level));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_thrift_codec, bench_compression, bench_event_names
}
criterion_main!(benches);
