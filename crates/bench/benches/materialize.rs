//! E4 benches: dictionary construction, sessionization (with the
//! 30-minute-gap ablation), full-day materialization, and the roll-up job.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use uli_core::client_event::ClientEvent;
use uli_core::session::{EventDictionary, Materializer, Sessionizer};
use uli_oink::compute_rollups;
use uli_warehouse::Warehouse;
use uli_workload::{generate_day, write_client_events, WorkloadConfig};

fn day_events() -> Vec<ClientEvent> {
    generate_day(
        &WorkloadConfig {
            users: 150,
            ..Default::default()
        },
        0,
    )
    .events
}

fn bench_sessionize(c: &mut Criterion) {
    let events = day_events();
    let mut g = c.benchmark_group("sessionize");
    g.throughput(Throughput::Elements(events.len() as u64));
    // The 30-minute standard plus the ablation sweep.
    for gap_minutes in [5i64, 30, 120] {
        g.bench_function(format!("gap_{gap_minutes}m"), |b| {
            let s = Sessionizer::with_gap_ms(gap_minutes * 60 * 1000);
            b.iter_batched(
                || events.clone(),
                |evs| black_box(s.sessionize(evs)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let events = day_events();
    let mut counts = std::collections::BTreeMap::new();
    for ev in &events {
        *counts.entry(ev.name.clone()).or_insert(0u64) += 1;
    }
    let count_vec: Vec<_> = counts.into_iter().collect();
    let dict = EventDictionary::from_counts(count_vec.clone());
    let sessions = Sessionizer::new().sessionize(events.clone());

    let mut g = c.benchmark_group("dictionary");
    g.bench_function("build", |b| {
        b.iter_batched(
            || count_vec.clone(),
            |cv| black_box(EventDictionary::from_counts(cv)),
            BatchSize::SmallInput,
        )
    });
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("encode_day_of_sessions", |b| {
        b.iter(|| {
            for s in &sessions {
                black_box(dict.encode_sequence(s.events.iter()).expect("covered"));
            }
        })
    });
    g.finish();
}

fn bench_materialize_and_rollups(c: &mut Criterion) {
    let events = day_events();
    let wh = Warehouse::new();
    write_client_events(&wh, &events, 4).unwrap();

    let mut g = c.benchmark_group("daily_jobs");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("materialize_day", |b| {
        b.iter(|| {
            black_box(
                Materializer::new(wh.clone())
                    .run_day(0)
                    .expect("day present"),
            )
        })
    });
    g.bench_function("rollup_day", |b| {
        b.iter(|| black_box(compute_rollups(&wh, 0).expect("day present")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_sessionize, bench_dictionary, bench_materialize_and_rollups
}
criterion_main!(benches);
