//! Ablation benches for the design decisions DESIGN.md calls out.
//!
//! * `namespace`: flat six-level roll-ups (five fixed schemas) vs the
//!   rejected arbitrary-depth tree (every prefix materialized) — §3.2's
//!   "flexibility … comes at the cost of complexity and the fact that the
//!   top-level aggregates would be more difficult to automatically compute".
//! * `layout`: scanning raw hour-partitioned logs vs the rejected
//!   alternative of rewriting full Thrift messages grouped by session vs
//!   the session sequences — §4.2's discussion of why re-laying-out the
//!   raw events "would have little impact on … too many brute force scans".

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use uli_bench::harness::{prepare_day, standard_config};
use uli_core::client_event::ClientEvent;
use uli_core::event::TreeEventName;
use uli_core::session::day_dir;
use uli_thrift::ThriftRecord;
use uli_warehouse::{Warehouse, WhPath};

fn bench_namespace_rollup(c: &mut Criterion) {
    let prepared = prepare_day(&standard_config(), 0);
    let names: Vec<_> = prepared.day.events.iter().map(|e| e.name.clone()).collect();

    let mut g = c.benchmark_group("namespace_rollup");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("flat_five_schemas", |b| {
        b.iter(|| {
            let mut counts: BTreeMap<String, u64> = BTreeMap::new();
            for n in &names {
                for level in 1..=5 {
                    *counts.entry(n.rollup(level)).or_insert(0) += 1;
                }
            }
            black_box(counts.len())
        })
    });
    g.bench_function("tree_all_prefixes", |b| {
        b.iter(|| {
            let mut counts: BTreeMap<String, u64> = BTreeMap::new();
            for n in &names {
                let tree = TreeEventName::from_flat(n);
                for prefix in tree.prefixes() {
                    *counts.entry(prefix.to_string()).or_insert(0) += 1;
                }
                *counts.entry(tree.to_string()).or_insert(0) += 1;
            }
            black_box(counts.len())
        })
    });
    g.finish();
}

/// The rejected §4.2 alternative: rewrite the complete Thrift messages
/// grouped by session. Solves the group-by, not the scan volume.
fn materialize_resessioned(wh: &Warehouse, events: &[ClientEvent]) -> WhPath {
    let mut by_session: BTreeMap<(i64, String), Vec<&ClientEvent>> = BTreeMap::new();
    for ev in events {
        by_session
            .entry((ev.user_id, ev.session_id.clone()))
            .or_default()
            .push(ev);
    }
    let dir = WhPath::parse("/resessioned/0").unwrap();
    let mut w = wh.create(&dir.child("part-00000").unwrap()).unwrap();
    for evs in by_session.values() {
        for ev in evs {
            w.append_record(&ev.to_bytes());
        }
    }
    w.finish().unwrap();
    dir
}

fn scan_all(wh: &Warehouse, dir: &WhPath) -> u64 {
    let mut n = 0;
    for file in wh.list_files_recursive(dir).unwrap() {
        let mut r = wh.open(&file).unwrap();
        while let Some(rec) = r.next_record().unwrap() {
            n += rec.len() as u64;
        }
    }
    n
}

fn bench_layouts(c: &mut Criterion) {
    let prepared = prepare_day(&standard_config(), 0);
    let wh = prepared.warehouse.clone();
    let raw_dir = day_dir("client_events", 0);
    let resessioned_dir = materialize_resessioned(&wh, &prepared.day.events);
    let sequences_dir = uli_core::session::sequences_dir(0);

    let mut g = c.benchmark_group("layout_scan");
    g.sample_size(10);
    g.bench_function("raw_hourly_thrift", |b| {
        b.iter(|| black_box(scan_all(&wh, &raw_dir)))
    });
    g.bench_function("resessioned_full_thrift", |b| {
        b.iter(|| black_box(scan_all(&wh, &resessioned_dir)))
    });
    g.bench_function("session_sequences", |b| {
        b.iter(|| black_box(scan_all(&wh, &sequences_dir)))
    });
    g.finish();

    // Report the scan volumes once (criterion measures time; the byte
    // asymmetry is the point the paper makes).
    let raw = wh.dir_meta(&raw_dir).unwrap();
    let re = wh.dir_meta(&resessioned_dir).unwrap();
    let seq = wh.dir_meta(&sequences_dir).unwrap();
    eprintln!(
        "layout bytes on disk: raw {} KB | resessioned {} KB | sequences {} KB",
        raw.compressed_bytes / 1024,
        re.compressed_bytes / 1024,
        seq.compressed_bytes / 1024
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_namespace_rollup, bench_layouts
}
criterion_main!(benches);
