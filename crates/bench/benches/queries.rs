//! E5/E6/E9/E11 benches: the paper's queries, timed.
//!
//! `count_query/raw` vs `count_query/sequences` is the headline comparison:
//! the same answer from a full scan of client event logs versus string
//! operations over the 30–50x smaller session sequences.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uli_analytics::{load_sequences, ClientEventsFunnel};
use uli_bench::experiments::e5_query_cost::{
    raw_count_plan, raw_sessionize_plan, sequence_count_plan,
};
use uli_bench::harness::{prepare_day, standard_config};
use uli_core::event::EventPattern;
use uli_core::legacy::{LegacyCategory, LegacyLoader, LEGACY_SCHEMA};
use uli_core::session::{day_dir, Materializer};
use uli_dataflow::prelude::*;
use uli_index::{build_client_event_index, EventIndexPruner};
use uli_workload::{signup_funnel, write_legacy_events};

fn bench_count_query(c: &mut Criterion) {
    let prepared = prepare_day(&standard_config(), 0);
    let wh = prepared.warehouse.clone();
    let dict = Materializer::new(wh.clone()).load_dictionary(0).unwrap();
    let engine = Engine::new(wh);
    let pattern = EventPattern::parse("*:profile_click").unwrap();
    let raw = raw_count_plan(&dict, &pattern);
    let seq = sequence_count_plan(&dict, &pattern);

    let mut g = c.benchmark_group("count_query");
    g.bench_function("raw_logs", |b| {
        b.iter(|| black_box(engine.run(&raw).expect("runs")))
    });
    g.bench_function("sequences", |b| {
        b.iter(|| black_box(engine.run(&seq).expect("runs")))
    });
    g.bench_function("raw_session_reconstruction", |b| {
        let plan = raw_sessionize_plan();
        b.iter(|| black_box(engine.run(&plan).expect("runs")))
    });
    g.finish();
}

fn bench_funnel(c: &mut Criterion) {
    let prepared = prepare_day(&standard_config(), 0);
    let dict = Materializer::new(prepared.warehouse.clone())
        .load_dictionary(0)
        .unwrap();
    let sequences = load_sequences(&prepared.warehouse, 0).unwrap();
    let funnel = ClientEventsFunnel::new(signup_funnel().stages, &dict);

    let mut g = c.benchmark_group("funnel");
    g.bench_function("evaluate_day", |b| {
        b.iter(|| black_box(funnel.evaluate(sequences.iter().map(|s| s.sequence.as_str()))))
    });
    g.finish();
}

fn bench_index_scan(c: &mut Criterion) {
    let prepared = prepare_day(&standard_config(), 0);
    let wh = prepared.warehouse.clone();
    let dict = Materializer::new(wh.clone()).load_dictionary(0).unwrap();
    let data_dir = day_dir("client_events", 0);
    let index = Arc::new(build_client_event_index(&wh, &data_dir).unwrap());
    let pattern = EventPattern::parse("web:signup:*").unwrap();
    let engine = Engine::new(wh);

    let full = raw_count_plan(&dict, &pattern);
    // Same logical query, with the pruner attached at the load.
    let pruner = EventIndexPruner::new(index, pattern.clone());
    let matching: Vec<String> = dict
        .iter()
        .filter(|(_, n, _)| pattern.matches(n))
        .map(|(_, n, _)| n.as_str().to_string())
        .collect();
    let predicate = matching.iter().fold(Expr::lit(false), |acc, name| {
        acc.or(Expr::col(1).eq(Expr::lit(name.as_str())))
    });
    let indexed = Plan::load(
        data_dir,
        Arc::new(uli_core::client_event::ClientEventLoader),
        uli_core::client_event::CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .with_pruner(pruner)
    .filter(predicate)
    .aggregate(vec![Agg::count()]);

    let mut g = c.benchmark_group("index_scan");
    g.bench_function("full_scan", |b| {
        b.iter(|| black_box(engine.run(&full).expect("runs")))
    });
    g.bench_function("with_index", |b| {
        b.iter(|| black_box(engine.run(&indexed).expect("runs")))
    });
    g.finish();
}

fn bench_legacy_vs_unified(c: &mut Criterion) {
    let prepared = prepare_day(&standard_config(), 0);
    let wh = prepared.warehouse.clone();
    write_legacy_events(&wh, &prepared.day.events, 4).unwrap();
    let engine = Engine::new(wh);

    let unified = Plan::load(
        day_dir("client_events", 0),
        Arc::new(uli_core::client_event::ClientEventLoader),
        uli_core::client_event::CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .foreach(vec![("user", Expr::col(2)), ("session", Expr::col(3))])
    .group_by(vec![0, 1]);

    let legacy = {
        let mut loads = LegacyCategory::ALL.iter().map(|cat| {
            Plan::load(
                day_dir(cat.category_name(), 0),
                Arc::new(LegacyLoader::new(*cat)),
                LEGACY_SCHEMA.to_vec(),
            )
        });
        let first = loads.next().unwrap();
        first.union(loads.collect()).group_by(vec![0])
    };

    let mut g = c.benchmark_group("sessionization_query");
    g.bench_function("unified_one_category", |b| {
        b.iter(|| black_box(engine.run(&unified).expect("runs")))
    });
    g.bench_function("legacy_three_formats", |b| {
        b.iter(|| black_box(engine.run(&legacy).expect("runs")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_count_query, bench_funnel, bench_index_scan, bench_legacy_vs_unified
}
criterion_main!(benches);
