//! Automatic roll-up aggregations (§3.2).
//!
//! "Oink jobs automatically aggregate counts of events according to the
//! following schemas:
//! `(client, page, section, component, element, action)` …
//! `(client, *, *, *, *, action)`.
//! These counts are presented as top-level metrics in our internal
//! dashboard, further broken down by country and logged in/logged out
//! status. Thus, without any additional intervention from the application
//! developer, rudimentary statistics are computed and made available on a
//! daily basis."

use std::collections::BTreeMap;

use uli_core::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
use uli_core::session::day_dir;
use uli_thrift::ThriftRecord;
use uli_warehouse::{Warehouse, WarehouseResult, WhPath};

/// The five roll-up schemas: how many leading levels are kept literal
/// (the action is always kept).
pub const ROLLUP_LEVELS: [usize; 5] = [5, 4, 3, 2, 1];

/// Key of one roll-up counter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RollupKey {
    /// 1–5: leading levels kept.
    pub level: usize,
    /// The rolled-up name, e.g. `web:home:*:*:*:profile_click`.
    pub rollup: String,
    /// Country derived from the IP.
    pub country: String,
    /// Logged-in vs logged-out.
    pub logged_in: bool,
}

/// A day's roll-up counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RollupTable {
    counts: BTreeMap<RollupKey, u64>,
}

/// Fake GeoIP: a stable mapping from the leading IPv4 octet to a small
/// country set — the simulation's stand-in for the paper's per-country
/// breakdown.
pub fn country_of_ip(ip: &str) -> &'static str {
    const COUNTRIES: [&str; 5] = ["us", "uk", "jp", "br", "de"];
    let first_octet: u64 = ip
        .split('.')
        .next()
        .and_then(|o| o.parse().ok())
        .unwrap_or(0);
    COUNTRIES[(first_octet % COUNTRIES.len() as u64) as usize]
}

impl RollupTable {
    /// Folds one event into all five schemas.
    pub fn add_event(&mut self, ev: &ClientEvent) {
        let country = country_of_ip(&ev.ip).to_string();
        for level in ROLLUP_LEVELS {
            let key = RollupKey {
                level,
                rollup: ev.name.rollup(level),
                country: country.clone(),
                logged_in: ev.logged_in(),
            };
            *self.counts.entry(key).or_insert(0) += 1;
        }
    }

    /// Count for one fully-specified key.
    pub fn get(&self, level: usize, rollup: &str, country: &str, logged_in: bool) -> u64 {
        self.counts
            .get(&RollupKey {
                level,
                rollup: rollup.to_string(),
                country: country.to_string(),
                logged_in,
            })
            .copied()
            .unwrap_or(0)
    }

    /// Total for a rolled-up name across countries and login status — the
    /// number the dashboard's top-level metric shows.
    pub fn total(&self, level: usize, rollup: &str) -> u64 {
        self.counts
            .iter()
            .filter(|(k, _)| k.level == level && k.rollup == rollup)
            .map(|(_, v)| v)
            .sum()
    }

    /// Top-`k` rolled-up names at a level by total count.
    pub fn top_k(&self, level: usize, k: usize) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for (key, v) in &self.counts {
            if key.level == level {
                *totals.entry(&key.rollup).or_insert(0) += v;
            }
        }
        let mut out: Vec<(String, u64)> = totals
            .into_iter()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no events were folded in.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates all counters.
    pub fn iter(&self) -> impl Iterator<Item = (&RollupKey, u64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Serializes as tab-separated warehouse records.
    pub fn to_records(&self) -> Vec<Vec<u8>> {
        self.counts
            .iter()
            .map(|(k, v)| {
                format!(
                    "{}\t{}\t{}\t{}\t{}",
                    k.level, k.rollup, k.country, k.logged_in as u8, v
                )
                .into_bytes()
            })
            .collect()
    }

    /// Parses records produced by [`to_records`](Self::to_records).
    pub fn from_records<I: IntoIterator<Item = Vec<u8>>>(records: I) -> RollupTable {
        let mut counts = BTreeMap::new();
        for rec in records {
            let Ok(text) = String::from_utf8(rec) else {
                continue;
            };
            let parts: Vec<&str> = text.split('\t').collect();
            if parts.len() != 5 {
                continue;
            }
            let (Ok(level), Ok(logged), Ok(v)) = (
                parts[0].parse::<usize>(),
                parts[3].parse::<u8>(),
                parts[4].parse::<u64>(),
            ) else {
                continue;
            };
            counts.insert(
                RollupKey {
                    level,
                    rollup: parts[1].to_string(),
                    country: parts[2].to_string(),
                    logged_in: logged != 0,
                },
                v,
            );
        }
        RollupTable { counts }
    }
}

/// Where a day's roll-ups are stored.
pub fn rollup_dir(day_index: u64) -> WhPath {
    let day = day_dir("rollups", day_index);
    WhPath::parse(&day.as_str().replacen("/logs/", "/", 1)).expect("constructed path is valid")
}

/// The daily roll-up job: scans a day of client events, computes all five
/// schemas, and persists the table. Returns the table for dashboard use.
pub fn compute_rollups(warehouse: &Warehouse, day_index: u64) -> WarehouseResult<RollupTable> {
    let mut table = RollupTable::default();
    let day = day_dir(CLIENT_EVENTS_CATEGORY, day_index);
    if warehouse.exists(&day) {
        for file in warehouse.list_files_recursive(&day)? {
            let mut reader = warehouse.open(&file)?;
            while let Some(record) = reader.next_record()? {
                if let Ok(ev) = ClientEvent::from_bytes(record) {
                    table.add_event(&ev);
                }
            }
        }
    }
    let dir = rollup_dir(day_index);
    if warehouse.exists(&dir) {
        warehouse.delete_dir(&dir)?;
    }
    let mut w = warehouse.create(&dir.child("counts").expect("valid name"))?;
    for rec in table.to_records() {
        w.append_record(&rec);
    }
    w.finish()?;
    Ok(table)
}

/// Loads a previously computed day's roll-up table.
pub fn load_rollups(warehouse: &Warehouse, day_index: u64) -> WarehouseResult<RollupTable> {
    let file = rollup_dir(day_index).child("counts").expect("valid name");
    Ok(RollupTable::from_records(
        warehouse.open(&file)?.read_all()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::event::{EventInitiator, EventName};
    use uli_core::time::Timestamp;
    use uli_warehouse::HourlyPartition;

    fn ev(name: &str, user: i64, ip: &str) -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(name).unwrap(),
            user,
            "s-1",
            ip,
            Timestamp(0),
        )
    }

    #[test]
    fn one_event_counts_in_all_five_schemas() {
        let mut t = RollupTable::default();
        t.add_event(&ev(
            "web:home:mentions:stream:avatar:profile_click",
            7,
            "1.2.3.4",
        ));
        assert_eq!(t.len(), 5);
        assert_eq!(
            t.total(5, "web:home:mentions:stream:avatar:profile_click"),
            1
        );
        assert_eq!(t.total(1, "web:*:*:*:*:profile_click"), 1);
    }

    #[test]
    fn cross_client_rollups_merge_at_low_levels() {
        let mut t = RollupTable::default();
        t.add_event(&ev("web:home:home:stream:tweet:click", 1, "1.1.1.1"));
        t.add_event(&ev("iphone:home:home:stream:tweet:click", 1, "1.1.1.1"));
        // Level 5 keeps them apart; they only share lower levels per client.
        assert_eq!(t.total(5, "web:home:home:stream:tweet:click"), 1);
        assert_eq!(t.total(1, "web:*:*:*:*:click"), 1);
        assert_eq!(t.total(1, "iphone:*:*:*:*:click"), 1);
    }

    #[test]
    fn country_and_login_breakdowns() {
        let mut t = RollupTable::default();
        t.add_event(&ev("web:home:home:stream:tweet:click", 7, "0.0.0.1")); // us
        t.add_event(&ev("web:home:home:stream:tweet:click", 0, "1.0.0.1")); // uk, logged out
        assert_eq!(t.get(5, "web:home:home:stream:tweet:click", "us", true), 1);
        assert_eq!(t.get(5, "web:home:home:stream:tweet:click", "uk", false), 1);
        assert_eq!(t.get(5, "web:home:home:stream:tweet:click", "uk", true), 0);
        assert_eq!(t.total(5, "web:home:home:stream:tweet:click"), 2);
    }

    #[test]
    fn country_mapping_is_stable() {
        assert_eq!(country_of_ip("0.9.9.9"), "us");
        assert_eq!(country_of_ip("1.0.0.0"), "uk");
        assert_eq!(country_of_ip("6.0.0.0"), "uk");
        assert_eq!(country_of_ip("garbage"), "us");
    }

    #[test]
    fn top_k_orders_by_count() {
        let mut t = RollupTable::default();
        for _ in 0..5 {
            t.add_event(&ev("web:home:home:stream:tweet:impression", 1, "0.0.0.1"));
        }
        t.add_event(&ev("web:home:home:stream:tweet:click", 1, "0.0.0.1"));
        let top = t.top_k(5, 2);
        assert_eq!(top[0].0, "web:home:home:stream:tweet:impression");
        assert_eq!(top[0].1, 5);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn records_round_trip() {
        let mut t = RollupTable::default();
        t.add_event(&ev("web:home:home:stream:tweet:click", 1, "0.0.0.1"));
        t.add_event(&ev("iphone:a:b:c:d:fav", 0, "1.0.0.1"));
        let back = RollupTable::from_records(t.to_records());
        assert_eq!(back, t);
    }

    #[test]
    fn daily_job_scans_the_warehouse_and_persists() {
        let wh = Warehouse::new();
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, 0).main_dir();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        for i in 0..10 {
            let e = ev("web:home:home:stream:tweet:impression", i, "0.0.0.1");
            w.append_record(&e.to_bytes());
        }
        w.finish().unwrap();

        let table = compute_rollups(&wh, 0).unwrap();
        assert_eq!(table.total(5, "web:home:home:stream:tweet:impression"), 10);
        let loaded = load_rollups(&wh, 0).unwrap();
        assert_eq!(loaded, table);
        // Rebuild is idempotent.
        let again = compute_rollups(&wh, 0).unwrap();
        assert_eq!(again, table);
    }

    #[test]
    fn empty_day_yields_empty_table() {
        let wh = Warehouse::new();
        let t = compute_rollups(&wh, 9).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.top_k(5, 3), vec![]);
    }
}
