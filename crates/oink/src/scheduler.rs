//! The job scheduler: recurring jobs, dependency checking, retries.

use std::collections::{BTreeMap, HashSet};

use uli_obs::{Counter, Histogram, Registry};

use crate::trace::{ExecutionTrace, TraceStatus};

/// How often a job recurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Periodicity {
    /// Once per simulation hour; periods are hour indexes.
    Hourly,
    /// Once per simulation day; periods are day indexes.
    Daily,
}

/// Public view of a job's state for one period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Not yet attempted.
    Pending,
    /// Completed successfully.
    Completed,
    /// Attempted and failed (will be retried next advance).
    Failed,
}

type JobAction = Box<dyn FnMut(u64) -> Result<(), String> + Send>;

struct JobEntry {
    name: String,
    periodicity: Periodicity,
    deps: Vec<String>,
    action: JobAction,
}

/// The workflow manager.
///
/// Jobs are registered once; [`Oink::advance_hour`] drives the clock. An
/// hourly job runs for every hour; daily jobs run when their day's last
/// hour has been reached. A job runs only after all its dependencies have
/// completed successfully *for the covering period*: a daily job depending
/// on an hourly job needs all 24 hours of its day.
#[derive(Default)]
pub struct Oink {
    jobs: Vec<JobEntry>,
    completed: HashSet<(String, Periodicity, u64)>,
    failed: HashSet<(String, Periodicity, u64)>,
    traces: Vec<ExecutionTrace>,
    tick: u64,
    /// Registry-backed telemetry, when attached.
    obs: Option<OinkObs>,
}

/// Registry handles behind [`Oink::attach_obs`]. [`ExecutionTrace`] remains
/// the audit log; these aggregate it live: outcome counters per attempt,
/// one span per executed attempt, and an attempts-to-complete histogram
/// (how many action runs each (job, period) needed before succeeding — the
/// paper's "best-effort attempt to respect periodicity constraints" made
/// measurable).
struct OinkObs {
    registry: Registry,
    jobs_succeeded: Counter,
    jobs_failed: Counter,
    jobs_blocked: Counter,
    attempts_to_complete: Histogram,
    /// Executed (not blocked) attempts so far per incomplete (job, period).
    attempts: BTreeMap<(String, Periodicity, u64), u64>,
}

impl Oink {
    /// An empty scheduler.
    pub fn new() -> Oink {
        Oink::default()
    }

    /// Attaches registry-backed telemetry under the `oink` component.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(OinkObs {
            registry: registry.clone(),
            jobs_succeeded: registry.counter("oink", "jobs_succeeded"),
            jobs_failed: registry.counter("oink", "jobs_failed"),
            jobs_blocked: registry.counter("oink", "jobs_blocked"),
            attempts_to_complete: registry.histogram("oink", "attempts_to_complete"),
            attempts: BTreeMap::new(),
        });
    }

    fn add(
        &mut self,
        name: &str,
        periodicity: Periodicity,
        deps: &[&str],
        action: impl FnMut(u64) -> Result<(), String> + Send + 'static,
    ) {
        assert!(
            !self.jobs.iter().any(|j| j.name == name),
            "duplicate job name {name:?}"
        );
        for dep in deps {
            assert!(
                self.jobs.iter().any(|j| j.name == *dep),
                "job {name:?} depends on unregistered {dep:?} — register dependencies first"
            );
        }
        self.jobs.push(JobEntry {
            name: name.to_string(),
            periodicity,
            deps: deps.iter().map(|s| s.to_string()).collect(),
            action: Box::new(action),
        });
    }

    /// Registers an hourly job. Dependencies must already be registered
    /// (which also rules out cycles by construction).
    pub fn add_hourly(
        &mut self,
        name: &str,
        deps: &[&str],
        action: impl FnMut(u64) -> Result<(), String> + Send + 'static,
    ) {
        self.add(name, Periodicity::Hourly, deps, action);
    }

    /// Registers a daily job.
    pub fn add_daily(
        &mut self,
        name: &str,
        deps: &[&str],
        action: impl FnMut(u64) -> Result<(), String> + Send + 'static,
    ) {
        self.add(name, Periodicity::Daily, deps, action);
    }

    /// Status of a job for a period.
    pub fn status(&self, name: &str, period: u64) -> JobStatus {
        let Some(job) = self.jobs.iter().find(|j| j.name == name) else {
            return JobStatus::Pending;
        };
        let key = (name.to_string(), job.periodicity, period);
        if self.completed.contains(&key) {
            JobStatus::Completed
        } else if self.failed.contains(&key) {
            JobStatus::Failed
        } else {
            JobStatus::Pending
        }
    }

    /// The audit log.
    pub fn traces(&self) -> &[ExecutionTrace] {
        &self.traces
    }

    /// True if `dep` has completed everything the `period` of a
    /// `periodicity` job needs.
    fn dep_satisfied(&self, dep: &str, periodicity: Periodicity, period: u64) -> bool {
        let Some(dep_job) = self.jobs.iter().find(|j| j.name == dep) else {
            return false;
        };
        match (periodicity, dep_job.periodicity) {
            (Periodicity::Hourly, Periodicity::Hourly) => {
                self.completed
                    .contains(&(dep.to_string(), Periodicity::Hourly, period))
            }
            // An hourly job depending on a daily one needs yesterday's run
            // (the daily output available when the hour begins).
            (Periodicity::Hourly, Periodicity::Daily) => {
                let day = period / 24;
                day == 0
                    || self
                        .completed
                        .contains(&(dep.to_string(), Periodicity::Daily, day - 1))
            }
            (Periodicity::Daily, Periodicity::Daily) => {
                self.completed
                    .contains(&(dep.to_string(), Periodicity::Daily, period))
            }
            // A daily job needs all 24 hours of its day.
            (Periodicity::Daily, Periodicity::Hourly) => {
                (period * 24..(period + 1) * 24).all(|h| {
                    self.completed
                        .contains(&(dep.to_string(), Periodicity::Hourly, h))
                })
            }
        }
    }

    fn run_due(&mut self, periodicity: Periodicity, period: u64) {
        // Registration order is a valid topological order (deps must be
        // registered first), so a single pass respects dependencies.
        for idx in 0..self.jobs.len() {
            if self.jobs[idx].periodicity != periodicity {
                continue;
            }
            let name = self.jobs[idx].name.clone();
            let key = (name.clone(), periodicity, period);
            if self.completed.contains(&key) {
                continue;
            }
            let blocked = self.jobs[idx]
                .deps
                .clone()
                .into_iter()
                .find(|dep| !self.dep_satisfied(dep, periodicity, period));
            self.tick += 1;
            if let Some(dependency) = blocked {
                if let Some(obs) = &self.obs {
                    obs.jobs_blocked.inc();
                }
                self.traces.push(ExecutionTrace {
                    job: name,
                    period,
                    started_tick: self.tick,
                    duration_ticks: 0,
                    status: TraceStatus::Blocked { dependency },
                });
                continue;
            }
            let attempts = match &mut self.obs {
                Some(obs) => {
                    let n = obs.attempts.entry(key.clone()).or_insert(0);
                    *n += 1;
                    *n
                }
                None => 0,
            };
            let _span = self.obs.as_ref().map(|o| {
                o.registry
                    .span_labeled("oink", &name, &[("period", period.to_string())])
            });
            let result = (self.jobs[idx].action)(period);
            self.failed.remove(&key);
            match result {
                Ok(()) => {
                    if let Some(obs) = &mut self.obs {
                        obs.jobs_succeeded.inc();
                        obs.attempts_to_complete.record(attempts);
                        obs.attempts.remove(&key);
                    }
                    self.completed.insert(key);
                    self.traces.push(ExecutionTrace {
                        job: name,
                        period,
                        started_tick: self.tick,
                        duration_ticks: 1,
                        status: TraceStatus::Success,
                    });
                }
                Err(msg) => {
                    if let Some(obs) = &self.obs {
                        obs.jobs_failed.inc();
                    }
                    self.failed.insert(key);
                    self.traces.push(ExecutionTrace {
                        job: name,
                        period,
                        started_tick: self.tick,
                        duration_ticks: 1,
                        status: TraceStatus::Failed(msg),
                    });
                }
            }
        }
    }

    /// Advances the clock to `hour` (inclusive), running due hourly jobs
    /// and, at each day boundary crossed, the daily jobs. Failed or blocked
    /// jobs are retried on every subsequent advance ("best-effort attempt
    /// to respect periodicity constraints", §3).
    pub fn advance_hour(&mut self, hour: u64) {
        for h in 0..=hour {
            self.run_due(Periodicity::Hourly, h);
            // A day is complete once its last hour has run.
            if h % 24 == 23 {
                self.run_due(Periodicity::Daily, h / 24);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn hourly_jobs_run_once_per_hour() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let mut oink = Oink::new();
        oink.add_hourly("mover", &[], move |_h| {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        oink.advance_hour(5);
        assert_eq!(count.load(Ordering::SeqCst), 6);
        // Re-advancing does not re-run completed periods.
        oink.advance_hour(5);
        assert_eq!(count.load(Ordering::SeqCst), 6);
        assert_eq!(oink.status("mover", 3), JobStatus::Completed);
    }

    #[test]
    fn daily_jobs_wait_for_all_24_hours() {
        let days = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&days);
        let mut oink = Oink::new();
        oink.add_hourly("mover", &[], |_h| Ok(()));
        oink.add_daily("sessions", &["mover"], move |_day| {
            d.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        oink.advance_hour(22);
        assert_eq!(days.load(Ordering::SeqCst), 0, "day 0 not complete yet");
        oink.advance_hour(23);
        assert_eq!(days.load(Ordering::SeqCst), 1);
        oink.advance_hour(47);
        assert_eq!(days.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn dependent_job_blocked_until_dependency_succeeds() {
        // The mover fails for hour 0 on its first two attempts.
        let attempts = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&attempts);
        let mut oink = Oink::new();
        oink.add_hourly("mover", &[], move |_h| {
            if a.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("staging not ready".into())
            } else {
                Ok(())
            }
        });
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        oink.add_hourly("aggregate", &["mover"], move |_h| {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });

        oink.advance_hour(0);
        assert_eq!(oink.status("mover", 0), JobStatus::Failed);
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        // Retry twice more: mover succeeds on the third attempt, unblocking.
        oink.advance_hour(0);
        oink.advance_hour(0);
        assert_eq!(oink.status("mover", 0), JobStatus::Completed);
        assert_eq!(ran.load(Ordering::SeqCst), 1);

        // The audit trail recorded failure, blockage, then success.
        let statuses: Vec<&TraceStatus> = oink.traces().iter().map(|t| &t.status).collect();
        assert!(statuses.iter().any(|s| matches!(s, TraceStatus::Failed(_))));
        assert!(statuses
            .iter()
            .any(|s| matches!(s, TraceStatus::Blocked { dependency } if dependency == "mover")));
        assert!(statuses.iter().any(|s| **s == TraceStatus::Success));
    }

    #[test]
    fn daily_chain_runs_in_registration_order() {
        let order = Arc::new(parking_lot_free_log());
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let mut oink = Oink::new();
        oink.add_hourly("mover", &[], |_h| Ok(()));
        oink.add_daily("dictionary", &["mover"], move |_d| {
            o1.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        oink.add_daily("sequences", &["dictionary"], move |_d| {
            // Sequences must observe dictionary already ran (counter >= 1).
            assert!(o2.load(Ordering::SeqCst) >= 1);
            Ok(())
        });
        oink.advance_hour(23);
        assert_eq!(oink.status("sequences", 0), JobStatus::Completed);
    }

    fn parking_lot_free_log() -> AtomicU64 {
        AtomicU64::new(0)
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn deps_must_be_registered_first() {
        let mut oink = Oink::new();
        oink.add_hourly("b", &["a"], |_h| Ok(()));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let mut oink = Oink::new();
        oink.add_hourly("a", &[], |_h| Ok(()));
        oink.add_hourly("a", &[], |_h| Ok(()));
    }

    #[test]
    fn obs_counts_outcomes_and_attempts() {
        let registry = Registry::new();
        let mut oink = Oink::new();
        oink.attach_obs(&registry);
        // The mover fails its first two attempts for hour 0.
        let tries = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&tries);
        oink.add_hourly("mover", &[], move |_h| {
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("staging not ready".into())
            } else {
                Ok(())
            }
        });
        oink.add_hourly("aggregate", &["mover"], |_h| Ok(()));
        oink.advance_hour(0);
        oink.advance_hour(0);
        oink.advance_hour(0);

        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("oink/jobs_failed"), Some(2));
        assert_eq!(snap.counter_value("oink/jobs_blocked"), Some(2));
        assert_eq!(snap.counter_value("oink/jobs_succeeded"), Some(2));
        // mover took 3 attempts, aggregate 1.
        let hist = registry
            .histogram("oink", "attempts_to_complete")
            .snapshot();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.max, 3);
        assert_eq!(hist.min, 1);
        // Every executed attempt traced as a span labeled with its period.
        let spans = registry.finished_spans();
        assert_eq!(spans.len(), 4, "3 mover attempts + 1 aggregate run");
        assert!(spans.iter().all(|s| s.component == "oink"));
        assert_eq!(spans[0].labels, vec![("period".into(), "0".into())]);
    }

    #[test]
    fn hourly_depending_on_daily_uses_previous_day() {
        let mut oink = Oink::new();
        oink.add_daily("dictionary", &[], |_d| Ok(()));
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        oink.add_hourly("counter", &["dictionary"], move |_h| {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        // Day 0 hours run unconditionally (no previous day required).
        oink.advance_hour(25);
        assert_eq!(ran.load(Ordering::SeqCst), 26);
    }
}
