//! The standard nightly job graph.
//!
//! "One common Oink data dependency is the log mover pipeline, so once logs
//! arrive in the main data warehouse, dependent jobs are automatically
//! triggered" (§3). This module wires the stack's recurring jobs in their
//! production order so applications register one call instead of
//! hand-building the DAG.

use uli_core::session::Materializer;
use uli_warehouse::Warehouse;

use crate::rollup::compute_rollups;
use crate::scheduler::Oink;

/// Job name of the daily roll-up aggregation.
pub const ROLLUPS_JOB: &str = "rollups";
/// Job name of the daily dictionary + session-sequence materialization.
pub const SEQUENCES_JOB: &str = "session_sequences";

/// Registers the standard daily jobs against `warehouse`:
///
/// 1. `rollups` — the five aggregation schemas (§3.2);
/// 2. `session_sequences` — dictionary build + sequence materialization
///    (§4.2), dependent on the roll-ups having succeeded (both consume the
///    same day of client events; ordering keeps warehouse scan contention
///    and audit traces predictable).
///
/// Callers that also drive the log mover should register their hourly mover
/// job *before* calling this and pass its name as `mover_dep` so the daily
/// jobs wait for all 24 hours.
pub fn register_nightly_jobs(oink: &mut Oink, warehouse: Warehouse, mover_dep: Option<&str>) {
    let deps: Vec<&str> = mover_dep.into_iter().collect();
    let wh = warehouse.clone();
    oink.add_daily(ROLLUPS_JOB, &deps, move |day| {
        compute_rollups(&wh, day)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    oink.add_daily(SEQUENCES_JOB, &[ROLLUPS_JOB], move |day| {
        Materializer::new(warehouse.clone())
            .run_day(day)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::JobStatus;
    use uli_core::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
    use uli_core::event::{EventInitiator, EventName};
    use uli_core::session::sequences_dir;
    use uli_core::time::Timestamp;
    use uli_thrift::ThriftRecord;
    use uli_warehouse::HourlyPartition;

    fn write_hour(wh: &Warehouse, hour: u64, n: usize) {
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        for i in 0..n {
            let ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                EventName::parse("web:home:home:stream:tweet:impression").unwrap(),
                i as i64,
                format!("s-{i}"),
                "1.2.3.4",
                Timestamp::from_hour_index(hour).plus(i as i64),
            );
            w.append_record(&ev.to_bytes());
        }
        w.finish().unwrap();
    }

    #[test]
    fn nightly_jobs_run_in_order_per_day() {
        let wh = Warehouse::new();
        for day in 0..2u64 {
            write_hour(&wh, day * 24, 10);
        }
        let mut oink = Oink::new();
        register_nightly_jobs(&mut oink, wh.clone(), None);
        oink.advance_hour(47);
        for day in 0..2 {
            assert_eq!(oink.status(ROLLUPS_JOB, day), JobStatus::Completed);
            assert_eq!(oink.status(SEQUENCES_JOB, day), JobStatus::Completed);
            assert!(wh.exists(&sequences_dir(day)), "day {day} materialized");
        }
        // Audit trail: rollups always precede sequences within a day.
        let ticks: Vec<(String, u64, u64)> = oink
            .traces()
            .iter()
            .map(|t| (t.job.clone(), t.period, t.started_tick))
            .collect();
        for day in 0..2 {
            let rollup_tick = ticks
                .iter()
                .find(|(j, p, _)| j == ROLLUPS_JOB && *p == day)
                .map(|(_, _, t)| *t)
                .expect("rollups ran");
            let seq_tick = ticks
                .iter()
                .find(|(j, p, _)| j == SEQUENCES_JOB && *p == day)
                .map(|(_, _, t)| *t)
                .expect("sequences ran");
            assert!(rollup_tick < seq_tick, "day {day} ordering");
        }
    }

    #[test]
    fn daily_jobs_wait_for_an_hourly_mover_dependency() {
        let wh = Warehouse::new();
        write_hour(&wh, 0, 5);
        let mut oink = Oink::new();
        // A mover that fails for hour 3 on its first attempt.
        let attempts = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let a = std::sync::Arc::clone(&attempts);
        oink.add_hourly("mover", &[], move |h| {
            if h == 3 && a.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                Err("staging lagging".into())
            } else {
                Ok(())
            }
        });
        register_nightly_jobs(&mut oink, wh, Some("mover"));
        oink.advance_hour(23);
        // Hour 3 failed once → day 0 blocked on first pass.
        assert_eq!(oink.status(ROLLUPS_JOB, 0), JobStatus::Pending);
        // Retry sweep: the mover heals, dailies run.
        oink.advance_hour(23);
        assert_eq!(oink.status(ROLLUPS_JOB, 0), JobStatus::Completed);
        assert_eq!(oink.status(SEQUENCES_JOB, 0), JobStatus::Completed);
    }
}
