//! Execution traces: the audit log.

/// Terminal status of one job execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStatus {
    /// Ran and succeeded.
    Success,
    /// Ran and failed, with the job's error message.
    Failed(String),
    /// Never ran because a dependency had not completed successfully.
    Blocked {
        /// The dependency that blocked this job.
        dependency: String,
    },
}

/// One entry of the audit log: "when a job began, how long it lasted,
/// whether it completed successfully" (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Job name.
    pub job: String,
    /// The period index (hour index for hourly jobs, day index for daily).
    pub period: u64,
    /// Logical tick at which the attempt started.
    pub started_tick: u64,
    /// Logical ticks the job consumed (1 per job in this simulation).
    pub duration_ticks: u64,
    /// Outcome.
    pub status: TraceStatus,
}

impl ExecutionTrace {
    /// True if this execution succeeded.
    pub fn succeeded(&self) -> bool {
        self.status == TraceStatus::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_helpers() {
        let t = ExecutionTrace {
            job: "rollup".into(),
            period: 3,
            started_tick: 10,
            duration_ticks: 1,
            status: TraceStatus::Success,
        };
        assert!(t.succeeded());
        let f = ExecutionTrace {
            status: TraceStatus::Failed("boom".into()),
            ..t.clone()
        };
        assert!(!f.succeeded());
        let b = ExecutionTrace {
            status: TraceStatus::Blocked {
                dependency: "mover".into(),
            },
            ..t
        };
        assert!(!b.succeeded());
    }
}
