//! `CountClientEvents`: event counting over session sequences (§5.2).
//!
//! "We begin by specifying the `$EVENTS` we wish to count … an arbitrary
//! regular expression can be supplied which is automatically expanded to
//! include all matching events (via the dictionary that provides the event
//! name to unicode code point mapping) … Since a session sequence is simply
//! a unicode string, the UDF translates into string manipulations after
//! consulting the client event dictionary."

use std::collections::HashSet;
use std::sync::Arc;

use uli_core::event::EventPattern;
use uli_core::session::EventDictionary;
use uli_dataflow::{DataflowError, DataflowResult, ScalarUdf, Value};

/// A pattern expanded into the set of matching code points.
#[derive(Debug, Clone, Default)]
pub struct EventCharSet {
    chars: HashSet<char>,
}

impl EventCharSet {
    /// Expands `pattern` against the dictionary.
    pub fn expand(pattern: &EventPattern, dict: &EventDictionary) -> EventCharSet {
        let chars = dict
            .iter()
            .filter(|(_, name, _)| pattern.matches(name))
            .filter_map(|(rank, _, _)| uli_core::session::dictionary::char_for_rank(rank))
            .collect();
        EventCharSet { chars }
    }

    /// Number of distinct matching events.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// True if the pattern matched nothing.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Whether a code point is in the set.
    pub fn contains(&self, c: char) -> bool {
        self.chars.contains(&c)
    }

    /// Total occurrences in a session sequence — the SUM variant.
    pub fn count_in(&self, sequence: &str) -> u64 {
        sequence.chars().filter(|&c| self.contains(c)).count() as u64
    }

    /// Whether the sequence contains at least one occurrence — the COUNT
    /// (sessions-containing) variant, "useful for understanding what
    /// fraction of users take advantage of a particular feature".
    pub fn occurs_in(&self, sequence: &str) -> bool {
        sequence.chars().any(|c| self.contains(c))
    }
}

/// The paper's `CountClientEvents` UDF for the dataflow engine: takes the
/// sequence column, returns the match count as an `Int`.
#[derive(Debug, Clone)]
pub struct CountClientEvents {
    set: EventCharSet,
}

impl CountClientEvents {
    /// Builds the UDF by expanding `pattern` with the dictionary — the
    /// `define CountClientEvents CountClientEvents('$EVENTS')` step.
    pub fn new(pattern: &EventPattern, dict: &EventDictionary) -> Arc<Self> {
        Arc::new(CountClientEvents {
            set: EventCharSet::expand(pattern, dict),
        })
    }

    /// The expanded character set.
    pub fn charset(&self) -> &EventCharSet {
        &self.set
    }
}

impl ScalarUdf for CountClientEvents {
    fn name(&self) -> &'static str {
        "CountClientEvents"
    }

    fn eval(&self, args: &[Value]) -> DataflowResult<Value> {
        let seq = args
            .first()
            .and_then(Value::as_str)
            .ok_or(DataflowError::TypeError {
                context: "CountClientEvents(sequence)",
            })?;
        Ok(Value::Int(self.set.count_in(seq) as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::event::EventName;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    fn dict() -> EventDictionary {
        EventDictionary::from_counts(vec![
            (n("web:home:home:stream:tweet:impression"), 1000),
            (n("web:home:home:stream:tweet:click"), 100),
            (n("iphone:home:home:stream:tweet:click"), 80),
            (n("web:home:mentions:stream:avatar:profile_click"), 10),
        ])
    }

    #[test]
    fn expansion_matches_pattern_semantics() {
        let d = dict();
        let all_clicks = EventCharSet::expand(&EventPattern::parse("*:click").unwrap(), &d);
        assert_eq!(all_clicks.len(), 2);
        let web_only = EventCharSet::expand(&EventPattern::parse("web:home:home:*").unwrap(), &d);
        assert_eq!(web_only.len(), 2);
        let none = EventCharSet::expand(&EventPattern::parse("*:retweet").unwrap(), &d);
        assert!(none.is_empty());
    }

    #[test]
    fn sum_and_contains_variants() {
        let d = dict();
        let clicks = EventCharSet::expand(&EventPattern::parse("*:click").unwrap(), &d);
        // impression, click, impression, click, profile_click
        let seq = d
            .encode_sequence([
                &n("web:home:home:stream:tweet:impression"),
                &n("web:home:home:stream:tweet:click"),
                &n("web:home:home:stream:tweet:impression"),
                &n("iphone:home:home:stream:tweet:click"),
                &n("web:home:mentions:stream:avatar:profile_click"),
            ])
            .unwrap();
        assert_eq!(clicks.count_in(&seq), 2);
        assert!(clicks.occurs_in(&seq));

        let retweets = EventCharSet::expand(&EventPattern::parse("*:retweet").unwrap(), &d);
        assert_eq!(retweets.count_in(&seq), 0);
        assert!(!retweets.occurs_in(&seq));
    }

    #[test]
    fn udf_counts_via_strings() {
        let d = dict();
        let udf = CountClientEvents::new(&EventPattern::parse("*:impression").unwrap(), &d);
        let seq = d
            .encode_sequence([
                &n("web:home:home:stream:tweet:impression"),
                &n("web:home:home:stream:tweet:impression"),
                &n("web:home:home:stream:tweet:click"),
            ])
            .unwrap();
        assert_eq!(udf.eval(&[Value::Str(seq)]).unwrap(), Value::Int(2));
        assert!(udf.eval(&[Value::Int(3)]).is_err());
        assert!(udf.eval(&[]).is_err());
    }

    #[test]
    fn empty_sequence_counts_zero() {
        let d = dict();
        let s = EventCharSet::expand(&EventPattern::parse("*:click").unwrap(), &d);
        assert_eq!(s.count_in(""), 0);
        assert!(!s.occurs_in(""));
    }
}
