//! Applications over session sequences (§5).
//!
//! "The client event logs and session sequences form the basis of a variety
//! of applications":
//!
//! * [`corpus`]: loading a day's materialized sequences;
//! * [`counting`]: `CountClientEvents` — pattern-expanded event counting as
//!   string operations over the sequences (§5.2), with the SUM (total
//!   events) and COUNT (sessions containing) variants, both as plain
//!   functions and as dataflow UDFs so the paper's Pig script shape runs
//!   end to end;
//! * [`funnel`]: `ClientEventsFunnel` — multi-step flow analysis with
//!   per-stage session counts and abandonment (§5.3);
//! * [`summary`]: BirdBrain-style summary statistics — daily sessions,
//!   drill-down by client and bucketed duration (§5.1);
//! * [`ngram`]: n-gram language models over session symbols with cross
//!   entropy and perplexity, quantifying "temporal signal" (§5.4);
//! * [`collocation`]: activity collocates via pointwise mutual information
//!   and Dunning's log-likelihood ratio (§5.4);
//! * [`alignment`]: §6 "ongoing work" — Needleman–Wunsch alignment over
//!   session strings and query-by-example user similarity;
//! * [`lifeflow`]: §6 — a LifeFlow-style aggregated overview of where
//!   sessions diverge, rendered as a prefix tree;
//! * [`abtest`]: §5.3 — deterministic experiment bucketing and
//!   two-proportion significance testing over per-session metrics.

pub mod abtest;
pub mod alignment;
pub mod collocation;
pub mod corpus;
pub mod counting;
pub mod funnel;
pub mod grammar;
pub mod lifeflow;
pub mod ngram;
pub mod pig;
pub mod summary;

pub use abtest::{analyze as ab_analyze, bucket_of, AbResult, ArmOutcome};
pub use alignment::{align, query_by_example, AlignScoring, Alignment};
pub use collocation::{CollocationMiner, CollocationScore};
pub use corpus::load_sequences;
pub use counting::{CountClientEvents, EventCharSet};
pub use funnel::{ClientEventsFunnel, FunnelReport};
pub use grammar::{induce_from_strings, Grammar};
pub use lifeflow::LifeFlow;
pub use ngram::{InterpolatedModel, NgramModel};
pub use pig::register_analytics;
pub use summary::{DailySummary, DurationBucket};
