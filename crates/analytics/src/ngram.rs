//! n-gram language models over session symbols (§5.4).
//!
//! "Language models define a probability distribution over sequences of
//! symbols … an n-gram language model is equivalent to a (n-1)-order Markov
//! model … Metrics such as cross entropy and perplexity can be used to
//! quantify how well a particular n-gram model 'explains' the data, which
//! gives us a sense of how much 'temporal signal' there is in user
//! behavior."
//!
//! Symbols are dictionary ranks; sequences are padded with begin-of-session
//! markers and a single end-of-session marker. Lidstone (add-λ) smoothing
//! keeps unseen events finite.

use std::collections::{HashMap, HashSet};

use uli_core::session::dictionary::rank_for_char;

/// Begin-of-session marker (outside the dictionary's rank space).
const BOS: u32 = u32::MAX;
/// End-of-session marker.
const EOS: u32 = u32::MAX - 1;

/// A smoothed n-gram model.
#[derive(Debug, Clone)]
pub struct NgramModel {
    n: usize,
    lidstone: f64,
    ngram_counts: HashMap<Vec<u32>, u64>,
    context_counts: HashMap<Vec<u32>, u64>,
    vocab: usize,
}

impl NgramModel {
    /// Trains an order-`n` model on symbol sequences with add-λ smoothing.
    pub fn train<I, S>(n: usize, lidstone: f64, sequences: I) -> NgramModel
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u32]>,
    {
        assert!(n >= 1, "order must be at least 1");
        assert!(lidstone > 0.0, "smoothing must be positive");
        let mut ngram_counts: HashMap<Vec<u32>, u64> = HashMap::new();
        let mut context_counts: HashMap<Vec<u32>, u64> = HashMap::new();
        let mut vocab: HashSet<u32> = HashSet::new();
        for seq in sequences {
            let seq = seq.as_ref();
            vocab.extend(seq.iter().copied());
            let padded = Self::pad(n, seq);
            for window in padded.windows(n) {
                *ngram_counts.entry(window.to_vec()).or_insert(0) += 1;
                *context_counts.entry(window[..n - 1].to_vec()).or_insert(0) += 1;
            }
        }
        // EOS is predictable; BOS never is (it is only context).
        vocab.insert(EOS);
        NgramModel {
            n,
            lidstone,
            ngram_counts,
            context_counts,
            vocab: vocab.len(),
        }
    }

    /// Trains from encoded session-sequence strings, mapping code points
    /// back to ranks.
    pub fn train_on_strings<'a, I>(n: usize, lidstone: f64, sequences: I) -> NgramModel
    where
        I: IntoIterator<Item = &'a str>,
    {
        let symbolized: Vec<Vec<u32>> = sequences
            .into_iter()
            .map(|s| s.chars().filter_map(rank_for_char).collect())
            .collect();
        Self::train(n, lidstone, symbolized)
    }

    fn pad(n: usize, seq: &[u32]) -> Vec<u32> {
        let mut padded = Vec::with_capacity(seq.len() + n);
        padded.extend(std::iter::repeat_n(BOS, n - 1));
        padded.extend_from_slice(seq);
        padded.push(EOS);
        padded
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Vocabulary size used in smoothing.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Smoothed `P(symbol | context)`. Context longer than n−1 is truncated
    /// to its suffix.
    pub fn prob(&self, context: &[u32], symbol: u32) -> f64 {
        let start = context.len().saturating_sub(self.n - 1);
        let ctx = &context[start..];
        let mut key = Vec::with_capacity(self.n);
        // Left-pad a short context with BOS, matching training.
        key.extend(std::iter::repeat_n(BOS, self.n - 1 - ctx.len()));
        key.extend_from_slice(ctx);
        let ctx_count = *self.context_counts.get(&key).unwrap_or(&0);
        key.push(symbol);
        let ngram_count = *self.ngram_counts.get(&key).unwrap_or(&0);
        (ngram_count as f64 + self.lidstone)
            / (ctx_count as f64 + self.lidstone * self.vocab as f64)
    }

    /// Cross entropy (bits per symbol) of the model on held-out sequences,
    /// including the end-of-session prediction.
    pub fn cross_entropy<I, S>(&self, sequences: I) -> f64
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u32]>,
    {
        let mut bits = 0.0;
        let mut symbols = 0u64;
        for seq in sequences {
            let padded = Self::pad(self.n, seq.as_ref());
            for window in padded.windows(self.n) {
                let p = {
                    // Reuse prob() through the padded window directly.
                    let ctx_count = *self.context_counts.get(&window[..self.n - 1]).unwrap_or(&0);
                    let ngram_count = *self.ngram_counts.get(window).unwrap_or(&0);
                    (ngram_count as f64 + self.lidstone)
                        / (ctx_count as f64 + self.lidstone * self.vocab as f64)
                };
                bits -= p.log2();
                symbols += 1;
            }
        }
        if symbols == 0 {
            0.0
        } else {
            bits / symbols as f64
        }
    }

    /// Cross entropy over encoded strings.
    pub fn cross_entropy_strings<'a, I>(&self, sequences: I) -> f64
    where
        I: IntoIterator<Item = &'a str>,
    {
        let symbolized: Vec<Vec<u32>> = sequences
            .into_iter()
            .map(|s| s.chars().filter_map(rank_for_char).collect())
            .collect();
        self.cross_entropy(symbolized)
    }

    /// Perplexity: `2^H`.
    pub fn perplexity<I, S>(&self, sequences: I) -> f64
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u32]>,
    {
        2f64.powf(self.cross_entropy(sequences))
    }
}

/// Jelinek–Mercer interpolated n-gram model.
///
/// Pure add-λ models *degrade* with order on sparse session corpora (most
/// test bigrams are unseen), so the standard remedy from the paper's LM
/// references (Manning & Schütze; Jurafsky & Martin) is linear
/// interpolation: `P_k = w·P̂_k + (1−w)·P_{k−1}`, grounded in a smoothed
/// unigram. Higher orders then never do much worse than lower ones, and the
/// measured cross entropy isolates genuine temporal signal.
#[derive(Debug, Clone)]
pub struct InterpolatedModel {
    /// Models of order 1..=n.
    orders: Vec<NgramModel>,
    /// Weight on the highest applicable order at each level.
    weight: f64,
}

impl InterpolatedModel {
    /// Trains component models of every order up to `n`.
    pub fn train<S>(n: usize, lidstone: f64, weight: f64, sequences: &[S]) -> InterpolatedModel
    where
        S: AsRef<[u32]>,
    {
        assert!(n >= 1);
        assert!((0.0..=1.0).contains(&weight));
        let orders = (1..=n)
            .map(|k| NgramModel::train(k, lidstone, sequences.iter().map(AsRef::as_ref)))
            .collect();
        InterpolatedModel { orders, weight }
    }

    /// Trains from encoded session-sequence strings.
    pub fn train_on_strings<'a, I>(
        n: usize,
        lidstone: f64,
        weight: f64,
        sequences: I,
    ) -> InterpolatedModel
    where
        I: IntoIterator<Item = &'a str>,
    {
        let symbolized: Vec<Vec<u32>> = sequences
            .into_iter()
            .map(|s| s.chars().filter_map(rank_for_char).collect())
            .collect();
        Self::train(n, lidstone, weight, &symbolized)
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.orders.len()
    }

    /// Interpolated `P(symbol | context)`.
    pub fn prob(&self, context: &[u32], symbol: u32) -> f64 {
        let mut p = self.orders[0].prob(&[], symbol);
        for model in &self.orders[1..] {
            let k = model.order();
            let start = context.len().saturating_sub(k - 1);
            let pk = model.prob(&context[start..], symbol);
            p = self.weight * pk + (1.0 - self.weight) * p;
        }
        p
    }

    /// Cross entropy in bits per symbol, including end-of-session.
    pub fn cross_entropy<S>(&self, sequences: &[S]) -> f64
    where
        S: AsRef<[u32]>,
    {
        let n = self.order();
        let mut bits = 0.0;
        let mut symbols = 0u64;
        for seq in sequences {
            let seq = seq.as_ref();
            for i in 0..=seq.len() {
                let sym = if i == seq.len() { EOS } else { seq[i] };
                let start = i.saturating_sub(n - 1).min(i);
                let p = self.prob(&seq[start..i], sym);
                bits -= p.log2();
                symbols += 1;
            }
        }
        if symbols == 0 {
            0.0
        } else {
            bits / symbols as f64
        }
    }

    /// Cross entropy over encoded strings.
    pub fn cross_entropy_strings<'a, I>(&self, sequences: I) -> f64
    where
        I: IntoIterator<Item = &'a str>,
    {
        let symbolized: Vec<Vec<u32>> = sequences
            .into_iter()
            .map(|s| s.chars().filter_map(rank_for_char).collect())
            .collect();
        self.cross_entropy(&symbolized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A perfectly alternating corpus: 0 1 0 1 …
    fn alternating(len: usize, copies: usize) -> Vec<Vec<u32>> {
        let seq: Vec<u32> = (0..len).map(|i| (i % 2) as u32).collect();
        vec![seq; copies]
    }

    #[test]
    fn bigram_learns_deterministic_structure() {
        let corpus = alternating(40, 10);
        let bi = NgramModel::train(2, 0.01, &corpus);
        // After 0 comes 1 almost surely.
        assert!(bi.prob(&[0], 1) > 0.9);
        assert!(bi.prob(&[0], 0) < 0.05);
    }

    #[test]
    fn higher_order_explains_sequential_data_better() {
        let corpus = alternating(40, 20);
        let uni = NgramModel::train(1, 0.01, &corpus);
        let bi = NgramModel::train(2, 0.01, &corpus);
        let h1 = uni.cross_entropy(&corpus);
        let h2 = bi.cross_entropy(&corpus);
        assert!(
            h2 < h1 - 0.5,
            "bigram must capture the alternation: H1={h1:.3} H2={h2:.3}"
        );
    }

    #[test]
    fn probabilities_sum_to_one_over_vocab() {
        let corpus = vec![vec![0u32, 1, 2, 0, 1], vec![2u32, 2, 1]];
        let m = NgramModel::train(2, 0.5, &corpus);
        // Sum over observed vocab + EOS after context [0].
        let total: f64 = [0u32, 1, 2, EOS].iter().map(|s| m.prob(&[0], *s)).sum();
        assert!((total - 1.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn unseen_symbols_get_smoothed_mass() {
        let m = NgramModel::train(2, 0.1, &[vec![0u32, 1]]);
        let p = m.prob(&[0], 99);
        assert!(p > 0.0 && p < 0.2);
    }

    #[test]
    fn short_context_is_bos_padded() {
        let m = NgramModel::train(3, 0.1, &[vec![5u32, 6, 7]]);
        // First symbol's probability uses (BOS, BOS) context.
        let p = m.prob(&[], 5);
        assert!(p > 0.5, "5 always starts the sequence: {p}");
    }

    #[test]
    fn empty_corpus_and_empty_test() {
        let m = NgramModel::train(2, 0.1, Vec::<Vec<u32>>::new());
        assert_eq!(m.cross_entropy(Vec::<Vec<u32>>::new()), 0.0);
        // An empty-corpus model has a one-symbol vocabulary (EOS), so the
        // empty sequence is predicted with certainty — H = 0, but finite.
        assert_eq!(m.vocab_size(), 1);
        let h = m.cross_entropy(&[Vec::<u32>::new()]);
        assert!(h.is_finite() && h >= 0.0);
        // With any real symbol in the vocabulary, EOS is uncertain.
        let m = NgramModel::train(2, 0.1, &[vec![1u32]]);
        assert!(m.cross_entropy(&[Vec::<u32>::new()]) > 0.0);
    }

    #[test]
    fn string_interface_round_trips() {
        use uli_core::session::dictionary::char_for_rank;
        let s: String = [0u32, 1, 0, 1, 0, 1]
            .iter()
            .map(|r| char_for_rank(*r).unwrap())
            .collect();
        let m = NgramModel::train_on_strings(2, 0.01, [s.as_str(), s.as_str()]);
        assert!(m.prob(&[0], 1) > 0.8);
        let h = m.cross_entropy_strings([s.as_str()]);
        assert!(h < 1.0);
    }

    #[test]
    fn interpolated_never_much_worse_and_captures_structure() {
        let corpus = alternating(40, 20);
        let uni = InterpolatedModel::train(1, 0.05, 0.7, &corpus);
        let bi = InterpolatedModel::train(2, 0.05, 0.7, &corpus);
        let h1 = uni.cross_entropy(&corpus);
        let h2 = bi.cross_entropy(&corpus);
        assert!(h2 < h1, "bigram interpolation helps: {h1:.3} vs {h2:.3}");
        // On sparse data, the interpolated trigram stays close to bigram
        // instead of exploding the way pure Lidstone does.
        let sparse: Vec<Vec<u32>> = (0..5u32).map(|i| vec![i, i + 1, i + 2]).collect();
        let b = InterpolatedModel::train(2, 0.05, 0.7, &sparse);
        let t = InterpolatedModel::train(3, 0.05, 0.7, &sparse);
        let held_out = vec![vec![9u32, 8, 7]];
        let hb = b.cross_entropy(&held_out);
        let ht = t.cross_entropy(&held_out);
        assert!(ht < hb + 1.0, "no blow-up: {hb:.3} vs {ht:.3}");
    }

    #[test]
    fn interpolated_prob_is_a_distribution() {
        let corpus = vec![vec![0u32, 1, 2, 0, 1], vec![2u32, 2, 1]];
        let m = InterpolatedModel::train(2, 0.5, 0.6, &corpus);
        let total: f64 = [0u32, 1, 2, EOS].iter().map(|s| m.prob(&[0], *s)).sum();
        assert!((total - 1.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn interpolated_string_interface() {
        use uli_core::session::dictionary::char_for_rank;
        let s: String = [0u32, 1, 0, 1, 0, 1]
            .iter()
            .map(|r| char_for_rank(*r).unwrap())
            .collect();
        let m = InterpolatedModel::train_on_strings(2, 0.05, 0.8, [s.as_str()]);
        assert_eq!(m.order(), 2);
        assert!(m.cross_entropy_strings([s.as_str()]) < 2.0);
    }

    #[test]
    fn perplexity_of_uniform_data_near_vocab_size() {
        // Sequences cycling through 8 symbols with no structure for a
        // unigram model: perplexity ≈ 9 (8 symbols + EOS share).
        let seq: Vec<u32> = (0..800).map(|i| (i % 8) as u32).collect();
        let uni = NgramModel::train(1, 0.1, std::slice::from_ref(&seq));
        let ppl = uni.perplexity(&[seq]);
        assert!(ppl > 6.0 && ppl < 10.0, "got {ppl}");
    }
}
