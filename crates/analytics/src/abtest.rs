//! A/B experiment analysis (§5.3).
//!
//! "Companies typically run A/B tests to optimize the flow, for example,
//! varying the page layout of a particular step or number of overall steps
//! to assess the impact on end-to-end metrics." This module provides the
//! backend half: deterministic bucket assignment by user id and a
//! two-proportion z-test over per-bucket funnel conversion (or any other
//! binary per-session metric).

use uli_core::session::SessionSequence;

/// Deterministic experiment assignment: hashes `(experiment, user)` into
/// one of `buckets` arms, so every log record of a user lands in the same
/// arm without any assignment table.
pub fn bucket_of(experiment: &str, user_id: i64, buckets: u32) -> u32 {
    assert!(buckets > 0);
    let mut h = 0xcbf29ce484222325u64;
    for &b in experiment.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    for &b in user_id.to_le_bytes().iter() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h >> 33) as u32 % buckets
}

/// One arm's aggregated outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArmOutcome {
    /// Sessions in the arm.
    pub sessions: u64,
    /// Sessions for which the metric was true (e.g. completed the funnel).
    pub successes: u64,
}

impl ArmOutcome {
    /// Success rate; 0 for an empty arm.
    pub fn rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.successes as f64 / self.sessions as f64
        }
    }
}

/// Result of comparing two arms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbResult {
    /// Control.
    pub a: ArmOutcome,
    /// Treatment.
    pub b: ArmOutcome,
    /// Absolute lift of B over A.
    pub lift: f64,
    /// Two-proportion z statistic (B minus A).
    pub z: f64,
}

impl AbResult {
    /// True when |z| exceeds the 95% two-sided threshold.
    pub fn significant_95(&self) -> bool {
        self.z.abs() > 1.96
    }
}

/// Runs the analysis: splits sessions into two arms by
/// [`bucket_of`]`(experiment, user, 2)` and compares `metric` rates.
pub fn analyze<'a, I, F>(experiment: &str, sessions: I, metric: F) -> AbResult
where
    I: IntoIterator<Item = &'a SessionSequence>,
    F: Fn(&SessionSequence) -> bool,
{
    let mut arms = [ArmOutcome::default(), ArmOutcome::default()];
    for s in sessions {
        let arm = bucket_of(experiment, s.user_id, 2) as usize;
        arms[arm].sessions += 1;
        if metric(s) {
            arms[arm].successes += 1;
        }
    }
    compare(arms[0], arms[1])
}

/// Two-proportion z-test between two arms.
pub fn compare(a: ArmOutcome, b: ArmOutcome) -> AbResult {
    let lift = b.rate() - a.rate();
    let n1 = a.sessions as f64;
    let n2 = b.sessions as f64;
    let z = if n1 > 0.0 && n2 > 0.0 {
        let pooled = (a.successes + b.successes) as f64 / (n1 + n2);
        let se = (pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2)).sqrt();
        if se > 0.0 {
            lift / se
        } else {
            0.0
        }
    } else {
        0.0
    };
    AbResult { a, b, lift, z }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_balanced() {
        let mut counts = [0u32; 2];
        for user in 1..=10_000i64 {
            let arm = bucket_of("signup_v2", user, 2);
            assert_eq!(arm, bucket_of("signup_v2", user, 2));
            counts[arm as usize] += 1;
        }
        let ratio = counts[0] as f64 / 10_000.0;
        assert!((0.45..0.55).contains(&ratio), "balance: {ratio}");
    }

    #[test]
    fn different_experiments_assign_independently() {
        let same = (1..=2_000i64)
            .filter(|u| bucket_of("exp_a", *u, 2) == bucket_of("exp_b", *u, 2))
            .count();
        let frac = same as f64 / 2_000.0;
        assert!((0.4..0.6).contains(&frac), "independence: {frac}");
    }

    #[test]
    fn strong_effects_are_significant() {
        let a = ArmOutcome {
            sessions: 2_000,
            successes: 400, // 20%
        };
        let b = ArmOutcome {
            sessions: 2_000,
            successes: 560, // 28%
        };
        let r = compare(a, b);
        assert!((r.lift - 0.08).abs() < 1e-9);
        assert!(r.z > 1.96);
        assert!(r.significant_95());
    }

    #[test]
    fn null_effects_are_not_significant() {
        let a = ArmOutcome {
            sessions: 1_000,
            successes: 200,
        };
        let b = ArmOutcome {
            sessions: 1_000,
            successes: 205,
        };
        assert!(!compare(a, b).significant_95());
    }

    #[test]
    fn degenerate_arms_do_not_divide_by_zero() {
        let empty = ArmOutcome::default();
        let some = ArmOutcome {
            sessions: 10,
            successes: 5,
        };
        assert_eq!(compare(empty, some).z, 0.0);
        let all = ArmOutcome {
            sessions: 10,
            successes: 10,
        };
        // Pooled p = 1 → se = 0 → z defined as 0.
        assert_eq!(compare(all, all).z, 0.0);
        assert_eq!(empty.rate(), 0.0);
    }

    #[test]
    fn analyze_splits_by_user() {
        let mk = |user: i64| SessionSequence {
            user_id: user,
            session_id: format!("s-{user}"),
            ip: "1.1.1.1".into(),
            sequence: "\u{1}".into(),
            duration_secs: 1,
        };
        let sessions: Vec<SessionSequence> = (1..=500).map(mk).collect();
        let r = analyze("exp", sessions.iter(), |s| s.user_id % 2 == 0);
        assert_eq!(r.a.sessions + r.b.sessions, 500);
        assert!(r.a.sessions > 150 && r.b.sessions > 150);
        // The metric is independent of assignment: no significant lift.
        assert!(!r.significant_95(), "z = {}", r.z);
    }
}
