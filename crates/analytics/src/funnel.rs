//! `ClientEventsFunnel`: funnel analytics over session sequences (§5.3).
//!
//! "`define Funnel ClientEventsFunnel('$EVENT1' '$EVENT2', ...)` … the
//! output might be something like `(0, 490123) (1, 297071) …` which tells
//! us how many of the examined sessions entered the funnel, completed the
//! first stage, etc. This particular UDF translates the funnel into a
//! regular expression match over the session sequence string."

use std::sync::Arc;

use uli_core::event::EventName;
use uli_core::session::EventDictionary;
use uli_dataflow::{DataflowError, DataflowResult, ScalarUdf, Value};

/// Per-stage results of a funnel evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunnelReport {
    /// Stage names.
    pub stages: Vec<EventName>,
    /// Sessions (or users) reaching each stage.
    pub reached: Vec<u64>,
}

impl FunnelReport {
    /// The paper's output shape: `(stage_index, count)` rows.
    pub fn rows(&self) -> Vec<(usize, u64)> {
        self.reached.iter().copied().enumerate().collect()
    }

    /// Per-stage abandonment: fraction of stage-i reachers who never reach
    /// stage i+1.
    pub fn abandonment(&self) -> Vec<f64> {
        self.reached
            .windows(2)
            .map(|w| {
                if w[0] == 0 {
                    0.0
                } else {
                    1.0 - w[1] as f64 / w[0] as f64
                }
            })
            .collect()
    }

    /// Overall conversion: fraction of entrants completing the last stage.
    pub fn conversion(&self) -> f64 {
        match (self.reached.first(), self.reached.last()) {
            (Some(&first), Some(&last)) if first > 0 => last as f64 / first as f64,
            _ => 0.0,
        }
    }
}

/// The funnel UDF: maps a session sequence to the deepest stage reached
/// (as an `Int`: 0 = never entered, k = completed stage k).
#[derive(Debug, Clone)]
pub struct ClientEventsFunnel {
    stages: Vec<EventName>,
    stage_chars: Vec<char>,
}

impl ClientEventsFunnel {
    /// Compiles the funnel against a dictionary. Stages missing from the
    /// dictionary make the funnel unmatchable from that stage on, mirroring
    /// a regex that cannot match; they map to a sentinel outside the
    /// dictionary range.
    pub fn new(stages: Vec<EventName>, dict: &EventDictionary) -> Arc<ClientEventsFunnel> {
        assert!(stages.len() >= 2, "a funnel needs at least two stages");
        let stage_chars = stages
            .iter()
            .map(|s| dict.encode_name(s).unwrap_or('\u{10FFFF}'))
            .collect();
        Arc::new(ClientEventsFunnel {
            stages,
            stage_chars,
        })
    }

    /// The stage events.
    pub fn stages(&self) -> &[EventName] {
        &self.stages
    }

    /// Deepest stage index completed within `sequence` (0 = entered none).
    /// The match is an ordered subsequence scan — the string-level
    /// equivalent of the paper's `e1 .* e2 .* e3` regular expression.
    pub fn depth(&self, sequence: &str) -> usize {
        let mut next = 0;
        for c in sequence.chars() {
            if next < self.stage_chars.len() && c == self.stage_chars[next] {
                next += 1;
            }
        }
        next
    }

    /// Evaluates the funnel over many sessions, producing the paper-shaped
    /// report: `reached[i]` = sessions that completed stage i.
    pub fn evaluate<'a, I>(&self, sequences: I) -> FunnelReport
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut reached = vec![0u64; self.stages.len()];
        for seq in sequences {
            let d = self.depth(seq);
            for slot in reached.iter_mut().take(d) {
                *slot += 1;
            }
        }
        FunnelReport {
            stages: self.stages.clone(),
            reached,
        }
    }
}

impl ScalarUdf for ClientEventsFunnel {
    fn name(&self) -> &'static str {
        "ClientEventsFunnel"
    }

    fn eval(&self, args: &[Value]) -> DataflowResult<Value> {
        let seq = args
            .first()
            .and_then(Value::as_str)
            .ok_or(DataflowError::TypeError {
                context: "ClientEventsFunnel(sequence)",
            })?;
        Ok(Value::Int(self.depth(seq) as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    fn setup() -> (EventDictionary, Vec<EventName>) {
        let stages = vec![
            n("web:signup:signup:landing:form:impression"),
            n("web:signup:signup:landing:form:submit"),
            n("web:signup:signup:interests:picker:select"),
        ];
        let mut counts: Vec<(EventName, u64)> =
            stages.iter().cloned().zip([300u64, 200, 100]).collect();
        counts.push((n("web:home:home:stream:tweet:impression"), 10_000));
        (EventDictionary::from_counts(counts), stages)
    }

    #[test]
    fn depth_is_an_ordered_subsequence_match() {
        let (dict, stages) = setup();
        let funnel = ClientEventsFunnel::new(stages.clone(), &dict);
        let seq = |names: &[&EventName]| dict.encode_sequence(names.iter().copied()).unwrap();

        let noise = n("web:home:home:stream:tweet:impression");
        // Full completion with noise interleaved.
        let full = seq(&[&noise, &stages[0], &noise, &stages[1], &stages[2]]);
        assert_eq!(funnel.depth(&full), 3);
        // Stops at stage 1.
        let partial = seq(&[&stages[0], &noise]);
        assert_eq!(funnel.depth(&partial), 1);
        // Out of order does not count: submit before impression.
        let disordered = seq(&[&stages[1], &stages[2]]);
        assert_eq!(funnel.depth(&disordered), 0);
        // Stage 2 without stage 1 in between: stuck after stage 0.
        let skipped = seq(&[&stages[0], &stages[2]]);
        assert_eq!(funnel.depth(&skipped), 1);
    }

    #[test]
    fn evaluate_produces_paper_shaped_rows() {
        let (dict, stages) = setup();
        let funnel = ClientEventsFunnel::new(stages.clone(), &dict);
        let seq = |names: &[&EventName]| dict.encode_sequence(names.iter().copied()).unwrap();
        let sessions = [
            seq(&[&stages[0], &stages[1], &stages[2]]), // completes all
            seq(&[&stages[0], &stages[1]]),             // two stages
            seq(&[&stages[0]]),                         // one
            seq(&[&n("web:home:home:stream:tweet:impression")]), // none
        ];
        let report = funnel.evaluate(sessions.iter().map(String::as_str));
        assert_eq!(report.rows(), vec![(0, 3), (1, 2), (2, 1)]);
        let ab = report.abandonment();
        assert!((ab[0] - (1.0 - 2.0 / 3.0)).abs() < 1e-9);
        assert!((report.conversion() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_stage_blocks_progress() {
        let (dict, mut stages) = setup();
        stages.push(n("web:never:seen:in:dictionary:x"));
        let funnel = ClientEventsFunnel::new(stages.clone(), &dict);
        let all_three = dict
            .encode_sequence([&stages[0], &stages[1], &stages[2]])
            .unwrap();
        assert_eq!(funnel.depth(&all_three), 3, "cannot pass the unknown stage");
    }

    #[test]
    fn udf_interface() {
        let (dict, stages) = setup();
        let funnel = ClientEventsFunnel::new(stages.clone(), &dict);
        let seq = dict.encode_sequence([&stages[0]]).unwrap();
        assert_eq!(funnel.eval(&[Value::Str(seq)]).unwrap(), Value::Int(1));
        assert!(funnel.eval(&[Value::Null]).is_err());
    }

    #[test]
    fn empty_corpus_reports_zeroes() {
        let (dict, stages) = setup();
        let funnel = ClientEventsFunnel::new(stages, &dict);
        let report = funnel.evaluate(std::iter::empty());
        assert_eq!(report.reached, vec![0, 0, 0]);
        assert_eq!(report.conversion(), 0.0);
        assert_eq!(report.abandonment(), vec![0.0, 0.0]);
    }
}
