//! Loading materialized session sequences.

use uli_core::session::{sequences_dir, SessionSequence};
use uli_thrift::ThriftRecord;
use uli_warehouse::{Warehouse, WarehouseResult};

/// Reads every session sequence materialized for `day_index`.
pub fn load_sequences(
    warehouse: &Warehouse,
    day_index: u64,
) -> WarehouseResult<Vec<SessionSequence>> {
    let dir = sequences_dir(day_index);
    let mut out = Vec::new();
    for file in warehouse.list_files_recursive(&dir)? {
        let mut reader = warehouse.open(&file)?;
        while let Some(record) = reader.next_record()? {
            if let Ok(seq) = SessionSequence::from_bytes(record) {
                out.push(seq);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::session::Materializer;

    #[test]
    fn loads_what_the_materializer_wrote() {
        let wh = Warehouse::new();
        // Build a tiny day directly via the materializer fixtures.
        let events = test_support::write_tiny_day(&wh, 0);
        let report = Materializer::new(wh.clone()).run_day(0).unwrap();
        assert!(events > 0);
        let seqs = load_sequences(&wh, 0).unwrap();
        assert_eq!(seqs.len() as u64, report.sessions);
        assert!(seqs.iter().all(|s| !s.sequence.is_empty()));
    }

    #[test]
    fn missing_day_errors() {
        let wh = Warehouse::new();
        assert!(load_sequences(&wh, 7).is_err());
    }
}

/// Shared fixtures for this crate's tests.
#[cfg(test)]
pub(crate) mod test_support {
    use uli_core::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
    use uli_core::event::{EventInitiator, EventName};
    use uli_core::time::Timestamp;
    use uli_thrift::ThriftRecord;
    use uli_warehouse::{HourlyPartition, Warehouse};

    /// Writes two hours of a simple repetitive day; returns event count.
    pub fn write_tiny_day(wh: &Warehouse, day: u64) -> u64 {
        let mut total = 0;
        for hour in day * 24..day * 24 + 2 {
            let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
            let mut w = wh.create(&dir.child("part-00000").unwrap()).unwrap();
            for u in 0..8i64 {
                for i in 0..10usize {
                    let action = match i % 4 {
                        0 | 1 => "impression",
                        2 => "click",
                        _ => "profile_click",
                    };
                    let ev = ClientEvent::new(
                        EventInitiator::CLIENT_USER,
                        EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap(),
                        u + 1,
                        format!("s-{u}"),
                        "10.0.0.1",
                        Timestamp::from_hour_index(hour).plus(i as i64 * 1000),
                    );
                    w.append_record(&ev.to_bytes());
                    total += 1;
                }
            }
            w.finish().unwrap();
        }
        total
    }
}
