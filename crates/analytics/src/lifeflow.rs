//! LifeFlow-style session overview (§6, ongoing work).
//!
//! "We are also using advanced visualization techniques \[LifeFlow:
//! Visualizing an overview of event sequences] to provide data scientists a
//! visual interface for exploring sessions." LifeFlow aggregates many event
//! sequences into a tree of shared prefixes whose branches show where
//! behaviour diverges. This module builds that tree from session sequences
//! and renders it as text — the terminal-native "overview of event
//! sequences".

use std::collections::BTreeMap;

use uli_core::session::dictionary::rank_for_char;
use uli_core::session::EventDictionary;

/// A node of the prefix tree: how many sessions passed through, and where
/// they went next.
#[derive(Debug, Clone, Default)]
pub struct FlowNode {
    /// Sessions whose prefix reaches this node.
    pub sessions: u64,
    /// Sessions that *end* exactly here.
    pub terminal: u64,
    /// Next events, keyed by dictionary rank.
    pub children: BTreeMap<u32, FlowNode>,
}

/// The aggregated overview tree.
#[derive(Debug, Clone, Default)]
pub struct LifeFlow {
    root: FlowNode,
    depth_limit: usize,
}

impl LifeFlow {
    /// An empty overview truncating sessions at `depth_limit` events
    /// (LifeFlow's horizontal zoom; keeps trees readable).
    pub fn new(depth_limit: usize) -> LifeFlow {
        assert!(depth_limit > 0);
        LifeFlow {
            root: FlowNode::default(),
            depth_limit,
        }
    }

    /// Adds one session's symbol sequence.
    pub fn add_sequence(&mut self, symbols: &[u32]) {
        self.root.sessions += 1;
        let mut node = &mut self.root;
        for (i, sym) in symbols.iter().take(self.depth_limit).enumerate() {
            node = node.children.entry(*sym).or_default();
            node.sessions += 1;
            let truncated = i + 1 == self.depth_limit && symbols.len() > self.depth_limit;
            if i + 1 == symbols.len() || truncated {
                node.terminal += 1;
            }
        }
        if symbols.is_empty() {
            self.root.terminal += 1;
        }
    }

    /// Adds an encoded session-sequence string.
    pub fn add_string(&mut self, sequence: &str) {
        let symbols: Vec<u32> = sequence.chars().filter_map(rank_for_char).collect();
        self.add_sequence(&symbols);
    }

    /// Total sessions aggregated.
    pub fn total_sessions(&self) -> u64 {
        self.root.sessions
    }

    /// The root node.
    pub fn root(&self) -> &FlowNode {
        &self.root
    }

    /// Renders the tree: branches sorted by traffic, pruned below
    /// `min_fraction` of total sessions, event names via the dictionary.
    pub fn render(&self, dict: &EventDictionary, min_fraction: f64) -> String {
        let mut out = format!("{} sessions\n", self.root.sessions);
        let threshold = (self.root.sessions as f64 * min_fraction).ceil() as u64;
        render_children(&self.root, dict, threshold.max(1), "", &mut out);
        out
    }
}

fn render_children(
    node: &FlowNode,
    dict: &EventDictionary,
    threshold: u64,
    indent: &str,
    out: &mut String,
) {
    // Branches by descending traffic.
    let mut kids: Vec<(&u32, &FlowNode)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.sessions.cmp(&a.1.sessions).then_with(|| a.0.cmp(b.0)));
    let mut hidden = 0u64;
    for (rank, child) in kids {
        if child.sessions < threshold {
            hidden += child.sessions;
            continue;
        }
        let name = dict
            .name_of(*rank)
            .map(|n| n.as_str().to_string())
            .unwrap_or_else(|| format!("rank{rank}"));
        let terminal = if child.terminal > 0 {
            format!(" (ends: {})", child.terminal)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{indent}├─ {name} [{}]{terminal}\n",
            child.sessions
        ));
        render_children(child, dict, threshold, &format!("{indent}│  "), out);
    }
    if hidden > 0 {
        out.push_str(&format!("{indent}└─ … {hidden} sessions below threshold\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::event::EventName;

    fn dict() -> EventDictionary {
        EventDictionary::from_counts(vec![
            (EventName::parse("web:a:a:a:a:impression").unwrap(), 100),
            (EventName::parse("web:a:a:a:a:click").unwrap(), 50),
            (EventName::parse("web:a:a:a:a:follow").unwrap(), 10),
        ])
    }

    #[test]
    fn tree_counts_prefix_traffic() {
        let mut lf = LifeFlow::new(10);
        lf.add_sequence(&[0, 1]); // impression → click
        lf.add_sequence(&[0, 1]);
        lf.add_sequence(&[0, 2]); // impression → follow
        lf.add_sequence(&[1]); // click only
        assert_eq!(lf.total_sessions(), 4);
        let imp = lf.root().children.get(&0).unwrap();
        assert_eq!(imp.sessions, 3);
        assert_eq!(imp.children.get(&1).unwrap().sessions, 2);
        assert_eq!(imp.children.get(&1).unwrap().terminal, 2);
        assert_eq!(lf.root().children.get(&1).unwrap().sessions, 1);
    }

    #[test]
    fn depth_limit_truncates_and_marks_terminal() {
        let mut lf = LifeFlow::new(2);
        lf.add_sequence(&[0, 1, 2, 2, 2]);
        let imp = lf.root().children.get(&0).unwrap();
        let click = imp.children.get(&1).unwrap();
        assert_eq!(click.terminal, 1, "truncation counts as an ending");
        assert!(click.children.is_empty());
    }

    #[test]
    fn empty_sessions_end_at_root() {
        let mut lf = LifeFlow::new(4);
        lf.add_sequence(&[]);
        assert_eq!(lf.root().terminal, 1);
        assert_eq!(lf.total_sessions(), 1);
    }

    #[test]
    fn render_shows_names_and_prunes() {
        let d = dict();
        let mut lf = LifeFlow::new(5);
        for _ in 0..20 {
            lf.add_string(
                &d.encode_sequence([
                    &EventName::parse("web:a:a:a:a:impression").unwrap(),
                    &EventName::parse("web:a:a:a:a:click").unwrap(),
                ])
                .unwrap(),
            );
        }
        lf.add_string(
            &d.encode_sequence([&EventName::parse("web:a:a:a:a:follow").unwrap()])
                .unwrap(),
        );
        let text = lf.render(&d, 0.2);
        assert!(text.contains("21 sessions"));
        assert!(text.contains("web:a:a:a:a:impression [20]"));
        assert!(text.contains("web:a:a:a:a:click [20]"));
        assert!(
            text.contains("below threshold"),
            "rare follow branch pruned"
        );
    }

    #[test]
    fn string_interface_round_trips() {
        let d = dict();
        let seq = d
            .encode_sequence([&EventName::parse("web:a:a:a:a:impression").unwrap()])
            .unwrap();
        let mut lf = LifeFlow::new(3);
        lf.add_string(&seq);
        assert_eq!(lf.root().children.len(), 1);
    }
}
