//! Pig integration: registers the paper's loaders and UDFs on a
//! [`ScriptRunner`], so its scripts run as printed.
//!
//! After [`register_analytics`], a runner understands:
//!
//! * `SessionSequencesLoader()` — the §5.2 loader with the fixed
//!   five-column schema;
//! * `ClientEventLoader()` — raw client event logs;
//! * `CountClientEvents('$EVENTS')` — pattern expanded against the
//!   dictionary (§5.2);
//! * `ClientEventsFunnel('$EVENT1', '$EVENT2', …)` — funnel depth (§5.3).

use std::sync::Arc;

use uli_core::client_event::{ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::event::{EventName, EventPattern};
use uli_core::session::{EventDictionary, SessionSequenceLoader, SESSION_SEQUENCE_SCHEMA};
use uli_dataflow::{Loader, ScalarUdf, ScriptRunner};

use crate::counting::CountClientEvents;
use crate::funnel::ClientEventsFunnel;

/// Registers the analytics loaders and UDFs. The dictionary parameterizes
/// the sequence-level UDFs, exactly like production jobs consult the daily
/// dictionary build.
pub fn register_analytics(runner: &mut ScriptRunner, dict: EventDictionary) {
    runner.register_loader("SessionSequencesLoader", |_args| {
        Ok((
            Arc::new(SessionSequenceLoader) as Arc<dyn Loader>,
            SESSION_SEQUENCE_SCHEMA
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ))
    });
    runner.register_loader("ClientEventLoader", |_args| {
        Ok((
            Arc::new(ClientEventLoader) as Arc<dyn Loader>,
            CLIENT_EVENT_SCHEMA.iter().map(|s| s.to_string()).collect(),
        ))
    });

    let d = dict.clone();
    runner.register_udf("CountClientEvents", move |args| {
        let pattern_text = args
            .first()
            .ok_or("CountClientEvents needs an event pattern argument")?;
        let pattern = EventPattern::parse(pattern_text)
            .map_err(|e| format!("bad pattern {pattern_text:?}: {e}"))?;
        Ok(CountClientEvents::new(&pattern, &d) as Arc<dyn ScalarUdf>)
    });

    runner.register_udf("ClientEventsFunnel", move |args| {
        if args.len() < 2 {
            return Err("ClientEventsFunnel needs at least two stage events".into());
        }
        let stages: Result<Vec<EventName>, String> = args
            .iter()
            .map(|a| EventName::parse(a).map_err(|e| format!("bad stage {a:?}: {e}")))
            .collect();
        Ok(ClientEventsFunnel::new(stages?, &dict) as Arc<dyn ScalarUdf>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::session::{sequences_dir, Materializer};
    use uli_dataflow::{Engine, Value};
    use uli_warehouse::Warehouse;

    fn prepared() -> (Warehouse, EventDictionary) {
        let wh = Warehouse::new();
        crate::corpus::test_support::write_tiny_day(&wh, 0);
        let m = Materializer::new(wh.clone());
        m.run_day(0).unwrap();
        let dict = m.load_dictionary(0).unwrap();
        (wh, dict)
    }

    /// The paper's §5.2 event-counting script, almost verbatim.
    #[test]
    fn papers_counting_script_runs_verbatim() {
        let (wh, dict) = prepared();
        let mut runner = ScriptRunner::new(Engine::new(wh));
        register_analytics(&mut runner, dict.clone());
        runner.set_param("EVENTS", "*:click");
        runner.set_param(
            "DATE",
            sequences_dir(0)
                .as_str()
                .trim_start_matches("/session_sequences/"),
        );

        let out = runner
            .run(
                "define CountClientEvents CountClientEvents('$EVENTS');\n\
                 raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();\n\
                 generated = foreach raw generate CountClientEvents(sequence) as n;\n\
                 grouped = group generated all;\n\
                 count = foreach grouped generate SUM(n);\n\
                 dump count;",
            )
            .unwrap();
        // Ground truth from the same dictionary the UDF consulted: the
        // histogram counts of every event whose action is exactly "click".
        let truth: u64 = dict
            .iter()
            .filter(|(_, n, _)| n.action() == "click")
            .map(|(_, _, c)| c)
            .sum();
        assert!(truth > 0);
        assert_eq!(out[0].result.rows[0][0], Value::Int(truth as i64));
    }

    /// The §5.3 funnel script shape.
    #[test]
    fn funnel_script_produces_stage_depths() {
        let (wh, dict) = prepared();
        let mut runner = ScriptRunner::new(Engine::new(wh));
        register_analytics(&mut runner, dict);
        let out = runner
            .run(
                "define Funnel ClientEventsFunnel(\
                     'web:home:home:stream:tweet:impression', \
                     'web:home:home:stream:tweet:click');\n\
                 raw = load '/session_sequences/2012/08/01' using SessionSequencesLoader();\n\
                 depths = foreach raw generate Funnel(sequence) as depth;\n\
                 per_depth = group depths by depth;\n\
                 counts = foreach per_depth generate depth, COUNT(*) as sessions;\n\
                 ordered = order counts by depth;\n\
                 dump ordered;",
            )
            .unwrap();
        let rows = &out[0].result.rows;
        // Every tiny-day session starts impression, impression, click… so
        // all 16 sessions complete both stages: a single depth-2 row.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(2));
        assert_eq!(rows[0][1], Value::Int(16));
    }

    #[test]
    fn raw_client_event_loader_registers() {
        let (wh, dict) = prepared();
        let mut runner = ScriptRunner::new(Engine::new(wh));
        register_analytics(&mut runner, dict);
        let out = runner
            .run(
                "raw = load '/logs/client_events/2012/08/01' using ClientEventLoader();\n\
                 users = foreach raw generate user_id;\n\
                 u = distinct users;\n\
                 g = group u all;\n\
                 c = foreach g generate COUNT(*);\n\
                 dump c;",
            )
            .unwrap();
        assert_eq!(out[0].result.rows[0][0], Value::Int(8));
    }

    #[test]
    fn bad_pattern_surfaces_as_error() {
        let (wh, dict) = prepared();
        let mut runner = ScriptRunner::new(Engine::new(wh));
        register_analytics(&mut runner, dict);
        let err = runner
            .run("define C CountClientEvents('BAD PATTERN');")
            .unwrap_err();
        assert!(err.to_string().contains("bad pattern"));
    }
}
