//! Grammar induction over session sequences (§6, ongoing work).
//!
//! "More advanced (but speculative) techniques include applying automatic
//! grammar induction techniques to learn hierarchical decompositions of
//! user activity. For example, we might learn that many sessions break down
//! into smaller units that exhibit a great deal of cohesion (each with rich
//! internal structure), in the same way that a simple English sentence
//! decomposes into a noun phrase and a verb phrase."
//!
//! This module implements **Re-Pair** (Larsson & Moffat), a classic
//! grammar-based compression algorithm: repeatedly replace the most
//! frequent adjacent symbol pair with a fresh nonterminal until no pair
//! repeats. The result is a straight-line grammar whose rules are exactly
//! the cohesive sub-units the paper hopes to find — an
//! impression→click→expand motif becomes one rule, sessions become short
//! sequences of motifs.

use std::collections::HashMap;

use uli_core::session::dictionary::rank_for_char;
use uli_core::session::EventDictionary;

/// Terminals are dictionary ranks; nonterminals start here.
pub const NONTERMINAL_BASE: u32 = 1 << 24;

/// A symbol in the grammar: terminal (dictionary rank) or nonterminal.
pub type Symbol = u32;

/// True if `s` names a rule rather than an event.
pub fn is_nonterminal(s: Symbol) -> bool {
    s >= NONTERMINAL_BASE
}

/// A learned straight-line grammar.
#[derive(Debug, Clone, Default)]
pub struct Grammar {
    /// Rule bodies; rule `i` is the nonterminal `NONTERMINAL_BASE + i`,
    /// and every body is exactly one pair.
    rules: Vec<(Symbol, Symbol)>,
    /// Each input sequence, rewritten in terms of the grammar.
    compressed: Vec<Vec<Symbol>>,
    /// Original symbol count, for the compression ratio.
    input_symbols: u64,
    /// How often each rule fires across the corpus (expansion counts).
    rule_uses: Vec<u64>,
}

impl Grammar {
    /// Induces a grammar with Re-Pair: while some adjacent pair occurs at
    /// least `min_support` times across the corpus, replace the most
    /// frequent pair with a new rule. `min_support` ≥ 2.
    pub fn induce(sequences: &[Vec<Symbol>], min_support: u64) -> Grammar {
        assert!(min_support >= 2, "a pair must repeat to be a rule");
        let mut seqs: Vec<Vec<Symbol>> = sequences.to_vec();
        let input_symbols: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let mut rules: Vec<(Symbol, Symbol)> = Vec::new();
        let mut rule_uses: Vec<u64> = Vec::new();

        loop {
            // Count all adjacent pairs.
            let mut counts: HashMap<(Symbol, Symbol), u64> = HashMap::new();
            for seq in &seqs {
                for w in seq.windows(2) {
                    *counts.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            // Deterministic winner: highest count, then smallest pair.
            let Some((&pair, &count)) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < min_support {
                break;
            }
            let nt = NONTERMINAL_BASE + rules.len() as Symbol;
            rules.push(pair);
            let mut uses = 0u64;
            for seq in &mut seqs {
                let mut out = Vec::with_capacity(seq.len());
                let mut i = 0;
                while i < seq.len() {
                    if i + 1 < seq.len() && (seq[i], seq[i + 1]) == pair {
                        out.push(nt);
                        uses += 1;
                        i += 2;
                    } else {
                        out.push(seq[i]);
                        i += 1;
                    }
                }
                *seq = out;
            }
            rule_uses.push(uses);
        }
        Grammar {
            rules,
            compressed: seqs,
            input_symbols,
            rule_uses,
        }
    }

    /// Number of induced rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The body of rule `i`.
    pub fn rule(&self, i: usize) -> (Symbol, Symbol) {
        self.rules[i]
    }

    /// Times rule `i` fired during induction.
    pub fn rule_support(&self, i: usize) -> u64 {
        self.rule_uses[i]
    }

    /// The rewritten corpus.
    pub fn compressed(&self) -> &[Vec<Symbol>] {
        &self.compressed
    }

    /// Grammar size: compressed symbols + 2 per rule.
    pub fn grammar_symbols(&self) -> u64 {
        let seq: u64 = self.compressed.iter().map(|s| s.len() as u64).sum();
        seq + 2 * self.rules.len() as u64
    }

    /// Input symbols per grammar symbol (> 1 when structure was found).
    pub fn compression_ratio(&self) -> f64 {
        if self.grammar_symbols() == 0 {
            return 1.0;
        }
        self.input_symbols as f64 / self.grammar_symbols() as f64
    }

    /// Expands a symbol to its terminal yield.
    pub fn expand(&self, symbol: Symbol) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.expand_into(symbol, &mut out);
        out
    }

    fn expand_into(&self, symbol: Symbol, out: &mut Vec<Symbol>) {
        if is_nonterminal(symbol) {
            let (a, b) = self.rules[(symbol - NONTERMINAL_BASE) as usize];
            self.expand_into(a, out);
            self.expand_into(b, out);
        } else {
            out.push(symbol);
        }
    }

    /// Expands a whole compressed sequence back to terminals.
    pub fn expand_sequence(&self, seq: &[Symbol]) -> Vec<Symbol> {
        let mut out = Vec::new();
        for &s in seq {
            self.expand_into(s, &mut out);
        }
        out
    }

    /// Renders a symbol's hierarchical decomposition — the paper's "noun
    /// phrase / verb phrase" tree — with event names from the dictionary.
    pub fn render_tree(&self, symbol: Symbol, dict: &EventDictionary) -> String {
        let mut out = String::new();
        self.render_into(symbol, dict, 0, &mut out);
        out
    }

    fn render_into(&self, symbol: Symbol, dict: &EventDictionary, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        if is_nonterminal(symbol) {
            let idx = (symbol - NONTERMINAL_BASE) as usize;
            out.push_str(&format!(
                "{indent}R{idx} (x{} in corpus)\n",
                self.rule_uses[idx]
            ));
            let (a, b) = self.rules[idx];
            self.render_into(a, dict, depth + 1, out);
            self.render_into(b, dict, depth + 1, out);
        } else {
            let name = dict
                .name_of(symbol)
                .map(|n| n.as_str().to_string())
                .unwrap_or_else(|| format!("rank{symbol}"));
            out.push_str(&format!("{indent}{name}\n"));
        }
    }

    /// The most-used rules, as `(rule index, support, terminal yield)`.
    pub fn top_motifs(&self, k: usize) -> Vec<(usize, u64, Vec<Symbol>)> {
        let mut order: Vec<usize> = (0..self.rules.len()).collect();
        order.sort_by(|a, b| {
            self.rule_uses[*b]
                .cmp(&self.rule_uses[*a])
                .then_with(|| a.cmp(b))
        });
        order
            .into_iter()
            .take(k)
            .map(|i| {
                (
                    i,
                    self.rule_uses[i],
                    self.expand(NONTERMINAL_BASE + i as u32),
                )
            })
            .collect()
    }
}

/// Convenience: induces a grammar straight from encoded sequence strings.
pub fn induce_from_strings<'a, I>(sequences: I, min_support: u64) -> Grammar
where
    I: IntoIterator<Item = &'a str>,
{
    let seqs: Vec<Vec<Symbol>> = sequences
        .into_iter()
        .map(|s| s.chars().filter_map(rank_for_char).collect())
        .collect();
    Grammar::induce(&seqs, min_support)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_motif_becomes_a_rule() {
        // The motif 1 2 3 appears in most sequences, embedded in noise.
        let mut corpus = Vec::new();
        for i in 0..20u32 {
            corpus.push(vec![10 + i % 3, 1, 2, 3, 20 + i % 5]);
        }
        let g = Grammar::induce(&corpus, 2);
        assert!(g.rule_count() >= 2, "1·2 then (1·2)·3 should both rule");
        // Both the sub-rule (1·2) and the full motif ((1·2)·3) fire once per
        // sequence, so the full motif must be among the top two yields.
        let top = g.top_motifs(2);
        assert!(
            top.iter().any(|(_, _, y)| y == &vec![1, 2, 3]),
            "the motif is a top rule's yield: {top:?}"
        );
        assert!(
            g.compression_ratio() > 1.3,
            "ratio {:.2}",
            g.compression_ratio()
        );
    }

    #[test]
    fn expansion_round_trips_every_sequence() {
        let corpus: Vec<Vec<u32>> = (0..10)
            .map(|i| (0..30).map(|j| ((i * j) % 7) as u32).collect())
            .collect();
        let g = Grammar::induce(&corpus, 2);
        for (orig, comp) in corpus.iter().zip(g.compressed()) {
            assert_eq!(&g.expand_sequence(comp), orig);
        }
    }

    #[test]
    fn structureless_input_induces_nothing() {
        // All distinct pairs: nothing repeats.
        let corpus = vec![vec![1u32, 2], vec![3u32, 4], vec![5u32, 6]];
        let g = Grammar::induce(&corpus, 2);
        assert_eq!(g.rule_count(), 0);
        assert!((g.compression_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(g.compressed(), &corpus[..]);
    }

    #[test]
    fn nested_rules_form_hierarchy() {
        // Long runs of one symbol produce rules-of-rules (R1 = R0 R0 …).
        let corpus = vec![vec![7u32; 64]];
        let g = Grammar::induce(&corpus, 2);
        assert!(g.rule_count() >= 3);
        let has_nested = (0..g.rule_count()).any(|i| {
            let (a, b) = g.rule(i);
            is_nonterminal(a) || is_nonterminal(b)
        });
        assert!(has_nested, "hierarchical decomposition expected");
        assert_eq!(g.expand_sequence(&g.compressed()[0]), vec![7u32; 64]);
        assert!(g.compression_ratio() > 4.0);
    }

    #[test]
    fn render_tree_names_terminals() {
        use uli_core::event::EventName;
        let dict = EventDictionary::from_counts(vec![
            (EventName::parse("web:a:a:a:a:impression").unwrap(), 100),
            (EventName::parse("web:a:a:a:a:click").unwrap(), 50),
        ]);
        let corpus = vec![vec![0u32, 1], vec![0u32, 1], vec![0u32, 1]];
        let g = Grammar::induce(&corpus, 2);
        assert_eq!(g.rule_count(), 1);
        let tree = g.render_tree(NONTERMINAL_BASE, &dict);
        assert!(tree.contains("R0 (x3 in corpus)"));
        assert!(tree.contains("web:a:a:a:a:impression"));
        assert!(tree.contains("web:a:a:a:a:click"));
    }

    #[test]
    fn empty_corpus_and_empty_sequences() {
        let g = Grammar::induce(&[], 2);
        assert_eq!(g.rule_count(), 0);
        let g = Grammar::induce(&[vec![], vec![1u32]], 2);
        assert_eq!(g.rule_count(), 0);
        assert_eq!(g.expand_sequence(&[1]), vec![1]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Induction never loses information: expansion inverts it.
            #[test]
            fn expansion_inverts_induction(
                corpus in proptest::collection::vec(
                    proptest::collection::vec(0u32..12, 0..40),
                    0..20,
                ),
                min_support in 2u64..5,
            ) {
                let g = Grammar::induce(&corpus, min_support);
                for (orig, comp) in corpus.iter().zip(g.compressed()) {
                    prop_assert_eq!(&g.expand_sequence(comp), orig);
                }
                // Grammar never grows the representation.
                let input: u64 = corpus.iter().map(|s| s.len() as u64).sum();
                prop_assert!(g.grammar_symbols() <= input.max(1) + 2);
            }
        }
    }

    #[test]
    fn string_interface() {
        use uli_core::session::dictionary::char_for_rank;
        let s: String = [0u32, 1, 0, 1, 0, 1]
            .iter()
            .map(|r| char_for_rank(*r).unwrap())
            .collect();
        let g = induce_from_strings([s.as_str(), s.as_str()], 2);
        assert!(g.rule_count() >= 1);
        assert_eq!(g.expand(NONTERMINAL_BASE), vec![0, 1]);
    }
}
