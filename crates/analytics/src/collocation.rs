//! Activity collocates (§5.4).
//!
//! "Applying the analogy to session sequences, it is possible to extract
//! 'activity collocates', which represent potentially interesting patterns
//! of user activity. We have begun to perform these types of analyses,
//! borrowing standard techniques from text processing such as pointwise
//! mutual information \[Church & Hanks\] and log-likelihood ratios
//! \[Dunning\]."
//!
//! Statistics are computed over *adjacent* symbol pairs (bigrams) in the
//! session sequences — the "hot dog" of user behavior is
//! "impression click".

use std::collections::HashMap;

use uli_core::session::dictionary::rank_for_char;

/// A scored bigram.
#[derive(Debug, Clone, PartialEq)]
pub struct CollocationScore {
    /// First symbol (dictionary rank).
    pub a: u32,
    /// Second symbol.
    pub b: u32,
    /// Observed joint count.
    pub count: u64,
    /// Pointwise mutual information, bits.
    pub pmi: f64,
    /// Dunning's log-likelihood ratio (G²).
    pub llr: f64,
}

/// Accumulates bigram statistics over a corpus of symbol sequences.
#[derive(Debug, Clone, Default)]
pub struct CollocationMiner {
    pair_counts: HashMap<(u32, u32), u64>,
    first_counts: HashMap<u32, u64>,
    second_counts: HashMap<u32, u64>,
    total_pairs: u64,
}

fn xlogx(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// Entropy-form helper for Dunning's G² over a 2×2 contingency table.
fn llr_2x2(k11: f64, k12: f64, k21: f64, k22: f64) -> f64 {
    let row1 = k11 + k12;
    let row2 = k21 + k22;
    let col1 = k11 + k21;
    let col2 = k12 + k22;
    let total = row1 + row2;
    let h_matrix = xlogx(k11) + xlogx(k12) + xlogx(k21) + xlogx(k22);
    let h_rows = xlogx(row1) + xlogx(row2);
    let h_cols = xlogx(col1) + xlogx(col2);
    2.0 * (h_matrix - h_rows - h_cols + xlogx(total))
}

impl CollocationMiner {
    /// An empty miner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one symbol sequence.
    pub fn add_sequence(&mut self, seq: &[u32]) {
        for w in seq.windows(2) {
            *self.pair_counts.entry((w[0], w[1])).or_insert(0) += 1;
            *self.first_counts.entry(w[0]).or_insert(0) += 1;
            *self.second_counts.entry(w[1]).or_insert(0) += 1;
            self.total_pairs += 1;
        }
    }

    /// Adds an encoded session-sequence string.
    pub fn add_string(&mut self, seq: &str) {
        let symbols: Vec<u32> = seq.chars().filter_map(rank_for_char).collect();
        self.add_sequence(&symbols);
    }

    /// Total adjacent pairs observed.
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs
    }

    /// Scores every bigram with count ≥ `min_count`.
    pub fn scores(&self, min_count: u64) -> Vec<CollocationScore> {
        let n = self.total_pairs as f64;
        if n == 0.0 {
            return Vec::new();
        }
        let mut out: Vec<CollocationScore> = self
            .pair_counts
            .iter()
            .filter(|(_, c)| **c >= min_count.max(1))
            .map(|(&(a, b), &count)| {
                let k11 = count as f64;
                let fa = self.first_counts[&a] as f64;
                let fb = self.second_counts[&b] as f64;
                let k12 = fa - k11; // a followed by not-b
                let k21 = fb - k11; // not-a followed by b
                let k22 = n - fa - fb + k11;
                let pmi = ((k11 * n) / (fa * fb)).log2();
                // Sign the G² so that anti-collocations rank negative.
                let mut llr = llr_2x2(k11, k12, k21, k22.max(0.0));
                if k11 * n < fa * fb {
                    llr = -llr;
                }
                CollocationScore {
                    a,
                    b,
                    count,
                    pmi,
                    llr,
                }
            })
            .collect();
        out.sort_by(|x, y| {
            y.llr
                .total_cmp(&x.llr)
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        out
    }

    /// The top-`k` collocations by LLR with a count floor — the headline
    /// "interesting patterns of user activity" list.
    pub fn top_by_llr(&self, k: usize, min_count: u64) -> Vec<CollocationScore> {
        let mut s = self.scores(min_count);
        s.truncate(k);
        s
    }

    /// The top-`k` by PMI. PMI famously over-rewards rare pairs (Church &
    /// Hanks), which the E8 experiment demonstrates against LLR.
    pub fn top_by_pmi(&self, k: usize, min_count: u64) -> Vec<CollocationScore> {
        let mut s = self.scores(min_count);
        s.sort_by(|x, y| {
            y.pmi
                .total_cmp(&x.pmi)
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        s.truncate(k);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Corpus where 7→8 is planted far above chance, on a noisy background.
    fn planted_corpus() -> CollocationMiner {
        let mut rng = StdRng::seed_from_u64(11);
        let mut miner = CollocationMiner::new();
        for _ in 0..500 {
            let mut seq = Vec::with_capacity(30);
            while seq.len() < 30 {
                if rng.gen::<f64>() < 0.2 {
                    seq.push(7);
                    seq.push(8); // planted pair
                } else {
                    seq.push(rng.gen_range(0..20u32));
                }
            }
            miner.add_sequence(&seq);
        }
        miner
    }

    #[test]
    fn planted_pair_tops_the_llr_ranking() {
        let miner = planted_corpus();
        let top = miner.top_by_llr(3, 5);
        assert_eq!((top[0].a, top[0].b), (7, 8));
        assert!(top[0].llr > 100.0, "llr = {}", top[0].llr);
        assert!(top[0].pmi > 0.5);
    }

    #[test]
    fn pmi_overweights_rare_pairs_relative_to_llr() {
        let mut miner = CollocationMiner::new();
        // Frequent, genuinely associated pair: 1→3 occurs 300/1000 times
        // where independence predicts 250 (both margins are 500).
        for _ in 0..300 {
            miner.add_sequence(&[1, 3]);
        }
        for _ in 0..200 {
            miner.add_sequence(&[1, 2]);
        }
        for _ in 0..200 {
            miner.add_sequence(&[4, 3]);
        }
        for _ in 0..300 {
            miner.add_sequence(&[4, 2]);
        }
        // Rare but perfectly-associated pair: 8→9 twice, never apart.
        miner.add_sequence(&[8, 9]);
        miner.add_sequence(&[8, 9]);

        let by_pmi = miner.top_by_pmi(1, 1);
        assert_eq!((by_pmi[0].a, by_pmi[0].b), (8, 9), "PMI loves rare pairs");
        let by_llr = miner.top_by_llr(1, 1);
        assert_eq!(
            (by_llr[0].a, by_llr[0].b),
            (1, 3),
            "LLR favours well-supported association"
        );
    }

    #[test]
    fn independent_symbols_score_near_zero_pmi() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut miner = CollocationMiner::new();
        for _ in 0..2000 {
            let seq: Vec<u32> = (0..20).map(|_| rng.gen_range(0..4u32)).collect();
            miner.add_sequence(&seq);
        }
        for s in miner.scores(100) {
            assert!(
                s.pmi.abs() < 0.3,
                "({},{}) pmi={:.3} should be ~0",
                s.a,
                s.b,
                s.pmi
            );
        }
    }

    #[test]
    fn min_count_filters() {
        let mut miner = CollocationMiner::new();
        miner.add_sequence(&[1, 2, 3]);
        assert_eq!(miner.scores(2).len(), 0);
        assert_eq!(miner.scores(1).len(), 2);
        assert_eq!(miner.total_pairs(), 2);
    }

    #[test]
    fn empty_and_single_symbol_sequences_are_noops() {
        let mut miner = CollocationMiner::new();
        miner.add_sequence(&[]);
        miner.add_sequence(&[5]);
        assert_eq!(miner.total_pairs(), 0);
        assert!(miner.scores(1).is_empty());
    }

    #[test]
    fn string_interface() {
        use uli_core::session::dictionary::char_for_rank;
        let s: String = [0u32, 1, 0, 1]
            .iter()
            .map(|r| char_for_rank(*r).unwrap())
            .collect();
        let mut miner = CollocationMiner::new();
        miner.add_string(&s);
        assert_eq!(miner.total_pairs(), 3);
    }

    #[test]
    fn llr_of_degenerate_tables_is_finite() {
        assert!(llr_2x2(0.0, 0.0, 0.0, 0.0).is_finite());
        assert!(llr_2x2(5.0, 0.0, 0.0, 0.0).abs() < 1e-9);
    }
}
