//! Session-sequence alignment (§6, ongoing work).
//!
//! "Bridging these two worlds, we can take inspiration from biological
//! sequence alignment \[BLAST\] to answer questions like: 'What users exhibit
//! similar behavioral patterns?' This type of 'query-by-example' mechanism
//! would help in understanding what makes Twitter users engaged."
//!
//! Sessions are strings over the event alphabet, so classic global
//! alignment (Needleman–Wunsch) applies directly: match = same event,
//! mismatch/gap = penalties. [`query_by_example`] ranks a corpus of
//! sessions by alignment similarity to a probe session.

use uli_core::session::dictionary::rank_for_char;
use uli_core::session::SessionSequence;

/// Scoring parameters for global alignment.
#[derive(Debug, Clone, Copy)]
pub struct AlignScoring {
    /// Score for aligning two identical events.
    pub match_score: i32,
    /// Score for aligning two different events.
    pub mismatch: i32,
    /// Score per gap position (insertion/deletion).
    pub gap: i32,
}

impl Default for AlignScoring {
    fn default() -> Self {
        AlignScoring {
            match_score: 2,
            mismatch: -1,
            gap: -1,
        }
    }
}

/// One aligned position: events from either side, or a gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignedPair {
    /// Both sessions performed this event (ranks are equal).
    Match(u32),
    /// Different events at this position.
    Substitution(u32, u32),
    /// Event only in the first session.
    GapInSecond(u32),
    /// Event only in the second session.
    GapInFirst(u32),
}

/// Result of aligning two symbol sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Optimal global score.
    pub score: i32,
    /// The traceback.
    pub pairs: Vec<AlignedPair>,
}

impl Alignment {
    /// Fraction of aligned positions that are exact matches.
    pub fn identity(&self) -> f64 {
        if self.pairs.is_empty() {
            return 1.0;
        }
        let matches = self
            .pairs
            .iter()
            .filter(|p| matches!(p, AlignedPair::Match(_)))
            .count();
        matches as f64 / self.pairs.len() as f64
    }
}

/// Needleman–Wunsch global alignment over symbol sequences.
pub fn align(a: &[u32], b: &[u32], scoring: AlignScoring) -> Alignment {
    let (n, m) = (a.len(), b.len());
    // DP matrix in row-major (n+1) x (m+1).
    let width = m + 1;
    let mut dp = vec![0i32; (n + 1) * width];
    for (j, cell) in dp.iter_mut().enumerate().take(m + 1).skip(1) {
        *cell = j as i32 * scoring.gap;
    }
    for i in 1..=n {
        dp[i * width] = i as i32 * scoring.gap;
        for j in 1..=m {
            let diag = dp[(i - 1) * width + (j - 1)]
                + if a[i - 1] == b[j - 1] {
                    scoring.match_score
                } else {
                    scoring.mismatch
                };
            let up = dp[(i - 1) * width + j] + scoring.gap;
            let left = dp[i * width + (j - 1)] + scoring.gap;
            dp[i * width + j] = diag.max(up).max(left);
        }
    }
    // Traceback.
    let mut pairs = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let here = dp[i * width + j];
        if i > 0 && j > 0 {
            let step = if a[i - 1] == b[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            if here == dp[(i - 1) * width + (j - 1)] + step {
                pairs.push(if a[i - 1] == b[j - 1] {
                    AlignedPair::Match(a[i - 1])
                } else {
                    AlignedPair::Substitution(a[i - 1], b[j - 1])
                });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && here == dp[(i - 1) * width + j] + scoring.gap {
            pairs.push(AlignedPair::GapInSecond(a[i - 1]));
            i -= 1;
        } else {
            pairs.push(AlignedPair::GapInFirst(b[j - 1]));
            j -= 1;
        }
    }
    pairs.reverse();
    Alignment {
        score: dp[n * width + m],
        pairs,
    }
}

/// Normalized similarity in [0, 1]: alignment score over the best possible
/// score of the longer sequence. Empty-vs-empty counts as identical.
pub fn similarity(a: &[u32], b: &[u32], scoring: AlignScoring) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 1.0;
    }
    let best = longest as i32 * scoring.match_score;
    let aligned = align(a, b, scoring);
    (aligned.score.max(0)) as f64 / best as f64
}

fn symbols(seq: &str) -> Vec<u32> {
    seq.chars().filter_map(rank_for_char).collect()
}

/// Query-by-example: ranks `corpus` sessions by similarity to `probe`,
/// returning the top `k` as `(index into corpus, similarity)`.
pub fn query_by_example(
    probe: &SessionSequence,
    corpus: &[SessionSequence],
    k: usize,
    scoring: AlignScoring,
) -> Vec<(usize, f64)> {
    let probe_syms = symbols(&probe.sequence);
    let mut scored: Vec<(usize, f64)> = corpus
        .iter()
        .enumerate()
        .filter(|(_, s)| !(s.user_id == probe.user_id && s.session_id == probe.session_id))
        .map(|(i, s)| (i, similarity(&probe_syms, &symbols(&s.sequence), scoring)))
        .collect();
    scored.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> AlignScoring {
        AlignScoring::default()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let a = vec![1u32, 2, 3, 4];
        let al = align(&a, &a, sc());
        assert_eq!(al.score, 8);
        assert_eq!(al.identity(), 1.0);
        assert_eq!(similarity(&a, &a, sc()), 1.0);
    }

    #[test]
    fn single_substitution() {
        let a = vec![1u32, 2, 3];
        let b = vec![1u32, 9, 3];
        let al = align(&a, &b, sc());
        assert_eq!(al.score, 2 + (-1) + 2);
        assert_eq!(
            al.pairs,
            vec![
                AlignedPair::Match(1),
                AlignedPair::Substitution(2, 9),
                AlignedPair::Match(3)
            ]
        );
    }

    #[test]
    fn insertion_produces_gap() {
        let a = vec![1u32, 2, 3];
        let b = vec![1u32, 2, 9, 3];
        let al = align(&a, &b, sc());
        assert!(al.pairs.contains(&AlignedPair::GapInFirst(9)));
        assert_eq!(al.score, 6 - 1);
    }

    #[test]
    fn empty_sequences() {
        let al = align(&[], &[], sc());
        assert_eq!(al.score, 0);
        assert!(al.pairs.is_empty());
        assert_eq!(similarity(&[], &[], sc()), 1.0);
        let al = align(&[1, 2], &[], sc());
        assert_eq!(al.score, -2);
        assert_eq!(al.pairs.len(), 2);
    }

    #[test]
    fn disjoint_sequences_score_low() {
        let a = vec![1u32; 6];
        let b = vec![2u32; 6];
        assert!(similarity(&a, &b, sc()) < 0.2);
    }

    #[test]
    fn alignment_is_symmetric_in_score() {
        let a = vec![1u32, 2, 3, 4, 5];
        let b = vec![1u32, 3, 5];
        assert_eq!(align(&a, &b, sc()).score, align(&b, &a, sc()).score);
    }

    #[test]
    fn query_by_example_ranks_similar_sessions_first() {
        use uli_core::session::dictionary::char_for_rank;
        let seq_of = |ranks: &[u32]| -> String {
            ranks.iter().map(|r| char_for_rank(*r).unwrap()).collect()
        };
        let mk = |user: i64, ranks: &[u32]| SessionSequence {
            user_id: user,
            session_id: format!("s-{user}"),
            ip: "1.1.1.1".into(),
            sequence: seq_of(ranks),
            duration_secs: 10,
        };
        let probe = mk(1, &[1, 2, 3, 4, 5]);
        let corpus = vec![
            probe.clone(),           // self: excluded
            mk(2, &[1, 2, 3, 4, 5]), // identical
            mk(3, &[1, 2, 9, 4, 5]), // one substitution
            mk(4, &[7, 7, 7, 7, 7]), // unrelated
        ];
        let top = query_by_example(&probe, &corpus, 2, sc());
        assert_eq!(top[0].0, 1);
        assert!((top[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(top[1].0, 2);
        assert!(top[1].1 < 1.0 && top[1].1 > 0.5);
    }
}
