//! BirdBrain-style summary statistics (§5.1).
//!
//! "A series of daily jobs generate summary statistics, which feed into our
//! analytical dashboard called BirdBrain. The dashboard displays the number
//! of user sessions daily … We also provide the ability to drill down by
//! client type (i.e., twitter.com site, iPhone, Android, etc.) and by
//! (bucketed) session duration."

use std::collections::BTreeMap;

use uli_core::session::{EventDictionary, SessionSequence};

/// Session-duration buckets used by the dashboard drill-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DurationBucket {
    /// A single interaction burst: under a minute.
    UnderOneMinute,
    /// 1–10 minutes.
    OneToTenMinutes,
    /// 10–30 minutes.
    TenToThirtyMinutes,
    /// Over 30 minutes (within one cookie session despite the gap rule:
    /// continuous activity).
    OverThirtyMinutes,
}

impl DurationBucket {
    /// Buckets a duration in seconds.
    pub fn of(duration_secs: i64) -> DurationBucket {
        match duration_secs {
            s if s < 60 => DurationBucket::UnderOneMinute,
            s if s < 600 => DurationBucket::OneToTenMinutes,
            s if s < 1800 => DurationBucket::TenToThirtyMinutes,
            _ => DurationBucket::OverThirtyMinutes,
        }
    }

    /// Dashboard label.
    pub fn label(self) -> &'static str {
        match self {
            DurationBucket::UnderOneMinute => "<1m",
            DurationBucket::OneToTenMinutes => "1-10m",
            DurationBucket::TenToThirtyMinutes => "10-30m",
            DurationBucket::OverThirtyMinutes => ">30m",
        }
    }
}

/// One day's dashboard numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DailySummary {
    /// The day.
    pub day_index: u64,
    /// Total sessions.
    pub sessions: u64,
    /// Total events.
    pub events: u64,
    /// Distinct logged-in users seen.
    pub distinct_users: u64,
    /// Mean events per session.
    pub mean_session_len: f64,
    /// Mean duration in seconds.
    pub mean_duration_secs: f64,
    /// Sessions per client (client derived from the session's first event
    /// via the dictionary — sequences deliberately store nothing else).
    pub by_client: BTreeMap<String, u64>,
    /// Sessions per duration bucket.
    pub by_duration: BTreeMap<DurationBucket, u64>,
}

impl DailySummary {
    /// Computes the summary from a day's sequences. The dictionary is only
    /// needed for the client drill-down.
    pub fn compute(
        day_index: u64,
        sequences: &[SessionSequence],
        dict: &EventDictionary,
    ) -> DailySummary {
        let mut s = DailySummary {
            day_index,
            ..Default::default()
        };
        let mut users = std::collections::BTreeSet::new();
        let mut total_len = 0u64;
        let mut total_duration = 0i64;
        for seq in sequences {
            s.sessions += 1;
            let len = seq.len() as u64;
            s.events += len;
            total_len += len;
            total_duration += seq.duration_secs;
            if seq.user_id != 0 {
                users.insert(seq.user_id);
            }
            let client = seq
                .sequence
                .chars()
                .next()
                .and_then(|c| dict.decode_char(c))
                .map(|n| n.client().to_string())
                .unwrap_or_else(|| "unknown".to_string());
            *s.by_client.entry(client).or_insert(0) += 1;
            *s.by_duration
                .entry(DurationBucket::of(seq.duration_secs))
                .or_insert(0) += 1;
        }
        s.distinct_users = users.len() as u64;
        if s.sessions > 0 {
            s.mean_session_len = total_len as f64 / s.sessions as f64;
            s.mean_duration_secs = total_duration as f64 / s.sessions as f64;
        }
        s
    }

    /// Renders the dashboard block as plain text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "day {}: {} sessions, {} events, {} distinct users\n\
             mean session: {:.1} events, {:.0}s\n",
            self.day_index,
            self.sessions,
            self.events,
            self.distinct_users,
            self.mean_session_len,
            self.mean_duration_secs
        );
        out.push_str("by client:");
        for (client, n) in &self.by_client {
            out.push_str(&format!(" {client}={n}"));
        }
        out.push_str("\nby duration:");
        for (bucket, n) in &self.by_duration {
            out.push_str(&format!(" {}={n}", bucket.label()));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::event::EventName;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    fn dict() -> EventDictionary {
        EventDictionary::from_counts(vec![
            (n("web:home:home:stream:tweet:impression"), 100),
            (n("iphone:home:home:stream:tweet:impression"), 50),
        ])
    }

    fn seq(
        user: i64,
        client: &str,
        events: usize,
        duration: i64,
        d: &EventDictionary,
    ) -> SessionSequence {
        let name = n(&format!("{client}:home:home:stream:tweet:impression"));
        let c = d.encode_name(&name).unwrap();
        SessionSequence {
            user_id: user,
            session_id: format!("s-{user}"),
            ip: "10.0.0.1".into(),
            sequence: std::iter::repeat_n(c, events).collect(),
            duration_secs: duration,
        }
    }

    #[test]
    fn buckets() {
        assert_eq!(DurationBucket::of(0), DurationBucket::UnderOneMinute);
        assert_eq!(DurationBucket::of(59), DurationBucket::UnderOneMinute);
        assert_eq!(DurationBucket::of(60), DurationBucket::OneToTenMinutes);
        assert_eq!(DurationBucket::of(599), DurationBucket::OneToTenMinutes);
        assert_eq!(DurationBucket::of(600), DurationBucket::TenToThirtyMinutes);
        assert_eq!(DurationBucket::of(1800), DurationBucket::OverThirtyMinutes);
    }

    #[test]
    fn summary_aggregates_and_drills_down() {
        let d = dict();
        let seqs = vec![
            seq(1, "web", 10, 30, &d),
            seq(1, "iphone", 4, 700, &d),
            seq(2, "web", 6, 100, &d),
            seq(0, "web", 2, 2000, &d), // logged out
        ];
        let s = DailySummary::compute(3, &seqs, &d);
        assert_eq!(s.sessions, 4);
        assert_eq!(s.events, 22);
        assert_eq!(s.distinct_users, 2, "logged-out user 0 excluded");
        assert_eq!(s.by_client.get("web"), Some(&3));
        assert_eq!(s.by_client.get("iphone"), Some(&1));
        assert_eq!(s.by_duration.get(&DurationBucket::UnderOneMinute), Some(&1));
        assert_eq!(
            s.by_duration.get(&DurationBucket::OverThirtyMinutes),
            Some(&1)
        );
        assert!((s.mean_session_len - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_day() {
        let s = DailySummary::compute(0, &[], &dict());
        assert_eq!(s.sessions, 0);
        assert_eq!(s.mean_session_len, 0.0);
        assert!(s.by_client.is_empty());
    }

    #[test]
    fn render_mentions_the_drilldowns() {
        let d = dict();
        let s = DailySummary::compute(1, &[seq(1, "web", 3, 10, &d)], &d);
        let text = s.render();
        assert!(text.contains("1 sessions"));
        assert!(text.contains("web=1"));
        assert!(text.contains("<1m=1"));
    }
}
