//! Simulation timestamps.
//!
//! The simulated clock counts milliseconds from an arbitrary origin
//! (2012-08-01 00:00 in the synthetic calendar of
//! [`uli_warehouse::HourlyPartition::from_hour_index`]).

/// Milliseconds per hour.
pub const MS_PER_HOUR: i64 = 3_600_000;
/// Milliseconds per day.
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;
/// "Following standard practices, we use a 30-minute inactivity interval to
/// delimit user sessions" (§4.2).
pub const SESSION_GAP_MS: i64 = 30 * 60 * 1000;

/// A millisecond timestamp on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Timestamp at the start of a given simulation hour.
    pub fn from_hour_index(hour: u64) -> Timestamp {
        Timestamp(hour as i64 * MS_PER_HOUR)
    }

    /// The raw millisecond count.
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Which simulation hour this timestamp falls in.
    pub fn hour_index(self) -> u64 {
        (self.0.max(0) / MS_PER_HOUR) as u64
    }

    /// Which simulation day this timestamp falls in.
    pub fn day_index(self) -> u64 {
        (self.0.max(0) / MS_PER_DAY) as u64
    }

    /// Timestamp advanced by `ms` milliseconds.
    pub fn plus(self, ms: i64) -> Timestamp {
        Timestamp(self.0 + ms)
    }

    /// Milliseconds between two timestamps (`self - earlier`).
    pub fn since(self, earlier: Timestamp) -> i64 {
        self.0 - earlier.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_and_day_indexing() {
        assert_eq!(Timestamp(0).hour_index(), 0);
        assert_eq!(Timestamp(MS_PER_HOUR - 1).hour_index(), 0);
        assert_eq!(Timestamp(MS_PER_HOUR).hour_index(), 1);
        assert_eq!(Timestamp(MS_PER_DAY).day_index(), 1);
        assert_eq!(Timestamp::from_hour_index(25).hour_index(), 25);
        assert_eq!(Timestamp::from_hour_index(25).day_index(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp(1000);
        assert_eq!(t.plus(500).millis(), 1500);
        assert_eq!(t.plus(500).since(t), 500);
    }

    #[test]
    fn session_gap_is_thirty_minutes() {
        assert_eq!(SESSION_GAP_MS, 1_800_000);
    }
}
