//! The rejected alternative: an arbitrary-depth tree namespace.
//!
//! "As an alternative design, we had considered a looser tree-based model
//! for naming client events, i.e., the event namespace could be arbitrarily
//! deep. … Ultimately, we decided against this design and believe that we
//! made the correct decision." (§3.2)
//!
//! We implement it anyway so the ablation bench can quantify the trade-off
//! the paper describes: flexible depth versus harder top-level aggregation.

use std::fmt;

use super::name::EventName;

/// An arbitrary-depth event name: one or more lowercase segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeEventName {
    segments: Vec<String>,
}

impl TreeEventName {
    /// Parses a `:`-separated path of non-empty lowercase segments.
    pub fn parse(s: &str) -> Option<TreeEventName> {
        if s.is_empty() {
            return None;
        }
        let segments: Vec<String> = s.split(':').map(str::to_string).collect();
        for seg in &segments {
            if seg.is_empty()
                || !seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            {
                return None;
            }
        }
        Some(TreeEventName { segments })
    }

    /// Converts a flat six-level name, dropping empty components — the
    /// "advantage" the paper concedes to the tree design.
    pub fn from_flat(name: &EventName) -> TreeEventName {
        TreeEventName {
            segments: name
                .components()
                .filter(|c| !c.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// Path depth.
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// The segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// All ancestor prefixes (excluding self), shortest first. Computing
    /// roll-ups under the tree model requires materializing *every* prefix —
    /// there is no fixed set of five schemas, which is exactly why the paper
    /// found top-level aggregates "more difficult to automatically compute".
    pub fn prefixes(&self) -> Vec<TreeEventName> {
        (1..self.segments.len())
            .map(|n| TreeEventName {
                segments: self.segments[..n].to_vec(),
            })
            .collect()
    }

    /// True if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &TreeEventName) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }
}

impl fmt::Display for TreeEventName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segments.join(":"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_depth() {
        let t = TreeEventName::parse("web:home:mentions:stream").unwrap();
        assert_eq!(t.depth(), 4);
        assert!(TreeEventName::parse("").is_none());
        assert!(TreeEventName::parse("a::b").is_none());
        assert!(TreeEventName::parse("A:b").is_none());
    }

    #[test]
    fn from_flat_drops_empty_levels() {
        let flat = EventName::parse("iphone:home:::tweet:impression").unwrap();
        let tree = TreeEventName::from_flat(&flat);
        assert_eq!(tree.to_string(), "iphone:home:tweet:impression");
        assert_eq!(tree.depth(), 4);
    }

    #[test]
    fn prefixes_enumerate_every_level() {
        let t = TreeEventName::parse("web:home:mentions").unwrap();
        let p: Vec<String> = t.prefixes().iter().map(|x| x.to_string()).collect();
        assert_eq!(p, vec!["web", "web:home"]);
    }

    #[test]
    fn prefix_relation() {
        let a = TreeEventName::parse("web:home").unwrap();
        let b = TreeEventName::parse("web:home:mentions").unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
    }
}
