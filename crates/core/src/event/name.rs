//! Six-level event names.
//!
//! "We imposed a hierarchical six-level naming scheme for all events
//! (comprised of client, page, section, component, element, action)" —
//! Table 1. Components are lowercase (`To combat the dreaded camel_Snake,
//! we imposed consistent, lowercased naming`) and may be empty when a level
//! does not apply (a page without sections leaves `section` empty).

use std::fmt;

/// Number of levels in the naming scheme.
pub const COMPONENTS: usize = 6;

/// Human names of the six levels, in order.
pub const COMPONENT_NAMES: [&str; COMPONENTS] = [
    "client",
    "page",
    "section",
    "component",
    "element",
    "action",
];

/// Why a name failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventNameError {
    /// The name did not have exactly six `:`-separated components.
    WrongArity(usize),
    /// A component contained a character outside `[a-z0-9_]`.
    BadComponent {
        /// Level index 0–5.
        level: usize,
        /// The offending component text.
        component: String,
    },
    /// The action (last component) is empty — every event must have one.
    EmptyAction,
}

impl fmt::Display for EventNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventNameError::WrongArity(n) => {
                write!(f, "event name must have {COMPONENTS} components, found {n}")
            }
            EventNameError::BadComponent { level, component } => write!(
                f,
                "component {:?} at level {} ({}) must be lowercase [a-z0-9_]",
                component, level, COMPONENT_NAMES[*level]
            ),
            EventNameError::EmptyAction => write!(f, "the action component must be non-empty"),
        }
    }
}

impl std::error::Error for EventNameError {}

/// A validated six-level event name.
///
/// Stored as a single interned-style string with the component boundaries
/// implied by `:` separators; components are accessed by slicing. Event
/// names are small and compared frequently (dictionary lookups, roll-ups),
/// so a single allocation beats six.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventName(String);

fn component_ok(s: &str) -> bool {
    s.bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

impl EventName {
    /// Parses and validates `client:page:section:component:element:action`.
    pub fn parse(s: &str) -> Result<EventName, EventNameError> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != COMPONENTS {
            return Err(EventNameError::WrongArity(parts.len()));
        }
        for (level, part) in parts.iter().enumerate() {
            if !component_ok(part) {
                return Err(EventNameError::BadComponent {
                    level,
                    component: part.to_string(),
                });
            }
        }
        if parts[COMPONENTS - 1].is_empty() {
            return Err(EventNameError::EmptyAction);
        }
        Ok(EventName(s.to_string()))
    }

    /// Builds a name from its six components.
    pub fn from_components(parts: [&str; COMPONENTS]) -> Result<EventName, EventNameError> {
        EventName::parse(&parts.join(":"))
    }

    /// True when `s` would parse as a valid name, without allocating.
    /// Lazy decoders use this to validate a name they are not materializing.
    pub fn is_valid(s: &str) -> bool {
        let mut levels = 0usize;
        let mut last = "";
        for part in s.split(':') {
            if levels == COMPONENTS || !component_ok(part) {
                return false;
            }
            levels += 1;
            last = part;
        }
        levels == COMPONENTS && !last.is_empty()
    }

    /// The full name string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates the six components in order.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split(':')
    }

    /// Returns component `level` (0 = client … 5 = action).
    pub fn component(&self, level: usize) -> &str {
        self.components()
            .nth(level)
            .expect("validated names have six components")
    }

    /// The client (level 0): `web`, `iphone`, `android`, …
    pub fn client(&self) -> &str {
        self.component(0)
    }

    /// The page (level 1).
    pub fn page(&self) -> &str {
        self.component(1)
    }

    /// The section (level 2).
    pub fn section(&self) -> &str {
        self.component(2)
    }

    /// The component (level 3).
    pub fn ui_component(&self) -> &str {
        self.component(3)
    }

    /// The element (level 4).
    pub fn element(&self) -> &str {
        self.component(4)
    }

    /// The action (level 5): `impression`, `click`, `hover`, …
    pub fn action(&self) -> &str {
        self.component(5)
    }

    /// The reverse mapping the paper highlights: "given only the event name,
    /// we can easily figure out based on the DOM where that event was
    /// triggered". Renders the view-hierarchy path, outermost first,
    /// skipping empty levels.
    pub fn view_path(&self) -> Vec<(&'static str, &str)> {
        COMPONENT_NAMES
            .iter()
            .zip(self.components())
            .filter(|(_, c)| !c.is_empty())
            .map(|(n, c)| (*n, c))
            .collect()
    }

    /// A roll-up of this name: keep the first `keep` levels and the action,
    /// wildcard the rest. These are the five automatic aggregation schemas
    /// of §3.2, `keep` = 1..=5 (5 = the full name).
    pub fn rollup(&self, keep: usize) -> String {
        assert!((1..=5).contains(&keep), "keep must be 1..=5");
        let parts: Vec<&str> = self.components().collect();
        let mut out: Vec<&str> = Vec::with_capacity(COMPONENTS);
        out.extend(&parts[..keep]);
        out.extend(std::iter::repeat_n("*", COMPONENTS - 1 - keep));
        out.push(parts[COMPONENTS - 1]);
        out.join(":")
    }
}

impl fmt::Display for EventName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for EventName {
    type Err = EventNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EventName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_EXAMPLE: &str = "web:home:mentions:stream:avatar:profile_click";

    #[test]
    fn parses_the_papers_example() {
        let n = EventName::parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(n.client(), "web");
        assert_eq!(n.page(), "home");
        assert_eq!(n.section(), "mentions");
        assert_eq!(n.ui_component(), "stream");
        assert_eq!(n.element(), "avatar");
        assert_eq!(n.action(), "profile_click");
        assert_eq!(n.to_string(), PAPER_EXAMPLE);
    }

    #[test]
    fn empty_middle_components_are_allowed() {
        let n = EventName::parse("iphone:home:::tweet:impression").unwrap();
        assert_eq!(n.section(), "");
        assert_eq!(n.ui_component(), "");
    }

    #[test]
    fn arity_is_enforced() {
        assert_eq!(
            EventName::parse("web:home:click"),
            Err(EventNameError::WrongArity(3))
        );
        assert_eq!(
            EventName::parse("a:b:c:d:e:f:g"),
            Err(EventNameError::WrongArity(7))
        );
    }

    #[test]
    fn camel_snake_is_rejected() {
        // "the dreaded camel_Snake"
        let err = EventName::parse("web:home:mentions:stream:avatar:profile_Click").unwrap_err();
        assert!(matches!(err, EventNameError::BadComponent { level: 5, .. }));
        assert!(EventName::parse("Web:home:a:b:c:click").is_err());
        assert!(EventName::parse("web:ho me:a:b:c:click").is_err());
    }

    #[test]
    fn action_must_be_present() {
        assert_eq!(
            EventName::parse("web:home:mentions:stream:avatar:"),
            Err(EventNameError::EmptyAction)
        );
    }

    #[test]
    fn view_path_reverse_mapping() {
        let n = EventName::parse("web:home::stream:avatar:click").unwrap();
        assert_eq!(
            n.view_path(),
            vec![
                ("client", "web"),
                ("page", "home"),
                ("component", "stream"),
                ("element", "avatar"),
                ("action", "click"),
            ]
        );
    }

    #[test]
    fn rollups_match_the_five_schemas() {
        let n = EventName::parse(PAPER_EXAMPLE).unwrap();
        assert_eq!(n.rollup(5), "web:home:mentions:stream:avatar:profile_click");
        assert_eq!(n.rollup(4), "web:home:mentions:stream:*:profile_click");
        assert_eq!(n.rollup(3), "web:home:mentions:*:*:profile_click");
        assert_eq!(n.rollup(2), "web:home:*:*:*:profile_click");
        assert_eq!(n.rollup(1), "web:*:*:*:*:profile_click");
    }

    #[test]
    fn from_components_round_trips() {
        let n = EventName::from_components(["web", "home", "", "", "tweet", "click"]).unwrap();
        assert_eq!(n.as_str(), "web:home:::tweet:click");
    }

    #[test]
    fn is_valid_agrees_with_parse() {
        for s in [
            PAPER_EXAMPLE,
            "iphone:home:::tweet:impression",
            "web:home:click",
            "a:b:c:d:e:f:g",
            "web:home:mentions:stream:avatar:profile_Click",
            "web:home:mentions:stream:avatar:",
            "",
            ":::::click",
            "::::::",
            "web:ho me:a:b:c:click",
        ] {
            assert_eq!(
                EventName::is_valid(s),
                EventName::parse(s).is_ok(),
                "disagreement on {s:?}"
            );
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = EventName::parse("android:a:b:c:d:click").unwrap();
        let b = EventName::parse("web:a:b:c:d:click").unwrap();
        assert!(a < b);
    }
}
