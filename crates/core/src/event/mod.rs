//! The hierarchical event namespace (§3.2, Table 1).

pub mod initiator;
pub mod name;
pub mod pattern;
pub mod tree;

pub use initiator::EventInitiator;
pub use name::{EventName, EventNameError, COMPONENTS};
pub use pattern::EventPattern;
pub use tree::TreeEventName;
