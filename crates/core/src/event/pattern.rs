//! Wildcard patterns over the event namespace.
//!
//! "This hierarchical namespace makes it easy to slice-and-dice categories
//! of events with simple regular expressions … For example, analyses could
//! be conducted on all actions on the user's home mentions timeline on
//! twitter.com by considering `web:home:mentions:*`; or track profile
//! clicks across all clients … with `*:profile_click`." (§3.2)
//!
//! A pattern has six component patterns; each is a glob over one component
//! (`*` matches any run of characters). Shorthand forms pad with `*`:
//! a trailing-`*` pattern left-aligns (`web:home:mentions:*`), a
//! leading-`*` pattern right-aligns (`*:profile_click`).

use std::fmt;

use super::name::{EventName, COMPONENTS};

/// A compiled six-level wildcard pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventPattern {
    parts: [String; COMPONENTS],
}

/// Errors raised by [`EventPattern::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// Empty pattern string.
    Empty,
    /// More than six components.
    TooManyComponents(usize),
    /// A short pattern that neither starts nor ends with `*` is ambiguous.
    AmbiguousShorthand(String),
    /// Invalid characters in a component pattern.
    BadComponent(String),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => write!(f, "empty pattern"),
            PatternError::TooManyComponents(n) => {
                write!(
                    f,
                    "pattern has {n} components; at most {COMPONENTS} allowed"
                )
            }
            PatternError::AmbiguousShorthand(p) => write!(
                f,
                "short pattern {p:?} must start or end with '*' to indicate alignment"
            ),
            PatternError::BadComponent(c) => {
                write!(f, "component pattern {c:?} has invalid characters")
            }
        }
    }
}

impl std::error::Error for PatternError {}

fn component_pattern_ok(s: &str) -> bool {
    s.bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'*')
}

/// Glob match of `pat` (with `*` wildcards) against `text`.
fn glob_match(pat: &str, text: &str) -> bool {
    // Iterative two-pointer glob with backtracking over the last `*`.
    let p: &[u8] = pat.as_bytes();
    let t: &[u8] = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

impl EventPattern {
    /// Parses a pattern, expanding the shorthand forms.
    pub fn parse(s: &str) -> Result<EventPattern, PatternError> {
        if s.is_empty() {
            return Err(PatternError::Empty);
        }
        let given: Vec<&str> = s.split(':').collect();
        if given.len() > COMPONENTS {
            return Err(PatternError::TooManyComponents(given.len()));
        }
        for c in &given {
            if !component_pattern_ok(c) {
                return Err(PatternError::BadComponent(c.to_string()));
            }
        }
        let mut parts: [String; COMPONENTS] = Default::default();
        if given.len() == COMPONENTS {
            for (slot, c) in parts.iter_mut().zip(given) {
                *slot = c.to_string();
            }
        } else if given.last() == Some(&"*") {
            // Left-aligned: web:home:mentions:* → pad right with *.
            for slot in parts.iter_mut() {
                *slot = "*".to_string();
            }
            for (slot, c) in parts.iter_mut().zip(&given) {
                *slot = c.to_string();
            }
        } else if given.first() == Some(&"*") {
            // Right-aligned: *:profile_click → pad left with *.
            for slot in parts.iter_mut() {
                *slot = "*".to_string();
            }
            let offset = COMPONENTS - given.len();
            for (i, c) in given.iter().enumerate().skip(1) {
                parts[offset + i] = c.to_string();
            }
        } else {
            return Err(PatternError::AmbiguousShorthand(s.to_string()));
        }
        Ok(EventPattern { parts })
    }

    /// A pattern matching exactly one name.
    pub fn exact(name: &EventName) -> EventPattern {
        let mut parts: [String; COMPONENTS] = Default::default();
        for (slot, c) in parts.iter_mut().zip(name.components()) {
            *slot = c.to_string();
        }
        EventPattern { parts }
    }

    /// The pattern matching every event.
    pub fn any() -> EventPattern {
        EventPattern::parse("*:*:*:*:*:*").expect("static pattern is valid")
    }

    /// Tests a name against the pattern.
    pub fn matches(&self, name: &EventName) -> bool {
        self.parts
            .iter()
            .zip(name.components())
            .all(|(p, c)| glob_match(p, c))
    }

    /// True if this pattern can only match a single literal name.
    pub fn is_exact(&self) -> bool {
        self.parts.iter().all(|p| !p.contains('*'))
    }

    /// Expands the pattern against a universe of names, returning matches —
    /// the operation `CountClientEvents` performs against the dictionary
    /// ("an arbitrary regular expression … automatically expanded to include
    /// all matching events", §5.2).
    pub fn expand<'a, I>(&self, universe: I) -> Vec<&'a EventName>
    where
        I: IntoIterator<Item = &'a EventName>,
    {
        universe.into_iter().filter(|n| self.matches(n)).collect()
    }
}

impl fmt::Display for EventPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.parts.join(":"))
    }
}

impl std::str::FromStr for EventPattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EventPattern::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    #[test]
    fn paper_shorthand_left_aligned() {
        let p = EventPattern::parse("web:home:mentions:*").unwrap();
        assert!(p.matches(&n("web:home:mentions:stream:avatar:profile_click")));
        assert!(p.matches(&n("web:home:mentions:stream:tweet:impression")));
        assert!(!p.matches(&n("web:home:retweets:stream:tweet:impression")));
        assert!(!p.matches(&n("iphone:home:mentions:stream:tweet:impression")));
    }

    #[test]
    fn paper_shorthand_right_aligned() {
        let p = EventPattern::parse("*:profile_click").unwrap();
        assert!(p.matches(&n("web:home:mentions:stream:avatar:profile_click")));
        assert!(p.matches(&n("iphone:profile:::avatar:profile_click")));
        assert!(!p.matches(&n("web:home:mentions:stream:avatar:click")));
    }

    #[test]
    fn full_six_component_patterns_are_positional() {
        let p = EventPattern::parse("web:*:mentions:*:*:click").unwrap();
        assert!(p.matches(&n("web:home:mentions:stream:avatar:click")));
        assert!(!p.matches(&n("web:home:searches:stream:avatar:click")));
    }

    #[test]
    fn glob_within_component() {
        let p = EventPattern::parse("*:profile_*").unwrap();
        assert!(p.matches(&n("web:a:b:c:d:profile_click")));
        assert!(p.matches(&n("web:a:b:c:d:profile_hover")));
        assert!(!p.matches(&n("web:a:b:c:d:click")));
    }

    #[test]
    fn empty_components_match_star() {
        let p = EventPattern::parse("iphone:home:*").unwrap();
        assert!(p.matches(&n("iphone:home:::tweet:impression")));
    }

    #[test]
    fn ambiguous_shorthand_is_rejected() {
        assert!(matches!(
            EventPattern::parse("web:home"),
            Err(PatternError::AmbiguousShorthand(_))
        ));
        assert!(EventPattern::parse("").is_err());
        assert!(matches!(
            EventPattern::parse("a:b:c:d:e:f:g"),
            Err(PatternError::TooManyComponents(7))
        ));
        assert!(matches!(
            EventPattern::parse("WEB:*"),
            Err(PatternError::BadComponent(_))
        ));
    }

    #[test]
    fn exact_and_any() {
        let name = n("web:home:mentions:stream:avatar:profile_click");
        let p = EventPattern::exact(&name);
        assert!(p.is_exact());
        assert!(p.matches(&name));
        assert!(!p.matches(&n("web:home:mentions:stream:avatar:click")));
        assert!(EventPattern::any().matches(&name));
        assert!(!EventPattern::any().is_exact());
    }

    #[test]
    fn expansion_against_universe() {
        let universe = [
            n("web:home:mentions:stream:avatar:profile_click"),
            n("iphone:home:mentions:stream:avatar:profile_click"),
            n("web:home:mentions:stream:tweet:impression"),
        ];
        let p = EventPattern::parse("*:profile_click").unwrap();
        let hits = p.expand(universe.iter());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn glob_edge_cases() {
        assert!(glob_match("", ""));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b*c", "axxbyyc"));
        assert!(!glob_match("a*b*c", "axxbyy"));
        assert!(glob_match("**", "x"));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn display_round_trips() {
        let p = EventPattern::parse("web:home:mentions:*").unwrap();
        assert_eq!(p.to_string(), "web:home:mentions:*:*:*");
        let q = EventPattern::parse(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }
}
