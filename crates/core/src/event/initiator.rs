//! The event initiator taxonomy.
//!
//! "The event initiator specifies whether the event was triggered on the
//! client side or the server side, and whether the event was user initiated
//! or application initiated" (§3.2, Table 2) — e.g. a timeline polling for
//! new tweets is client/app.

use std::fmt;

/// Where the event originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Triggered in the client (browser, phone app).
    Client,
    /// Triggered by a server.
    Server,
}

/// Who caused the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// A direct user action.
    User,
    /// Automatic application behaviour (polling, prefetch).
    App,
}

/// `{client, server} × {user, app}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventInitiator {
    /// Client or server side.
    pub side: Side,
    /// User- or app-initiated.
    pub trigger: Trigger,
}

impl EventInitiator {
    /// Client-side, user-initiated — the common interactive case.
    pub const CLIENT_USER: EventInitiator = EventInitiator {
        side: Side::Client,
        trigger: Trigger::User,
    };
    /// Client-side, app-initiated (e.g. timeline polling).
    pub const CLIENT_APP: EventInitiator = EventInitiator {
        side: Side::Client,
        trigger: Trigger::App,
    };
    /// Server-side, user-initiated.
    pub const SERVER_USER: EventInitiator = EventInitiator {
        side: Side::Server,
        trigger: Trigger::User,
    };
    /// Server-side, app-initiated.
    pub const SERVER_APP: EventInitiator = EventInitiator {
        side: Side::Server,
        trigger: Trigger::App,
    };

    /// Compact wire code (0–3).
    pub fn code(self) -> i8 {
        match (self.side, self.trigger) {
            (Side::Client, Trigger::User) => 0,
            (Side::Client, Trigger::App) => 1,
            (Side::Server, Trigger::User) => 2,
            (Side::Server, Trigger::App) => 3,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: i8) -> Option<EventInitiator> {
        Some(match code {
            0 => EventInitiator::CLIENT_USER,
            1 => EventInitiator::CLIENT_APP,
            2 => EventInitiator::SERVER_USER,
            3 => EventInitiator::SERVER_APP,
            _ => return None,
        })
    }
}

impl fmt::Display for EventInitiator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = match self.side {
            Side::Client => "client",
            Side::Server => "server",
        };
        let trigger = match self.trigger {
            Trigger::User => "user",
            Trigger::App => "app",
        };
        write!(f, "{side}:{trigger}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..4i8 {
            let i = EventInitiator::from_code(code).unwrap();
            assert_eq!(i.code(), code);
        }
        assert!(EventInitiator::from_code(4).is_none());
        assert!(EventInitiator::from_code(-1).is_none());
    }

    #[test]
    fn display() {
        assert_eq!(EventInitiator::CLIENT_USER.to_string(), "client:user");
        assert_eq!(EventInitiator::SERVER_APP.to_string(), "server:app");
    }
}
