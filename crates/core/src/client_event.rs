//! The `ClientEvent` message (§3.2, Table 2).
//!
//! Every client event carries the same seven fields with exactly the same
//! semantics, so "a simple group-by suffices to accurately reconstruct user
//! sessions", and standardized field locations enable "consistent policies
//! for log anonymization". The `event_details` field holds free-form
//! key-value pairs that teams extend "without any central coordination".

use std::collections::BTreeMap;

use uli_dataflow::{DataflowResult, Loader, Tuple, Value};
use uli_thrift::{
    CompactReader, CompactWriter, Requiredness, StructDescriptor, TType, ThriftError, ThriftRecord,
    ThriftResult,
};

use crate::event::{EventInitiator, EventName};
use crate::time::Timestamp;

/// Scribe category all client events are logged under — the "single place"
/// unification (§3.2).
pub const CLIENT_EVENTS_CATEGORY: &str = "client_events";

/// The declared Thrift schema of [`ClientEvent`] (Table 2), for registries
/// and drift detection: tooling can validate any decoded message against it
/// without the compiled type.
pub fn client_event_descriptor() -> StructDescriptor {
    StructDescriptor::new(
        "ClientEvent",
        [
            (1, "event_initiator", TType::I8, Requiredness::Required),
            (2, "event_name", TType::Binary, Requiredness::Required),
            (3, "user_id", TType::I64, Requiredness::Required),
            (4, "session_id", TType::Binary, Requiredness::Required),
            (5, "ip", TType::Binary, Requiredness::Required),
            (6, "timestamp", TType::I64, Requiredness::Required),
            (7, "event_details", TType::Map, Requiredness::Optional),
        ],
    )
}

/// A unified log message. Field ids are stable Thrift ids.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientEvent {
    /// Field 1: who/where triggered the event.
    pub initiator: EventInitiator,
    /// Field 2: the six-level event name.
    pub name: EventName,
    /// Field 3: user id (0 = logged out).
    pub user_id: i64,
    /// Field 4: session id "based on browser cookie or other similar
    /// identifier".
    pub session_id: String,
    /// Field 5: the user's IP address.
    pub ip: String,
    /// Field 6: event timestamp.
    pub timestamp: Timestamp,
    /// Field 7: event-specific details as key-value pairs.
    pub details: BTreeMap<String, String>,
}

impl ClientEvent {
    /// A minimal event with empty details.
    pub fn new(
        initiator: EventInitiator,
        name: EventName,
        user_id: i64,
        session_id: impl Into<String>,
        ip: impl Into<String>,
        timestamp: Timestamp,
    ) -> ClientEvent {
        ClientEvent {
            initiator,
            name,
            user_id,
            session_id: session_id.into(),
            ip: ip.into(),
            timestamp,
            details: BTreeMap::new(),
        }
    }

    /// Adds one detail pair (builder style).
    pub fn with_detail(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.details.insert(key.into(), value.into());
        self
    }

    /// True if the event belongs to a logged-in user.
    pub fn logged_in(&self) -> bool {
        self.user_id != 0
    }
}

impl ThriftRecord for ClientEvent {
    fn write(&self, w: &mut CompactWriter) {
        w.struct_begin();
        w.field_i8(1, self.initiator.code());
        w.field_string(2, self.name.as_str());
        w.field_i64(3, self.user_id);
        w.field_string(4, &self.session_id);
        w.field_string(5, &self.ip);
        w.field_i64(6, self.timestamp.millis());
        if !self.details.is_empty() {
            w.field_string_map(7, &self.details);
        }
        w.struct_end();
    }

    fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
        r.struct_begin()?;
        let mut initiator = None;
        let mut name = None;
        let mut user_id = None;
        let mut session_id = None;
        let mut ip = None;
        let mut timestamp = None;
        let mut details = BTreeMap::new();
        while let Some(h) = r.field_begin()? {
            match h.id {
                1 => {
                    initiator = EventInitiator::from_code(r.read_i8()?);
                }
                2 => {
                    let s = r.read_string()?;
                    name = EventName::parse(s).ok();
                }
                3 => user_id = Some(r.read_i64()?),
                4 => session_id = Some(r.read_string()?.to_owned()),
                5 => ip = Some(r.read_string()?.to_owned()),
                6 => timestamp = Some(Timestamp(r.read_i64()?)),
                7 => details = r.read_string_map()?,
                _ => r.skip(h.ttype)?,
            }
        }
        r.struct_end();
        let missing = |id: i16| ThriftError::MissingField {
            strukt: "ClientEvent",
            field_id: id,
        };
        Ok(ClientEvent {
            initiator: initiator.ok_or_else(|| missing(1))?,
            name: name.ok_or_else(|| missing(2))?,
            user_id: user_id.ok_or_else(|| missing(3))?,
            session_id: session_id.ok_or_else(|| missing(4))?,
            ip: ip.ok_or_else(|| missing(5))?,
            timestamp: timestamp.ok_or_else(|| missing(6))?,
            details,
        })
    }
}

/// Dataflow loader for Thrift-encoded client events.
///
/// Output schema: `initiator, name, user_id, session_id, ip, timestamp,
/// details`. Undecodable records are skipped, mirroring Elephant Bird's
/// tolerant record readers.
#[derive(Debug, Clone, Default)]
pub struct ClientEventLoader;

/// The schema produced by [`ClientEventLoader`].
pub const CLIENT_EVENT_SCHEMA: [&str; 7] = [
    "initiator",
    "name",
    "user_id",
    "session_id",
    "ip",
    "timestamp",
    "details",
];

impl Loader for ClientEventLoader {
    fn name(&self) -> &'static str {
        "ClientEventLoader"
    }

    fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>> {
        let Ok(ev) = ClientEvent::from_bytes(record) else {
            return Ok(None);
        };
        let details = ev
            .details
            .into_iter()
            .map(|(k, v)| (k, Value::Str(v)))
            .collect();
        Ok(Some(vec![
            Value::Str(ev.initiator.to_string()),
            Value::Str(ev.name.as_str().to_string()),
            Value::Int(ev.user_id),
            Value::Str(ev.session_id),
            Value::Str(ev.ip),
            Value::Int(ev.timestamp.millis()),
            Value::Map(details),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse("web:home:mentions:stream:avatar:profile_click").unwrap(),
            12345,
            "s-deadbeef",
            "10.0.0.1",
            Timestamp(1_345_500_000_000),
        )
        .with_detail("profile_id", "67890")
    }

    #[test]
    fn thrift_round_trip() {
        let ev = sample();
        let bytes = ev.to_bytes();
        let back = ClientEvent::from_bytes(&bytes).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn empty_details_omitted_from_wire() {
        let mut ev = sample();
        ev.details.clear();
        let without = ev.to_bytes().len();
        let with = sample().to_bytes().len();
        assert!(without < with);
        assert_eq!(ClientEvent::from_bytes(&ev.to_bytes()).unwrap(), ev);
    }

    #[test]
    fn future_fields_are_skipped() {
        // Simulate a newer writer appending field 8.
        let mut w = CompactWriter::new();
        let ev = sample();
        // Re-encode with an extra trailing field inside the struct.
        w.struct_begin();
        w.field_i8(1, ev.initiator.code());
        w.field_string(2, ev.name.as_str());
        w.field_i64(3, ev.user_id);
        w.field_string(4, &ev.session_id);
        w.field_string(5, &ev.ip);
        w.field_i64(6, ev.timestamp.millis());
        w.field_string_map(7, &ev.details);
        w.field_string(8, "experiment_bucket_b"); // unknown to this reader
        w.struct_end();
        let back = ClientEvent::from_bytes(&w.into_bytes()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn missing_required_field_errors() {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i8(1, 0);
        w.struct_end();
        assert!(matches!(
            ClientEvent::from_bytes(&w.into_bytes()),
            Err(ThriftError::MissingField { field_id: 2, .. })
        ));
    }

    #[test]
    fn loader_produces_seven_columns() {
        let ev = sample();
        let t = ClientEventLoader.parse(&ev.to_bytes()).unwrap().unwrap();
        assert_eq!(t.len(), CLIENT_EVENT_SCHEMA.len());
        assert_eq!(
            t[1],
            Value::str("web:home:mentions:stream:avatar:profile_click")
        );
        assert_eq!(t[2], Value::Int(12345));
        assert_eq!(t[3], Value::str("s-deadbeef"));
        match &t[6] {
            Value::Map(m) => assert_eq!(m.get("profile_id"), Some(&Value::str("67890"))),
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn loader_skips_garbage() {
        assert_eq!(ClientEventLoader.parse(b"not thrift").unwrap(), None);
        assert_eq!(ClientEventLoader.parse(b"").unwrap(), None);
    }

    #[test]
    fn encoded_events_validate_against_the_declared_schema() {
        use uli_thrift::{CompactReader, SchemaRegistry};
        let mut registry = SchemaRegistry::new();
        registry.register(CLIENT_EVENTS_CATEGORY, client_event_descriptor());
        let schema = registry.get(CLIENT_EVENTS_CATEGORY).unwrap();

        let bytes = sample().to_bytes();
        let mut r = CompactReader::new(&bytes);
        let dynamic = r.read_struct_value().unwrap();
        assert!(
            schema.validate(&dynamic).is_empty(),
            "clean message validates"
        );

        // A message with a wrong-typed user_id is flagged.
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i8(1, 0);
        w.field_string(2, "web:a:b:c:d:click");
        w.field_string(3, "not-an-integer"); // user_id must be i64
        w.field_string(4, "s");
        w.field_string(5, "ip");
        w.field_i64(6, 0);
        w.struct_end();
        let bytes = w.into_bytes();
        let mut r = CompactReader::new(&bytes);
        let bad = r.read_struct_value().unwrap();
        let violations = schema.validate(&bad);
        assert!(!violations.is_empty(), "type drift is reported");
    }

    #[test]
    fn logged_in_flag() {
        assert!(sample().logged_in());
        let mut anon = sample();
        anon.user_id = 0;
        assert!(!anon.logged_in());
    }
}
