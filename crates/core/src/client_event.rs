//! The `ClientEvent` message (§3.2, Table 2).
//!
//! Every client event carries the same seven fields with exactly the same
//! semantics, so "a simple group-by suffices to accurately reconstruct user
//! sessions", and standardized field locations enable "consistent policies
//! for log anonymization". The `event_details` field holds free-form
//! key-value pairs that teams extend "without any central coordination".

use std::collections::BTreeMap;

use uli_dataflow::{
    ColumnarCodec, DataflowError, DataflowResult, Loader, ScanOutcome, ScanSpec, Tuple, Value,
    ZoneColumn,
};
use uli_thrift::{
    CompactReader, CompactWriter, FieldCursor, Requiredness, StructDescriptor, TType, ThriftError,
    ThriftRecord, ThriftResult,
};

use crate::event::{EventInitiator, EventName};
use crate::time::Timestamp;

/// Scribe category all client events are logged under — the "single place"
/// unification (§3.2).
pub const CLIENT_EVENTS_CATEGORY: &str = "client_events";

/// The declared Thrift schema of [`ClientEvent`] (Table 2), for registries
/// and drift detection: tooling can validate any decoded message against it
/// without the compiled type.
pub fn client_event_descriptor() -> StructDescriptor {
    StructDescriptor::new(
        "ClientEvent",
        [
            (1, "event_initiator", TType::I8, Requiredness::Required),
            (2, "event_name", TType::Binary, Requiredness::Required),
            (3, "user_id", TType::I64, Requiredness::Required),
            (4, "session_id", TType::Binary, Requiredness::Required),
            (5, "ip", TType::Binary, Requiredness::Required),
            (6, "timestamp", TType::I64, Requiredness::Required),
            (7, "event_details", TType::Map, Requiredness::Optional),
        ],
    )
}

/// A unified log message. Field ids are stable Thrift ids.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientEvent {
    /// Field 1: who/where triggered the event.
    pub initiator: EventInitiator,
    /// Field 2: the six-level event name.
    pub name: EventName,
    /// Field 3: user id (0 = logged out).
    pub user_id: i64,
    /// Field 4: session id "based on browser cookie or other similar
    /// identifier".
    pub session_id: String,
    /// Field 5: the user's IP address.
    pub ip: String,
    /// Field 6: event timestamp.
    pub timestamp: Timestamp,
    /// Field 7: event-specific details as key-value pairs.
    pub details: BTreeMap<String, String>,
}

impl ClientEvent {
    /// A minimal event with empty details.
    pub fn new(
        initiator: EventInitiator,
        name: EventName,
        user_id: i64,
        session_id: impl Into<String>,
        ip: impl Into<String>,
        timestamp: Timestamp,
    ) -> ClientEvent {
        ClientEvent {
            initiator,
            name,
            user_id,
            session_id: session_id.into(),
            ip: ip.into(),
            timestamp,
            details: BTreeMap::new(),
        }
    }

    /// Adds one detail pair (builder style).
    pub fn with_detail(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.details.insert(key.into(), value.into());
        self
    }

    /// True if the event belongs to a logged-in user.
    pub fn logged_in(&self) -> bool {
        self.user_id != 0
    }
}

impl ThriftRecord for ClientEvent {
    fn write(&self, w: &mut CompactWriter) {
        w.struct_begin();
        w.field_i8(1, self.initiator.code());
        w.field_string(2, self.name.as_str());
        w.field_i64(3, self.user_id);
        w.field_string(4, &self.session_id);
        w.field_string(5, &self.ip);
        w.field_i64(6, self.timestamp.millis());
        if !self.details.is_empty() {
            w.field_string_map(7, &self.details);
        }
        w.struct_end();
    }

    fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
        r.struct_begin()?;
        let mut initiator = None;
        let mut name = None;
        let mut user_id = None;
        let mut session_id = None;
        let mut ip = None;
        let mut timestamp = None;
        let mut details = BTreeMap::new();
        while let Some(h) = r.field_begin()? {
            match h.id {
                1 => {
                    initiator = EventInitiator::from_code(r.read_i8()?);
                }
                2 => {
                    let s = r.read_string()?;
                    name = EventName::parse(s).ok();
                }
                3 => user_id = Some(r.read_i64()?),
                4 => session_id = Some(r.read_string()?.to_owned()),
                5 => ip = Some(r.read_string()?.to_owned()),
                6 => timestamp = Some(Timestamp(r.read_i64()?)),
                7 => details = r.read_string_map()?,
                _ => r.skip(h.ttype)?,
            }
        }
        r.struct_end();
        let missing = |id: i16| ThriftError::MissingField {
            strukt: "ClientEvent",
            field_id: id,
        };
        Ok(ClientEvent {
            initiator: initiator.ok_or_else(|| missing(1))?,
            name: name.ok_or_else(|| missing(2))?,
            user_id: user_id.ok_or_else(|| missing(3))?,
            session_id: session_id.ok_or_else(|| missing(4))?,
            ip: ip.ok_or_else(|| missing(5))?,
            timestamp: timestamp.ok_or_else(|| missing(6))?,
            details,
        })
    }
}

/// Dataflow loader for Thrift-encoded client events.
///
/// Output schema: `initiator, name, user_id, session_id, ip, timestamp,
/// details`. Undecodable records are skipped, mirroring Elephant Bird's
/// tolerant record readers.
#[derive(Debug, Clone, Default)]
pub struct ClientEventLoader;

/// The schema produced by [`ClientEventLoader`].
pub const CLIENT_EVENT_SCHEMA: [&str; 7] = [
    "initiator",
    "name",
    "user_id",
    "session_id",
    "ip",
    "timestamp",
    "details",
];

impl Loader for ClientEventLoader {
    fn name(&self) -> &'static str {
        "ClientEventLoader"
    }

    fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>> {
        let Ok(ev) = ClientEvent::from_bytes(record) else {
            return Ok(None);
        };
        let details = ev
            .details
            .into_iter()
            .map(|(k, v)| (k, Value::Str(v)))
            .collect();
        Ok(Some(vec![
            Value::Str(ev.initiator.to_string()),
            Value::Str(ev.name.as_str().to_string()),
            Value::Int(ev.user_id),
            Value::Str(ev.session_id),
            Value::Str(ev.ip),
            Value::Int(ev.timestamp.millis()),
            Value::Map(details),
        ]))
    }

    fn supports_projection(&self) -> bool {
        true
    }

    fn zone_column(&self, col: usize) -> Option<ZoneColumn> {
        match col {
            1 => Some(ZoneColumn::Tag), // event name
            5 => Some(ZoneColumn::Key), // timestamp millis
            _ => None,
        }
    }

    fn columnar(&self) -> Option<&dyn ColumnarCodec> {
        Some(&crate::columnar::CLIENT_EVENT_COLUMNAR)
    }

    /// Lazy scan: walks the record once with a [`FieldCursor`], performing
    /// for every known field *the same typed read* the eager decoder does
    /// (so malformed records fail identically and the stream never
    /// desynchronizes on type drift), but materializing only projected
    /// columns. Unprojected slots come back as [`Value::Null`]; the planner
    /// guarantees nothing downstream reads them.
    fn scan(&self, record: &[u8], spec: &ScanSpec) -> DataflowResult<ScanOutcome> {
        let mut keep = [true; 7];
        if let Some(mask) = &spec.projection {
            for (k, m) in keep.iter_mut().zip(mask) {
                *k = *m;
            }
        }
        // Any Thrift error skips the record, exactly as the eager parse does.
        let Ok(Some((tuple, fields_skipped))) = scan_lazy(record, &keep) else {
            return Ok(ScanOutcome::skipped());
        };
        if tuple.len() != spec.width {
            return Err(DataflowError::MalformedRecord {
                loader: self.name(),
            });
        }
        if !spec.admit(&tuple)? {
            return Ok(ScanOutcome {
                tuple: None,
                fields_skipped,
                skipped_by_predicate: true,
            });
        }
        Ok(ScanOutcome {
            tuple: Some(tuple),
            fields_skipped,
            skipped_by_predicate: false,
        })
    }
}

/// One lazy decode pass. Mirrors [`ClientEvent::read`] byte for byte: the
/// same typed read per field id (last occurrence wins, an invalid initiator
/// code or event name makes the field count as missing), unknown ids
/// structurally skipped, and a missing required field 1–6 dropping the
/// record (`Ok(None)`). Unprojected strings and map entries are still walked
/// with validating reads — `skip` would not check UTF-8, and the eager path
/// does — but never copied out of the record buffer.
fn scan_lazy(record: &[u8], keep: &[bool; 7]) -> ThriftResult<Option<(Tuple, u64)>> {
    let mut c = FieldCursor::begin(record)?;
    let mut initiator: Option<EventInitiator> = None;
    let mut name: Option<&str> = None;
    let mut user_id: Option<i64> = None;
    let mut session: Option<&str> = None;
    let mut ip: Option<&str> = None;
    let mut ts: Option<i64> = None;
    let mut details: Option<BTreeMap<String, String>> = None;
    while let Some(h) = c.next_field()? {
        match h.id {
            1 => {
                initiator = EventInitiator::from_code(c.reader().read_i8()?);
                if !keep[0] {
                    c.note_skipped();
                }
            }
            2 => {
                let s = c.reader().read_string()?;
                name = EventName::is_valid(s).then_some(s);
                if !keep[1] {
                    c.note_skipped();
                }
            }
            3 => {
                user_id = Some(c.reader().read_i64()?);
                if !keep[2] {
                    c.note_skipped();
                }
            }
            4 => {
                session = Some(c.reader().read_string()?);
                if !keep[3] {
                    c.note_skipped();
                }
            }
            5 => {
                ip = Some(c.reader().read_string()?);
                if !keep[4] {
                    c.note_skipped();
                }
            }
            6 => {
                ts = Some(c.reader().read_i64()?);
                if !keep[5] {
                    c.note_skipped();
                }
            }
            7 => {
                if keep[6] {
                    details = Some(c.reader().read_string_map()?);
                } else {
                    // Same reads and errors as read_string_map, no allocation.
                    let (_, _, count) = c.reader().map_begin()?;
                    for _ in 0..count {
                        c.reader().read_string()?;
                        c.reader().read_string()?;
                    }
                    c.note_skipped();
                }
            }
            // Unknown ids are skipped by eager and lazy alike: not a
            // projection saving, so not counted.
            _ => c.reader().skip(h.ttype)?,
        }
    }
    let fields_skipped = c.fields_skipped();
    let (Some(initiator), Some(name), Some(user_id), Some(session), Some(ip), Some(ts)) =
        (initiator, name, user_id, session, ip, ts)
    else {
        return Ok(None); // missing required field: eager errors, loader skips
    };
    let tuple = vec![
        if keep[0] {
            Value::Str(initiator.to_string())
        } else {
            Value::Null
        },
        if keep[1] {
            Value::Str(name.to_string())
        } else {
            Value::Null
        },
        if keep[2] {
            Value::Int(user_id)
        } else {
            Value::Null
        },
        if keep[3] {
            Value::Str(session.to_string())
        } else {
            Value::Null
        },
        if keep[4] {
            Value::Str(ip.to_string())
        } else {
            Value::Null
        },
        if keep[5] { Value::Int(ts) } else { Value::Null },
        if keep[6] {
            Value::Map(
                details
                    .unwrap_or_default()
                    .into_iter()
                    .map(|(k, v)| (k, Value::Str(v)))
                    .collect(),
            )
        } else {
            Value::Null
        },
    ];
    Ok(Some((tuple, fields_skipped)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse("web:home:mentions:stream:avatar:profile_click").unwrap(),
            12345,
            "s-deadbeef",
            "10.0.0.1",
            Timestamp(1_345_500_000_000),
        )
        .with_detail("profile_id", "67890")
    }

    #[test]
    fn thrift_round_trip() {
        let ev = sample();
        let bytes = ev.to_bytes();
        let back = ClientEvent::from_bytes(&bytes).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn empty_details_omitted_from_wire() {
        let mut ev = sample();
        ev.details.clear();
        let without = ev.to_bytes().len();
        let with = sample().to_bytes().len();
        assert!(without < with);
        assert_eq!(ClientEvent::from_bytes(&ev.to_bytes()).unwrap(), ev);
    }

    #[test]
    fn future_fields_are_skipped() {
        // Simulate a newer writer appending field 8.
        let mut w = CompactWriter::new();
        let ev = sample();
        // Re-encode with an extra trailing field inside the struct.
        w.struct_begin();
        w.field_i8(1, ev.initiator.code());
        w.field_string(2, ev.name.as_str());
        w.field_i64(3, ev.user_id);
        w.field_string(4, &ev.session_id);
        w.field_string(5, &ev.ip);
        w.field_i64(6, ev.timestamp.millis());
        w.field_string_map(7, &ev.details);
        w.field_string(8, "experiment_bucket_b"); // unknown to this reader
        w.struct_end();
        let back = ClientEvent::from_bytes(&w.into_bytes()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn missing_required_field_errors() {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i8(1, 0);
        w.struct_end();
        assert!(matches!(
            ClientEvent::from_bytes(&w.into_bytes()),
            Err(ThriftError::MissingField { field_id: 2, .. })
        ));
    }

    #[test]
    fn loader_produces_seven_columns() {
        let ev = sample();
        let t = ClientEventLoader.parse(&ev.to_bytes()).unwrap().unwrap();
        assert_eq!(t.len(), CLIENT_EVENT_SCHEMA.len());
        assert_eq!(
            t[1],
            Value::str("web:home:mentions:stream:avatar:profile_click")
        );
        assert_eq!(t[2], Value::Int(12345));
        assert_eq!(t[3], Value::str("s-deadbeef"));
        match &t[6] {
            Value::Map(m) => assert_eq!(m.get("profile_id"), Some(&Value::str("67890"))),
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn loader_skips_garbage() {
        assert_eq!(ClientEventLoader.parse(b"not thrift").unwrap(), None);
        assert_eq!(ClientEventLoader.parse(b"").unwrap(), None);
    }

    #[test]
    fn encoded_events_validate_against_the_declared_schema() {
        use uli_thrift::{CompactReader, SchemaRegistry};
        let mut registry = SchemaRegistry::new();
        registry.register(CLIENT_EVENTS_CATEGORY, client_event_descriptor());
        let schema = registry.get(CLIENT_EVENTS_CATEGORY).unwrap();

        let bytes = sample().to_bytes();
        let mut r = CompactReader::new(&bytes);
        let dynamic = r.read_struct_value().unwrap();
        assert!(
            schema.validate(&dynamic).is_empty(),
            "clean message validates"
        );

        // A message with a wrong-typed user_id is flagged.
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i8(1, 0);
        w.field_string(2, "web:a:b:c:d:click");
        w.field_string(3, "not-an-integer"); // user_id must be i64
        w.field_string(4, "s");
        w.field_string(5, "ip");
        w.field_i64(6, 0);
        w.struct_end();
        let bytes = w.into_bytes();
        let mut r = CompactReader::new(&bytes);
        let bad = r.read_struct_value().unwrap();
        let violations = schema.validate(&bad);
        assert!(!violations.is_empty(), "type drift is reported");
    }

    #[test]
    fn lazy_scan_full_projection_matches_eager_parse() {
        let bytes = sample().to_bytes();
        let spec = ScanSpec::eager(7);
        let eager = ClientEventLoader.parse(&bytes).unwrap().unwrap();
        let lazy = ClientEventLoader.scan(&bytes, &spec).unwrap();
        assert_eq!(lazy.tuple.as_ref(), Some(&eager));
        assert_eq!(lazy.fields_skipped, 0);
        assert!(!lazy.skipped_by_predicate);
    }

    #[test]
    fn lazy_scan_projects_and_counts_skips() {
        let bytes = sample().to_bytes();
        // Keep name and user_id only.
        let spec = ScanSpec {
            projection: Some(vec![false, true, true, false, false, false, false]),
            predicate: vec![],
            width: 7,
        };
        let out = ClientEventLoader.scan(&bytes, &spec).unwrap();
        let t = out.tuple.unwrap();
        assert_eq!(
            t,
            vec![
                Value::Null,
                Value::str("web:home:mentions:stream:avatar:profile_click"),
                Value::Int(12345),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ]
        );
        assert_eq!(out.fields_skipped, 5, "initiator, session, ip, ts, details");
    }

    #[test]
    fn lazy_scan_pushed_predicate_drops_and_counts() {
        use uli_dataflow::Expr;
        let bytes = sample().to_bytes();
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(2).eq(Expr::lit(999i64))],
            width: 7,
        };
        let out = ClientEventLoader.scan(&bytes, &spec).unwrap();
        assert!(out.tuple.is_none());
        assert!(out.skipped_by_predicate);
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(2).eq(Expr::lit(12345i64))],
            width: 7,
        };
        let out = ClientEventLoader.scan(&bytes, &spec).unwrap();
        assert!(out.tuple.is_some());
        assert!(!out.skipped_by_predicate);
    }

    #[test]
    fn lazy_scan_agrees_with_eager_on_malformed_records() {
        // Garbage, truncation, missing required fields, invalid name, bad
        // initiator code, and unknown future fields must all land the same
        // way in both paths.
        let mut cases: Vec<Vec<u8>> = vec![b"not thrift".to_vec(), Vec::new()];
        let good = sample().to_bytes();
        for cut in [1, good.len() / 2, good.len() - 1] {
            cases.push(good[..cut].to_vec());
        }
        let mut w = CompactWriter::new(); // missing fields 2..6
        w.struct_begin();
        w.field_i8(1, 0);
        w.struct_end();
        cases.push(w.into_bytes());
        let mut w = CompactWriter::new(); // invalid event name
        w.struct_begin();
        w.field_i8(1, 0);
        w.field_string(2, "not-six-components");
        w.field_i64(3, 1);
        w.field_string(4, "s");
        w.field_string(5, "ip");
        w.field_i64(6, 0);
        w.struct_end();
        cases.push(w.into_bytes());
        let mut w = CompactWriter::new(); // invalid initiator code
        w.struct_begin();
        w.field_i8(1, 99);
        w.field_string(2, "web:a:b:c:d:click");
        w.field_i64(3, 1);
        w.field_string(4, "s");
        w.field_string(5, "ip");
        w.field_i64(6, 0);
        w.struct_end();
        cases.push(w.into_bytes());
        let mut w = CompactWriter::new(); // unknown field + duplicate field 3
        w.struct_begin();
        w.field_i8(1, 0);
        w.field_string(2, "web:a:b:c:d:click");
        w.field_i64(3, 1);
        w.field_string(4, "s");
        w.field_string(5, "ip");
        w.field_i64(6, 0);
        w.field_string(8, "future");
        w.struct_end();
        cases.push(w.into_bytes());
        cases.push(good);
        for (i, bytes) in cases.iter().enumerate() {
            let eager = ClientEventLoader.parse(bytes).unwrap();
            let lazy = ClientEventLoader.scan(bytes, &ScanSpec::eager(7)).unwrap();
            assert_eq!(lazy.tuple, eager, "case {i} diverged");
        }
    }

    #[test]
    fn zone_columns_declared() {
        assert!(ClientEventLoader.supports_projection());
        assert_eq!(ClientEventLoader.zone_column(1), Some(ZoneColumn::Tag));
        assert_eq!(ClientEventLoader.zone_column(5), Some(ZoneColumn::Key));
        assert_eq!(ClientEventLoader.zone_column(0), None);
        assert_eq!(ClientEventLoader.zone_column(6), None);
    }

    #[test]
    fn logged_in_flag() {
        assert!(sample().logged_in());
        let mut anon = sample();
        anon.user_id = 0;
        assert!(!anon.logged_in());
    }
}
