//! A small JSON parser for legacy frontend logs.
//!
//! "An example is frontend logs, which capture rich user interactions …
//! in JSON format. These JSON structures are often nested several layers
//! deep … At analysis time, it is often difficult to make sense of the
//! logs." (§3.1). The legacy baseline emits exactly such messages, so the
//! repo needs to parse them; a hand-rolled recursive-descent parser keeps
//! the dependency set to the approved crates.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the legacy logs never need i64 range).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Json>),
    /// Object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::TrailingData(p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Dotted-path lookup: `get_path("event.target.id")`.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected end of input.
    Eof,
    /// Unexpected byte at offset.
    Unexpected(usize),
    /// Bad escape sequence at offset.
    BadEscape(usize),
    /// Invalid number at offset.
    BadNumber(usize),
    /// Input continued after the document ended.
    TrailingData(usize),
    /// Nesting beyond the depth limit.
    TooDeep,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Eof => write!(f, "unexpected end of JSON"),
            JsonError::Unexpected(at) => write!(f, "unexpected byte at offset {at}"),
            JsonError::BadEscape(at) => write!(f, "bad escape at offset {at}"),
            JsonError::BadNumber(at) => write!(f, "bad number at offset {at}"),
            JsonError::TrailingData(at) => write!(f, "trailing data at offset {at}"),
            JsonError::TooDeep => write!(f, "nesting too deep"),
        }
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else if self.peek().is_none() {
            Err(JsonError::Eof)
        } else {
            Err(JsonError::Unexpected(self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError::Unexpected(self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek().ok_or(JsonError::Eof)? {
            b'n' => self.literal("null").map(|_| Json::Null),
            b't' => self.literal("true").map(|_| Json::Bool(true)),
            b'f' => self.literal("false").map(|_| Json::Bool(false)),
            b'"' => self.string().map(Json::String),
            b'[' => self.array(depth),
            b'{' => self.object(depth),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(JsonError::Unexpected(self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                Some(_) => return Err(JsonError::Unexpected(self.pos)),
                None => return Err(JsonError::Eof),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                Some(_) => return Err(JsonError::Unexpected(self.pos)),
                None => return Err(JsonError::Eof),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::Unexpected(start))?,
            );
            match self.peek().ok_or(JsonError::Eof)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError::Eof)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or(JsonError::Eof)?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(JsonError::BadEscape(self.pos))?;
                            self.pos += 4;
                            // Surrogates in legacy logs are replaced, not
                            // round-tripped; the legacy parser is tolerant.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(JsonError::BadEscape(self.pos - 1)),
                    }
                }
                _ => return Err(JsonError::Unexpected(self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or(JsonError::BadNumber(start))
    }
}

impl fmt::Display for Json {
    /// Serializes back to compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => write_json_string(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Number(-150.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap(),
            Json::String("hi".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"event":{"target":{"id":67890,"kind":"profile"},"ts":1345500000},"tags":["a","b"]}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(
            j.get_path("event.target.id").unwrap().as_f64(),
            Some(67890.0)
        );
        assert_eq!(
            j.get_path("event.target.kind").unwrap().as_str(),
            Some("profile")
        );
        assert!(matches!(j.get("tags"), Some(Json::Array(a)) if a.len() == 2));
        assert!(j.get_path("event.missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndA"));
        let rendered = j.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), j);
    }

    #[test]
    fn display_round_trips_nested() {
        let doc = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.to_string(), doc);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let j = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] } ").unwrap();
        assert!(matches!(j.get("a"), Some(Json::Array(_))));
    }

    #[test]
    fn errors_do_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}extra",
            "\"bad\\q\"",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(BTreeMap::new()));
    }
}
