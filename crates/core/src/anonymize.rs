//! Log anonymization policies (§3.2).
//!
//! "By extension, standardizing the location and names of these fields
//! allows us to implement consistent policies for log anonymization." With
//! application-specific logging, scrubbing user ids meant chasing `uid`,
//! `userId`, `userid`, `user_id`, and `user_Id` through every format; with
//! client events, one policy applied to fields 3–5 covers the entire log.

use crate::client_event::ClientEvent;

/// A deterministic, keyed anonymization policy.
///
/// * user ids are replaced by a keyed 64-bit hash (stable pseudonyms —
///   joins and sessionization still work; the mapping is not reversible
///   without the key);
/// * session ids are rehashed the same way;
/// * IPs are truncated to /16, keeping coarse geo signal and dropping host
///   identity;
/// * `event_details` values under keys in [`SENSITIVE_DETAIL_KEYS`] are
///   dropped.
#[derive(Debug, Clone, Copy)]
pub struct Anonymizer {
    key: u64,
}

/// Detail keys scrubbed by policy.
pub const SENSITIVE_DETAIL_KEYS: [&str; 3] = ["user_agent", "request_id", "target_url"];

fn keyed_hash(key: u64, bytes: &[u8]) -> u64 {
    // FNV-1a seeded with the key; ample for pseudonymization in a
    // simulation (a production system would use a keyed PRF).
    let mut h = 0xcbf29ce484222325u64 ^ key;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Anonymizer {
    /// A policy under the given secret key.
    pub fn new(key: u64) -> Anonymizer {
        Anonymizer { key }
    }

    /// Pseudonymizes a user id (0 — logged out — stays 0).
    pub fn user_id(&self, user_id: i64) -> i64 {
        if user_id == 0 {
            return 0;
        }
        // Keep it positive so downstream `logged_in` semantics survive.
        (keyed_hash(self.key, &user_id.to_le_bytes()) as i64).unsigned_abs() as i64
    }

    /// Pseudonymizes a session id.
    pub fn session_id(&self, session_id: &str) -> String {
        format!("anon-{:016x}", keyed_hash(self.key, session_id.as_bytes()))
    }

    /// Truncates an IPv4 address to its /16.
    pub fn ip(&self, ip: &str) -> String {
        let mut parts = ip.split('.');
        match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => format!("{a}.{b}.0.0"),
            _ => "0.0.0.0".to_string(),
        }
    }

    /// Applies the whole policy to one event, in place.
    pub fn scrub(&self, event: &mut ClientEvent) {
        event.user_id = self.user_id(event.user_id);
        event.session_id = self.session_id(&event.session_id);
        event.ip = self.ip(&event.ip);
        for key in SENSITIVE_DETAIL_KEYS {
            event.details.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventInitiator, EventName};
    use crate::time::Timestamp;

    fn sample() -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse("web:home:home:stream:tweet:click").unwrap(),
            12345,
            "s-12345-0-1",
            "203.0.113.77",
            Timestamp(1000),
        )
        .with_detail("user_agent", "Mozilla/5.0 …")
        .with_detail("rank", "3")
        .with_detail("request_id", "deadbeef")
    }

    #[test]
    fn pseudonyms_are_stable_and_keyed() {
        let a = Anonymizer::new(42);
        assert_eq!(a.user_id(7), a.user_id(7), "deterministic");
        assert_ne!(a.user_id(7), 7, "not the identity");
        assert_ne!(a.user_id(7), a.user_id(8), "distinct users stay distinct");
        let b = Anonymizer::new(43);
        assert_ne!(a.user_id(7), b.user_id(7), "key changes the mapping");
    }

    #[test]
    fn logged_out_marker_survives() {
        let a = Anonymizer::new(42);
        assert_eq!(a.user_id(0), 0);
        assert!(a.user_id(5) > 0);
    }

    #[test]
    fn ip_truncates_to_slash16() {
        let a = Anonymizer::new(1);
        assert_eq!(a.ip("203.0.113.77"), "203.0.0.0");
        assert_eq!(a.ip("garbage"), "0.0.0.0");
    }

    #[test]
    fn scrub_applies_the_full_policy() {
        let a = Anonymizer::new(9);
        let mut ev = sample();
        a.scrub(&mut ev);
        assert_ne!(ev.user_id, 12345);
        assert!(ev.session_id.starts_with("anon-"));
        assert_eq!(ev.ip, "203.0.0.0");
        assert!(!ev.details.contains_key("user_agent"));
        assert!(!ev.details.contains_key("request_id"));
        assert_eq!(ev.details.get("rank").map(String::as_str), Some("3"));
        // The event name (the analytics payload) is untouched.
        assert_eq!(ev.name.action(), "click");
    }

    #[test]
    fn sessionization_survives_scrubbing() {
        // Two events of one session stay joinable after anonymization.
        let a = Anonymizer::new(5);
        let mut e1 = sample();
        let mut e2 = sample();
        e2.timestamp = Timestamp(2000);
        a.scrub(&mut e1);
        a.scrub(&mut e2);
        assert_eq!(e1.user_id, e2.user_id);
        assert_eq!(e1.session_id, e2.session_id);
        use crate::session::Sessionizer;
        let sessions = Sessionizer::new().sessionize(vec![e1, e2]);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].events.len(), 2);
    }
}
