//! The automatically generated client event catalog (§4.3).
//!
//! "We have written an automatically-generated event catalog and browsing
//! interface which is coupled to the daily job of building the client event
//! dictionary. The interface lets users browse and search through the
//! client events in a variety of ways: hierarchically, by each of the
//! namespace components, and using regular expressions. For each event, the
//! interface provides a few illustrative examples of the complete Thrift
//! structure … the interface allows developers to manually attach
//! descriptions … Since the event catalog is rebuilt every day, it is
//! always up to date."

use std::collections::BTreeMap;

use crate::client_event::ClientEvent;
use crate::event::{EventName, EventPattern};
use crate::session::dictionary::EventDictionary;

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The event name.
    pub name: EventName,
    /// Daily occurrence count from the histogram.
    pub count: u64,
    /// Dictionary rank (0 = most frequent).
    pub rank: u32,
    /// Illustrative sample messages.
    pub samples: Vec<ClientEvent>,
    /// Developer-supplied description, if any.
    pub description: Option<String>,
}

/// The browsable catalog, rebuilt daily from the dictionary job's outputs.
#[derive(Debug, Clone, Default)]
pub struct ClientEventCatalog {
    entries: BTreeMap<EventName, CatalogEntry>,
    /// Descriptions survive rebuilds: they are keyed by name, not by day.
    day_index: u64,
}

impl ClientEventCatalog {
    /// Builds a catalog from a day's dictionary and samples.
    pub fn build(day_index: u64, dict: &EventDictionary, samples: &[ClientEvent]) -> Self {
        let mut entries = BTreeMap::new();
        for (rank, name, count) in dict.iter() {
            entries.insert(
                name.clone(),
                CatalogEntry {
                    name: name.clone(),
                    count,
                    rank,
                    samples: Vec::new(),
                    description: None,
                },
            );
        }
        for sample in samples {
            if let Some(entry) = entries.get_mut(&sample.name) {
                entry.samples.push(sample.clone());
            }
        }
        ClientEventCatalog { entries, day_index }
    }

    /// Rebuilds from a newer day, carrying developer descriptions forward —
    /// the catalog stays "always up to date" without losing annotations.
    pub fn rebuild(&self, day_index: u64, dict: &EventDictionary, samples: &[ClientEvent]) -> Self {
        let mut next = ClientEventCatalog::build(day_index, dict, samples);
        for (name, entry) in &self.entries {
            if let (Some(desc), Some(slot)) = (&entry.description, next.entries.get_mut(name)) {
                slot.description = Some(desc.clone());
            }
        }
        next
    }

    /// The day this catalog reflects.
    pub fn day_index(&self) -> u64 {
        self.day_index
    }

    /// Number of distinct events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact lookup.
    pub fn get(&self, name: &EventName) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Attaches (or replaces) a developer description.
    pub fn describe(&mut self, name: &EventName, description: impl Into<String>) -> bool {
        match self.entries.get_mut(name) {
            Some(e) => {
                e.description = Some(description.into());
                true
            }
            None => false,
        }
    }

    /// Pattern search — "using regular expressions" over the namespace.
    pub fn search(&self, pattern: &EventPattern) -> Vec<&CatalogEntry> {
        self.entries
            .values()
            .filter(|e| pattern.matches(&e.name))
            .collect()
    }

    /// Hierarchical browse: the distinct values of `level` among events
    /// whose components 0..level equal `prefix`, with per-value counts.
    /// Browsing with an empty prefix lists clients; one more component
    /// lists that client's pages; and so on down the hierarchy.
    pub fn browse(&self, prefix: &[&str]) -> Vec<(String, u64)> {
        assert!(prefix.len() < 6, "prefix must leave at least one level");
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for entry in self.entries.values() {
            let comps: Vec<&str> = entry.name.components().collect();
            if comps[..prefix.len()] == *prefix {
                *out.entry(comps[prefix.len()].to_string()).or_insert(0) += entry.count;
            }
        }
        out.into_iter().collect()
    }

    /// Iterates entries by descending count (the catalog's default listing).
    pub fn by_frequency(&self) -> Vec<&CatalogEntry> {
        let mut v: Vec<&CatalogEntry> = self.entries.values().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.name.cmp(&b.name)));
        v
    }

    /// Renders one entry the way the browsing interface would.
    pub fn render_entry(&self, name: &EventName) -> Option<String> {
        let e = self.entries.get(name)?;
        let mut out = format!("event: {}\ncount: {}\nrank: {}\n", e.name, e.count, e.rank);
        match &e.description {
            Some(d) => out.push_str(&format!("description: {d}\n")),
            None => out.push_str("description: (none — add one!)\n"),
        }
        out.push_str("view path: ");
        let path: Vec<String> = e
            .name
            .view_path()
            .iter()
            .map(|(level, comp)| format!("{level}={comp}"))
            .collect();
        out.push_str(&path.join(" > "));
        out.push('\n');
        for (i, s) in e.samples.iter().enumerate() {
            out.push_str(&format!(
                "sample {}: user={} session={} details={:?}\n",
                i, s.user_id, s.session_id, s.details
            ));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventInitiator;
    use crate::time::Timestamp;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    fn sample_for(name: &str) -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            n(name),
            7,
            "s-7",
            "10.0.0.1",
            Timestamp(0),
        )
        .with_detail("k", "v")
    }

    fn catalog() -> ClientEventCatalog {
        let dict = EventDictionary::from_counts(vec![
            (n("web:home:home:stream:tweet:impression"), 900),
            (n("web:home:mentions:stream:avatar:profile_click"), 90),
            (n("iphone:home:home:stream:tweet:impression"), 300),
        ]);
        let samples = vec![
            sample_for("web:home:home:stream:tweet:impression"),
            sample_for("web:home:mentions:stream:avatar:profile_click"),
        ];
        ClientEventCatalog::build(5, &dict, &samples)
    }

    #[test]
    fn build_populates_counts_ranks_samples() {
        let c = catalog();
        assert_eq!(c.len(), 3);
        assert_eq!(c.day_index(), 5);
        let e = c.get(&n("web:home:home:stream:tweet:impression")).unwrap();
        assert_eq!(e.count, 900);
        assert_eq!(e.rank, 0);
        assert_eq!(e.samples.len(), 1);
    }

    #[test]
    fn search_by_pattern() {
        let c = catalog();
        let hits = c.search(&EventPattern::parse("*:impression").unwrap());
        assert_eq!(hits.len(), 2);
        let hits = c.search(&EventPattern::parse("web:home:mentions:*").unwrap());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn hierarchical_browse() {
        let c = catalog();
        assert_eq!(
            c.browse(&[]),
            vec![("iphone".to_string(), 300), ("web".to_string(), 990)]
        );
        assert_eq!(c.browse(&["web"]), vec![("home".to_string(), 990)]);
        assert_eq!(
            c.browse(&["web", "home"]),
            vec![("home".to_string(), 900), ("mentions".to_string(), 90)]
        );
    }

    #[test]
    fn descriptions_survive_rebuild() {
        let mut c = catalog();
        let name = n("web:home:home:stream:tweet:impression");
        assert!(c.describe(&name, "A tweet shown in the home timeline."));
        assert!(!c.describe(&n("a:b:c:d:e:zz"), "missing"));

        let dict = EventDictionary::from_counts(vec![(name.clone(), 1000)]);
        let next = c.rebuild(6, &dict, &[]);
        assert_eq!(next.day_index(), 6);
        assert_eq!(
            next.get(&name).unwrap().description.as_deref(),
            Some("A tweet shown in the home timeline.")
        );
    }

    #[test]
    fn frequency_listing_is_sorted() {
        let c = catalog();
        let freq: Vec<u64> = c.by_frequency().iter().map(|e| e.count).collect();
        assert_eq!(freq, vec![900, 300, 90]);
    }

    #[test]
    fn render_shows_view_path_and_samples() {
        let c = catalog();
        let text = c
            .render_entry(&n("web:home:mentions:stream:avatar:profile_click"))
            .unwrap();
        assert!(text.contains("count: 90"));
        assert!(text.contains("client=web > page=home > section=mentions"));
        assert!(text.contains("sample 0"));
        assert!(c.render_entry(&n("a:b:c:d:e:zz")).is_none());
    }
}
