//! Unified client events and session sequences — the paper's contribution.
//!
//! This crate implements §3 and §4 of *The Unified Logging Infrastructure
//! for Data Analytics at Twitter* (VLDB 2012):
//!
//! * [`event`]: the six-level hierarchical event namespace
//!   (`client:page:section:component:element:action`, Table 1), wildcard
//!   patterns for slicing it (`web:home:mentions:*`, `*:profile_click`),
//!   the event-initiator taxonomy, and the rejected arbitrary-depth tree
//!   alternative kept for the ablation study;
//! * [`client_event`]: the `ClientEvent` Thrift message (Table 2) with
//!   consistent `user_id` / `session_id` / `ip` / `timestamp` semantics and
//!   free-form key-value `event_details`, plus the dataflow loader;
//! * [`session`]: session sequences — the frequency-ranked event dictionary
//!   mapping names to Unicode code points (variable-length coding), the
//!   30-minute-inactivity sessionizer, the materialized relation
//!   `(user_id, session_id, ip, sequence, duration)`, and the two-pass
//!   daily materialization pipeline;
//! * [`catalog`]: the automatically generated, daily-rebuilt client event
//!   catalog (§4.3);
//! * [`legacy`]: the *before* picture — application-specific log formats
//!   with inconsistent field names, delimiters, and timestamp conventions,
//!   used as the baseline in the E9 experiment;
//! * [`json`]: a small JSON parser for the legacy frontend logs ("JSON
//!   structures … often nested several layers deep", §3.1).
//!
//! # Example
//!
//! ```
//! use uli_core::event::EventName;
//! use uli_core::session::{EventDictionary, Sessionizer};
//! use uli_core::client_event::ClientEvent;
//!
//! let name = EventName::parse("web:home:mentions:stream:avatar:profile_click").unwrap();
//! assert_eq!(name.action(), "profile_click");
//!
//! // A dictionary built from a frequency histogram assigns small code
//! // points to frequent events.
//! let dict = EventDictionary::from_counts(vec![
//!     (EventName::parse("web:home:home:stream:tweet:impression").unwrap(), 1000),
//!     (name.clone(), 10),
//! ]);
//! assert_eq!(dict.rank_of(&name), Some(1));
//! ```

pub mod anonymize;
pub mod catalog;
pub mod client_event;
pub mod columnar;
pub mod event;
pub mod json;
pub mod legacy;
pub mod scrape;
pub mod session;
pub mod time;

pub use anonymize::Anonymizer;
pub use catalog::ClientEventCatalog;
pub use client_event::{client_event_descriptor, ClientEvent, ClientEventLoader};
pub use columnar::{
    client_event_cells, client_event_from_group, name_dictionary, write_client_events_columnar,
    ClientEventColumnar, ClientEventLanding, CLIENT_EVENT_COLUMNAR,
};
pub use event::{EventInitiator, EventName, EventPattern};
pub use scrape::FormatScrape;
pub use session::{
    EventDictionary, MaterializeReport, SessionRecord, SessionSequence, SessionSequenceLoader,
    Sessionizer,
};
pub use time::Timestamp;
