//! Session reconstruction.
//!
//! "This is accomplished via a group-by on user id and session id;
//! following standard practices, we use a 30-minute inactivity interval to
//! delimit user sessions." (§4.2)

use std::collections::BTreeMap;

use crate::client_event::ClientEvent;
use crate::event::EventName;
use crate::time::{Timestamp, SESSION_GAP_MS};

/// A reconstructed session, pre-encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// The user.
    pub user_id: i64,
    /// The cookie-derived session id.
    pub session_id: String,
    /// IP address of the first event.
    pub ip: String,
    /// Timestamp of the first event.
    pub start: Timestamp,
    /// "Temporal interval between the first and last event in the session",
    /// in seconds.
    pub duration_secs: i64,
    /// Event names in timestamp order. Relative order is all that survives
    /// into the encoded sequence.
    pub events: Vec<EventName>,
}

/// Groups client events into sessions.
#[derive(Debug, Clone, Copy)]
pub struct Sessionizer {
    gap_ms: i64,
}

impl Default for Sessionizer {
    fn default() -> Self {
        Sessionizer {
            gap_ms: SESSION_GAP_MS,
        }
    }
}

impl Sessionizer {
    /// A sessionizer with the standard 30-minute inactivity threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sessionizer with a custom inactivity threshold (the ablation knob).
    pub fn with_gap_ms(gap_ms: i64) -> Self {
        assert!(gap_ms > 0, "inactivity gap must be positive");
        Sessionizer { gap_ms }
    }

    /// The inactivity threshold in milliseconds.
    pub fn gap_ms(&self) -> i64 {
        self.gap_ms
    }

    /// Reconstructs sessions: group by `(user_id, session_id)`, order by
    /// timestamp, split whenever the gap between successive events exceeds
    /// the inactivity threshold.
    ///
    /// Output order is deterministic: by user id, then session id, then
    /// start time.
    pub fn sessionize<I>(&self, events: I) -> Vec<SessionRecord>
    where
        I: IntoIterator<Item = ClientEvent>,
    {
        // The group-by.
        let mut groups: BTreeMap<(i64, String), Vec<ClientEvent>> = BTreeMap::new();
        for ev in events {
            groups
                .entry((ev.user_id, ev.session_id.clone()))
                .or_default()
                .push(ev);
        }
        let mut out = Vec::new();
        for ((user_id, session_id), mut evs) in groups {
            // Timestamps order events within a group; sort is stable so
            // arrival order breaks ties (the logs are only *partially*
            // time-ordered, §2, so this sort is mandatory).
            evs.sort_by_key(|e| e.timestamp);
            let mut current: Vec<ClientEvent> = Vec::new();
            for ev in evs {
                let split = current
                    .last()
                    .is_some_and(|prev| ev.timestamp.since(prev.timestamp) > self.gap_ms);
                if split {
                    out.push(Self::seal(
                        user_id,
                        &session_id,
                        std::mem::take(&mut current),
                    ));
                }
                current.push(ev);
            }
            if !current.is_empty() {
                out.push(Self::seal(user_id, &session_id, current));
            }
        }
        out
    }

    pub(crate) fn seal(user_id: i64, session_id: &str, events: Vec<ClientEvent>) -> SessionRecord {
        let first = events.first().expect("seal is called with events");
        let last = events.last().expect("non-empty");
        SessionRecord {
            user_id,
            session_id: session_id.to_string(),
            ip: first.ip.clone(),
            start: first.timestamp,
            duration_secs: last.timestamp.since(first.timestamp) / 1000,
            events: events.iter().map(|e| e.name.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventInitiator;

    fn ev(user: i64, sid: &str, t_ms: i64, action: &str) -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap(),
            user,
            sid,
            "10.0.0.1",
            Timestamp(t_ms),
        )
    }

    #[test]
    fn groups_by_user_and_session() {
        let events = vec![
            ev(1, "a", 0, "impression"),
            ev(2, "b", 10, "impression"),
            ev(1, "a", 20, "click"),
        ];
        let sessions = Sessionizer::new().sessionize(events);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].user_id, 1);
        assert_eq!(sessions[0].events.len(), 2);
        assert_eq!(sessions[1].user_id, 2);
    }

    #[test]
    fn orders_events_by_timestamp_within_session() {
        // Arrive out of order, as files from aggregators do.
        let events = vec![ev(1, "a", 5000, "click"), ev(1, "a", 1000, "impression")];
        let sessions = Sessionizer::new().sessionize(events);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].events[0].action(), "impression");
        assert_eq!(sessions[0].events[1].action(), "click");
        assert_eq!(sessions[0].duration_secs, 4);
    }

    #[test]
    fn thirty_minute_gap_splits_sessions() {
        let gap = SESSION_GAP_MS;
        let events = vec![
            ev(1, "a", 0, "impression"),
            ev(1, "a", gap, "click"), // exactly the gap: same session
            ev(1, "a", 2 * gap + 1, "follow"), // gap exceeded: new session
        ];
        let sessions = Sessionizer::new().sessionize(events);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].events.len(), 2);
        assert_eq!(sessions[1].events.len(), 1);
        assert_eq!(sessions[1].start, Timestamp(2 * gap + 1));
    }

    #[test]
    fn custom_gap_changes_split_points() {
        let events = vec![ev(1, "a", 0, "impression"), ev(1, "a", 60_000, "click")];
        assert_eq!(Sessionizer::new().sessionize(events.clone()).len(), 1);
        assert_eq!(Sessionizer::with_gap_ms(30_000).sessionize(events).len(), 2);
    }

    #[test]
    fn same_session_id_different_users_do_not_merge() {
        let events = vec![ev(1, "shared", 0, "x"), ev(2, "shared", 0, "x")];
        assert_eq!(Sessionizer::new().sessionize(events).len(), 2);
    }

    #[test]
    fn duration_and_ip_come_from_first_event() {
        let mut e1 = ev(1, "a", 1000, "impression");
        e1.ip = "1.1.1.1".into();
        let mut e2 = ev(1, "a", 31_000, "click");
        e2.ip = "2.2.2.2".into();
        let sessions = Sessionizer::new().sessionize(vec![e2, e1]);
        assert_eq!(sessions[0].ip, "1.1.1.1");
        assert_eq!(sessions[0].duration_secs, 30);
    }

    #[test]
    fn empty_input() {
        assert!(Sessionizer::new().sessionize(Vec::new()).is_empty());
    }

    #[test]
    fn single_event_session_has_zero_duration() {
        let sessions = Sessionizer::new().sessionize(vec![ev(1, "a", 42, "x")]);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].duration_secs, 0);
        assert_eq!(sessions[0].events.len(), 1);
    }
}
