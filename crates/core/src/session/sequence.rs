//! The materialized session-sequence relation.
//!
//! "The following relation is materialized on HDFS (slightly simplified):
//! `user_id: long, session_id: string, ip: string, session_sequence:
//! string, duration: int`" (§4.2). Other than overall duration, sequences
//! preserve no temporal information — an explicit design choice for compact
//! encoding.

use uli_dataflow::{DataflowResult, Loader, Tuple, Value};
use uli_thrift::{CompactReader, CompactWriter, ThriftError, ThriftRecord, ThriftResult};

use super::dictionary::EventDictionary;
use super::sessionize::SessionRecord;

/// One materialized session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSequence {
    /// The user.
    pub user_id: i64,
    /// The cookie-derived session id.
    pub session_id: String,
    /// IP address associated with the session.
    pub ip: String,
    /// The event names as dictionary code points — a valid Unicode string.
    pub sequence: String,
    /// Seconds between first and last event.
    pub duration_secs: i64,
}

impl SessionSequence {
    /// Encodes a reconstructed session with a dictionary. `None` if any
    /// event is missing from the dictionary (cannot happen when the
    /// dictionary was built from the same day's histogram).
    pub fn encode(record: &SessionRecord, dict: &EventDictionary) -> Option<SessionSequence> {
        Some(SessionSequence {
            user_id: record.user_id,
            session_id: record.session_id.clone(),
            ip: record.ip.clone(),
            sequence: dict.encode_sequence(record.events.iter())?,
            duration_secs: record.duration_secs,
        })
    }

    /// Number of events in the session.
    pub fn len(&self) -> usize {
        self.sequence.chars().count()
    }

    /// True if the session has no events (never materialized in practice).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

impl ThriftRecord for SessionSequence {
    fn write(&self, w: &mut CompactWriter) {
        w.struct_begin();
        w.field_i64(1, self.user_id);
        w.field_string(2, &self.session_id);
        w.field_string(3, &self.ip);
        w.field_string(4, &self.sequence);
        w.field_i64(5, self.duration_secs);
        w.struct_end();
    }

    fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
        r.struct_begin()?;
        let mut user_id = None;
        let mut session_id = None;
        let mut ip = None;
        let mut sequence = None;
        let mut duration = None;
        while let Some(h) = r.field_begin()? {
            match h.id {
                1 => user_id = Some(r.read_i64()?),
                2 => session_id = Some(r.read_string()?.to_owned()),
                3 => ip = Some(r.read_string()?.to_owned()),
                4 => sequence = Some(r.read_string()?.to_owned()),
                5 => duration = Some(r.read_i64()?),
                _ => r.skip(h.ttype)?,
            }
        }
        r.struct_end();
        let missing = |id: i16| ThriftError::MissingField {
            strukt: "SessionSequence",
            field_id: id,
        };
        Ok(SessionSequence {
            user_id: user_id.ok_or_else(|| missing(1))?,
            session_id: session_id.ok_or_else(|| missing(2))?,
            ip: ip.ok_or_else(|| missing(3))?,
            sequence: sequence.ok_or_else(|| missing(4))?,
            duration_secs: duration.ok_or_else(|| missing(5))?,
        })
    }
}

/// The schema produced by [`SessionSequenceLoader`].
pub const SESSION_SEQUENCE_SCHEMA: [&str; 5] =
    ["user_id", "session_id", "ip", "sequence", "duration"];

/// Dataflow loader — the paper's `SessionSequencesLoader()`, which
/// "abstracts over details of the physical layout … transparently parsing
/// each field in the tuple and handling decompression" (§5.2).
#[derive(Debug, Clone, Default)]
pub struct SessionSequenceLoader;

impl Loader for SessionSequenceLoader {
    fn name(&self) -> &'static str {
        "SessionSequencesLoader"
    }

    fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>> {
        let Ok(s) = SessionSequence::from_bytes(record) else {
            return Ok(None);
        };
        Ok(Some(vec![
            Value::Int(s.user_id),
            Value::Str(s.session_id),
            Value::Str(s.ip),
            Value::Str(s.sequence),
            Value::Int(s.duration_secs),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventName;
    use crate::time::Timestamp;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    fn dict() -> EventDictionary {
        EventDictionary::from_counts(vec![
            (n("web:home:home:stream:tweet:impression"), 100),
            (n("web:home:home:stream:tweet:click"), 10),
        ])
    }

    fn record() -> SessionRecord {
        SessionRecord {
            user_id: 7,
            session_id: "s-1".into(),
            ip: "10.1.2.3".into(),
            start: Timestamp(1000),
            duration_secs: 95,
            events: vec![
                n("web:home:home:stream:tweet:impression"),
                n("web:home:home:stream:tweet:impression"),
                n("web:home:home:stream:tweet:click"),
            ],
        }
    }

    #[test]
    fn encode_produces_compact_unicode() {
        let s = SessionSequence::encode(&record(), &dict()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.sequence.chars().next(), Some('\u{1}'));
        assert_eq!(s.duration_secs, 95);
        // Decoding recovers the event names in order.
        let d = dict();
        let decoded = d.decode_sequence(&s.sequence).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[2].action(), "click");
    }

    #[test]
    fn encode_fails_on_unknown_event() {
        let mut rec = record();
        rec.events.push(n("x:y:z:q:w:unknown"));
        assert_eq!(SessionSequence::encode(&rec, &dict()), None);
    }

    #[test]
    fn thrift_round_trip() {
        let s = SessionSequence::encode(&record(), &dict()).unwrap();
        let back = SessionSequence::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn sequence_is_much_smaller_than_the_session_events() {
        let rec = record();
        let s = SessionSequence::encode(&rec, &dict()).unwrap();
        let names_bytes: usize = rec.events.iter().map(|e| e.as_str().len()).sum();
        assert!(s.sequence.len() * 10 < names_bytes);
    }

    #[test]
    fn loader_produces_five_columns() {
        let s = SessionSequence::encode(&record(), &dict()).unwrap();
        let t = SessionSequenceLoader.parse(&s.to_bytes()).unwrap().unwrap();
        assert_eq!(t.len(), SESSION_SEQUENCE_SCHEMA.len());
        assert_eq!(t[0], Value::Int(7));
        assert_eq!(t[4], Value::Int(95));
    }

    #[test]
    fn loader_skips_garbage() {
        assert_eq!(SessionSequenceLoader.parse(b"junk").unwrap(), None);
    }
}
