//! The event dictionary: names ↔ Unicode code points.
//!
//! "We define the mapping between events and unicode code points (i.e., the
//! dictionary) such that more frequent events are assigned smaller code
//! points. This in essence captures a form of variable-length coding, as
//! smaller unicode points require fewer bytes to physically represent.
//! … Unicode comprises 1.1 million available code points, and it is
//! unlikely that the cardinality of our alphabet will exceed this." (§4.2)
//!
//! Rank *r* maps to the (r+1)-th valid Unicode scalar value, skipping the
//! surrogate block `U+D800..=U+DFFF` (surrogates are not scalar values and
//! cannot appear in a Rust `String` — the paper's "valid unicode string"
//! requirement made precise).

use std::collections::HashMap;

use crate::event::EventName;

/// Width of the surrogate gap that must be skipped.
const SURROGATE_GAP: u32 = 0x800;
/// First surrogate code point.
const SURROGATE_START: u32 = 0xD800;
/// Count of usable scalar values (all scalars except U+0000, which we
/// reserve so no event ever encodes to NUL).
pub const MAX_ALPHABET: u32 = 0x110000 - SURROGATE_GAP - 1;

/// Maps rank (0 = most frequent) to a Unicode scalar.
pub fn char_for_rank(rank: u32) -> Option<char> {
    if rank >= MAX_ALPHABET {
        return None;
    }
    let mut v = rank + 1;
    if v >= SURROGATE_START {
        v += SURROGATE_GAP;
    }
    char::from_u32(v)
}

/// Inverse of [`char_for_rank`].
pub fn rank_for_char(c: char) -> Option<u32> {
    let mut v = c as u32;
    if v == 0 {
        return None;
    }
    if v > SURROGATE_START {
        v -= SURROGATE_GAP;
    }
    Some(v - 1)
}

/// A frequency-ranked bijection between event names and code points.
#[derive(Debug, Clone, Default)]
pub struct EventDictionary {
    by_rank: Vec<EventName>,
    by_name: HashMap<EventName, u32>,
    counts: Vec<u64>,
}

impl EventDictionary {
    /// Builds a dictionary from an event histogram. More frequent events get
    /// smaller ranks; ties break lexicographically for determinism.
    pub fn from_counts(counts: Vec<(EventName, u64)>) -> EventDictionary {
        let mut entries = counts;
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut by_rank = Vec::with_capacity(entries.len());
        let mut by_name = HashMap::with_capacity(entries.len());
        let mut freq = Vec::with_capacity(entries.len());
        for (name, count) in entries {
            if by_name.contains_key(&name) {
                continue; // duplicate input names collapse to the first
            }
            // Rank is the current table size, not the input position —
            // skipped duplicates must not leave gaps.
            by_name.insert(name.clone(), by_rank.len() as u32);
            by_rank.push(name);
            freq.push(count);
        }
        EventDictionary {
            by_rank,
            by_name,
            counts: freq,
        }
    }

    /// Number of distinct events.
    pub fn len(&self) -> usize {
        self.by_rank.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    /// Rank of a name (0 = most frequent).
    pub fn rank_of(&self, name: &EventName) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Name at a rank.
    pub fn name_of(&self, rank: u32) -> Option<&EventName> {
        self.by_rank.get(rank as usize)
    }

    /// Observed count of the event at `rank` in the histogram this
    /// dictionary was built from.
    pub fn count_of(&self, rank: u32) -> Option<u64> {
        self.counts.get(rank as usize).copied()
    }

    /// The code point for a name.
    pub fn encode_name(&self, name: &EventName) -> Option<char> {
        self.rank_of(name).and_then(char_for_rank)
    }

    /// The name for a code point.
    pub fn decode_char(&self, c: char) -> Option<&EventName> {
        rank_for_char(c).and_then(|r| self.name_of(r))
    }

    /// Encodes a session's event names as a Unicode string. `None` if any
    /// name is not in the dictionary.
    pub fn encode_sequence<'a, I>(&self, names: I) -> Option<String>
    where
        I: IntoIterator<Item = &'a EventName>,
    {
        let mut out = String::new();
        for name in names {
            out.push(self.encode_name(name)?);
        }
        Some(out)
    }

    /// Decodes a session sequence back to event names. `None` if any code
    /// point is out of range.
    pub fn decode_sequence(&self, seq: &str) -> Option<Vec<&EventName>> {
        seq.chars().map(|c| self.decode_char(c)).collect()
    }

    /// Iterates `(rank, name, count)` in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &EventName, u64)> {
        self.by_rank
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(r, (n, c))| (r as u32, n, *c))
    }

    /// Serializes to warehouse records: one `count\tname` record per rank.
    pub fn to_records(&self) -> Vec<Vec<u8>> {
        self.iter()
            .map(|(_, name, count)| format!("{count}\t{name}").into_bytes())
            .collect()
    }

    /// Parses records produced by [`to_records`](Self::to_records). Records
    /// that fail to parse are skipped.
    pub fn from_records<I>(records: I) -> EventDictionary
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let counts = records
            .into_iter()
            .filter_map(|rec| {
                let text = String::from_utf8(rec).ok()?;
                let (count, name) = text.split_once('\t')?;
                Some((EventName::parse(name).ok()?, count.parse().ok()?))
            })
            .collect();
        EventDictionary::from_counts(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    fn dict() -> EventDictionary {
        EventDictionary::from_counts(vec![
            (n("web:home:home:stream:tweet:impression"), 5000),
            (n("web:home:home:stream:tweet:click"), 500),
            (n("web:home:mentions:stream:avatar:profile_click"), 50),
        ])
    }

    #[test]
    fn frequency_determines_rank() {
        let d = dict();
        assert_eq!(
            d.rank_of(&n("web:home:home:stream:tweet:impression")),
            Some(0)
        );
        assert_eq!(d.rank_of(&n("web:home:home:stream:tweet:click")), Some(1));
        assert_eq!(
            d.rank_of(&n("web:home:mentions:stream:avatar:profile_click")),
            Some(2)
        );
        assert_eq!(d.count_of(0), Some(5000));
    }

    #[test]
    fn frequent_events_encode_smaller() {
        let d = dict();
        let frequent = d
            .encode_name(&n("web:home:home:stream:tweet:impression"))
            .unwrap();
        let rare = d
            .encode_name(&n("web:home:mentions:stream:avatar:profile_click"))
            .unwrap();
        assert!((frequent as u32) < (rare as u32));
        assert_eq!(frequent.len_utf8(), 1);
    }

    #[test]
    fn ties_break_deterministically() {
        let d1 = EventDictionary::from_counts(vec![(n("b:a:a:a:a:x"), 10), (n("a:a:a:a:a:x"), 10)]);
        let d2 = EventDictionary::from_counts(vec![(n("a:a:a:a:a:x"), 10), (n("b:a:a:a:a:x"), 10)]);
        assert_eq!(d1.name_of(0), d2.name_of(0));
        assert_eq!(d1.name_of(0).unwrap().as_str(), "a:a:a:a:a:x");
    }

    #[test]
    fn char_mapping_is_bijective_across_the_surrogate_gap() {
        for rank in [0u32, 100, 0xD7FE, 0xD7FF, 0xD800, 100_000, MAX_ALPHABET - 1] {
            let c = char_for_rank(rank).unwrap_or_else(|| panic!("rank {rank} must map"));
            assert_eq!(rank_for_char(c), Some(rank), "rank {rank} via {c:?}");
        }
        assert_eq!(char_for_rank(MAX_ALPHABET), None);
        // The boundary ranks straddle the surrogate block.
        assert_eq!(char_for_rank(0xD7FE), Some('\u{D7FF}'));
        assert_eq!(char_for_rank(0xD7FF), Some('\u{E000}'));
    }

    #[test]
    fn nul_is_never_assigned() {
        assert_eq!(char_for_rank(0), Some('\u{1}'));
        assert_eq!(rank_for_char('\u{0}'), None);
    }

    #[test]
    fn sequences_round_trip() {
        let d = dict();
        let session = vec![
            n("web:home:home:stream:tweet:impression"),
            n("web:home:home:stream:tweet:impression"),
            n("web:home:home:stream:tweet:click"),
            n("web:home:mentions:stream:avatar:profile_click"),
        ];
        let encoded = d.encode_sequence(session.iter()).unwrap();
        assert_eq!(encoded.chars().count(), 4);
        let decoded = d.decode_sequence(&encoded).unwrap();
        let decoded: Vec<EventName> = decoded.into_iter().cloned().collect();
        assert_eq!(decoded, session);
    }

    #[test]
    fn unknown_names_and_chars_fail_closed() {
        let d = dict();
        assert_eq!(d.encode_name(&n("x:y:z:a:b:c")), None);
        assert_eq!(d.encode_sequence([&n("x:y:z:a:b:c")]), None);
        assert_eq!(d.decode_char('\u{FFFF}'), None);
        assert_eq!(d.decode_sequence("\u{FFFF}"), None);
    }

    #[test]
    fn record_serialization_round_trips() {
        let d = dict();
        let records = d.to_records();
        let back = EventDictionary::from_records(records);
        assert_eq!(back.len(), d.len());
        for (rank, name, count) in d.iter() {
            assert_eq!(back.name_of(rank), Some(name));
            assert_eq!(back.count_of(rank), Some(count));
        }
    }

    #[test]
    fn duplicate_names_collapse() {
        let d = EventDictionary::from_counts(vec![(n("a:a:a:a:a:x"), 10), (n("a:a:a:a:a:x"), 3)]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn empty_dictionary() {
        let d = EventDictionary::from_counts(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.encode_sequence([]), Some(String::new()));
        assert_eq!(d.decode_sequence(""), Some(vec![]));
    }
}
