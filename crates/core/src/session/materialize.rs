//! The daily materialization pipeline (§4.2).
//!
//! "Construction of session sequences proceeds in two steps. Once all logs
//! for one day have been successfully imported … Oink triggers a job that
//! scans the client event logs to compute a histogram of event counts.
//! These counts, as well as samples of each event type, are stored in a
//! known location in HDFS … In a second pass, sessions are reconstructed
//! from the raw client event logs … These sequences of event names are then
//! encoded using the dictionary."

use std::collections::BTreeMap;

use uli_thrift::ThriftRecord;
use uli_warehouse::{
    sniff_columnar, ColumnarFile, ExternalByteSorter, FileBlocks, HourlyPartition, MemoryTracker,
    Parallelism, ScanPool, Warehouse, WarehouseResult, WhPath,
};

use super::dictionary::EventDictionary;
use super::sequence::SessionSequence;
use super::sessionize::{SessionRecord, Sessionizer};
use crate::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
use crate::columnar::client_event_from_group;
use crate::event::EventName;
use crate::time::Timestamp;

/// Order-preserving byte key for the streaming sorter: sorting these keys
/// as raw bytes reproduces the batch output order `(user_id, session_id,
/// start)`. Signed fields flip their sign bit so two's complement orders
/// correctly; the session id NUL-escapes (`00 → 00 FF`, terminator
/// `00 00`) so a short id sorts before any extension of it.
fn session_sort_key(user_id: i64, session_id: &str, start: i64) -> Vec<u8> {
    let mut key = Vec::with_capacity(18 + session_id.len());
    key.extend_from_slice(&((user_id as u64) ^ (1 << 63)).to_be_bytes());
    for b in session_id.bytes() {
        if b == 0 {
            key.extend_from_slice(&[0x00, 0xff]);
        } else {
            key.push(b);
        }
    }
    key.extend_from_slice(&[0x00, 0x00]);
    key.extend_from_slice(&((start as u64) ^ (1 << 63)).to_be_bytes());
    key
}

/// The day directory of a category: `/logs/<cat>/YYYY/MM/DD`.
pub fn day_dir(category: &str, day_index: u64) -> WhPath {
    HourlyPartition::from_hour_index(category, day_index * 24)
        .main_dir()
        .parent()
        .expect("hour dirs have day parents")
}

/// Where a day's session sequences are materialized.
pub fn sequences_dir(day_index: u64) -> WhPath {
    let day = day_dir("session_sequences", day_index);
    // Reuse the calendar layout but under /session_sequences.
    WhPath::parse(&day.as_str().replacen("/logs/", "/", 1)).expect("constructed path is valid")
}

/// Where a day's dictionary, histogram, and samples live — the "known
/// location in HDFS" consumed by the client event catalog.
pub fn dictionary_dir(day_index: u64) -> WhPath {
    let day = day_dir("event_dictionary", day_index);
    WhPath::parse(&day.as_str().replacen("/logs/", "/", 1)).expect("constructed path is valid")
}

/// Outcome of one day's materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializeReport {
    /// The day processed.
    pub day_index: u64,
    /// Client events scanned (per pass).
    pub events: u64,
    /// Undecodable records skipped.
    pub skipped: u64,
    /// Distinct event names.
    pub distinct_events: u64,
    /// Sessions materialized.
    pub sessions: u64,
    /// Uncompressed bytes of the raw client event logs.
    pub raw_uncompressed_bytes: u64,
    /// Compressed (on-disk) bytes of the raw client event logs.
    pub raw_compressed_bytes: u64,
    /// Compressed (on-disk) bytes of the session sequence files.
    pub sequences_compressed_bytes: u64,
    /// Files written.
    pub files_written: u64,
    /// Sort runs spilled to scratch files (streaming path only; the batch
    /// path never spills and reports 0).
    pub spill_runs: u64,
    /// Bytes written to spill runs.
    pub spill_bytes: u64,
    /// Peak tracked memory of the streaming sorter, bytes (0 when
    /// unbudgeted or batch).
    pub mem_high_water_bytes: u64,
}

impl MaterializeReport {
    /// The paper's headline metric: raw on-disk size over sequence on-disk
    /// size ("about fifty times smaller than the original logs").
    pub fn compression_factor(&self) -> f64 {
        if self.sequences_compressed_bytes == 0 {
            return 0.0;
        }
        self.raw_compressed_bytes as f64 / self.sequences_compressed_bytes as f64
    }
}

/// The two-pass materializer.
pub struct Materializer {
    warehouse: Warehouse,
    sessionizer: Sessionizer,
    /// Worker threads for the scan and encode shards. Serial keeps the
    /// original single-threaded code path; any worker count produces
    /// byte-identical output (shards merge in scan order).
    parallelism: Parallelism,
    /// Samples of each event type retained for the catalog.
    samples_per_event: usize,
    /// Records per output part file.
    records_per_file: u64,
}

/// Sessions per parallel encode shard in pass 2. Output bytes do not depend
/// on this (shard results concatenate in order); it only balances work.
const ENCODE_CHUNK: usize = 1024;

/// One open client-event file in a sharded day scan, either layout.
enum DayScanHandle {
    Row(FileBlocks),
    Col(ColumnarFile),
}

impl Materializer {
    /// A materializer with the standard 30-minute sessionizer.
    pub fn new(warehouse: Warehouse) -> Materializer {
        Materializer {
            warehouse,
            sessionizer: Sessionizer::new(),
            parallelism: Parallelism::default(),
            samples_per_event: 3,
            records_per_file: 100_000,
        }
    }

    /// Overrides the sessionizer (ablation knob).
    pub fn with_sessionizer(mut self, s: Sessionizer) -> Materializer {
        self.sessionizer = s;
        self
    }

    /// Sets the scan/encode worker count. `Parallelism::serial()` restores
    /// the original single-threaded passes exactly.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Materializer {
        self.parallelism = parallelism;
        self
    }

    /// The configured parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Scans one hour partition, invoking `f` per decoded event. Returns
    /// `(events, skipped)` for the hour.
    fn scan_hour(&self, hour: u64, mut f: impl FnMut(ClientEvent)) -> WarehouseResult<(u64, u64)> {
        let mut events = 0;
        let mut skipped = 0;
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
        if !self.warehouse.exists(&dir) {
            return Ok((0, 0));
        }
        for file in self.warehouse.list_files_recursive(&dir)? {
            // Landings can mix layouts (the mover migrated mid-day, or a
            // backfill used the other format) — sniff per file.
            if sniff_columnar(&self.warehouse, &file)?.is_some() {
                let handle = ColumnarFile::open(&self.warehouse, &file)?;
                let all = vec![true; handle.columns()];
                for g in 0..handle.group_count() {
                    let group = handle.read_group(g, &all)?;
                    for row in 0..group.rows() {
                        match client_event_from_group(&handle, &group, row) {
                            Some(ev) => {
                                events += 1;
                                f(ev);
                            }
                            None => skipped += 1,
                        }
                    }
                }
                continue;
            }
            let mut reader = self.warehouse.open(&file)?;
            while let Some(record) = reader.next_record()? {
                match ClientEvent::from_bytes(record) {
                    Ok(ev) => {
                        events += 1;
                        f(ev);
                    }
                    Err(_) => skipped += 1,
                }
            }
        }
        Ok((events, skipped))
    }

    /// Scans one day of client events, invoking `f` per decoded event.
    fn scan_day(
        &self,
        day_index: u64,
        mut f: impl FnMut(ClientEvent),
    ) -> WarehouseResult<(u64, u64)> {
        let mut events = 0;
        let mut skipped = 0;
        for hour in day_index * 24..(day_index + 1) * 24 {
            let (e, s) = self.scan_hour(hour, &mut f)?;
            events += e;
            skipped += s;
        }
        Ok((events, skipped))
    }

    /// All client-event files of a day, in the order the serial scan visits
    /// them (hours ascending, files sorted within each hour).
    fn day_files(&self, day_index: u64) -> WarehouseResult<Vec<WhPath>> {
        let mut files = Vec::new();
        for hour in day_index * 24..(day_index + 1) * 24 {
            let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
            if !self.warehouse.exists(&dir) {
                continue;
            }
            files.extend(self.warehouse.list_files_recursive(&dir)?);
        }
        Ok(files)
    }

    /// Sharded day scan: every block of every file is one shard, folded by
    /// `fold` into a fresh `init()` state on a pool worker. Returns shard
    /// states **in scan order** (the serial scan's visit order) plus total
    /// decoded/skipped counts, so merging shard states front-to-back
    /// reproduces exactly what the serial fold would have seen.
    fn scan_day_sharded<T, I, F>(
        &self,
        day_index: u64,
        init: I,
        fold: F,
    ) -> WarehouseResult<(Vec<T>, u64, u64)>
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, ClientEvent) + Sync,
    {
        let files = self.day_files(day_index)?;
        let mut handles: Vec<DayScanHandle> = Vec::with_capacity(files.len());
        let mut work: Vec<(usize, usize)> = Vec::new();
        for file in &files {
            // Row files shard per block, columnar files per row group —
            // either way one work unit ≈ one map task.
            let hi = handles.len();
            if sniff_columnar(&self.warehouse, file)?.is_some() {
                let handle = ColumnarFile::open(&self.warehouse, file)?;
                work.extend((0..handle.group_count()).map(|g| (hi, g)));
                handles.push(DayScanHandle::Col(handle));
            } else {
                let handle = self.warehouse.open_blocks(file)?;
                work.extend((0..handle.block_count()).map(|bi| (hi, bi)));
                handles.push(DayScanHandle::Row(handle));
            }
        }
        let results = ScanPool::new(self.parallelism).map(work, |_, (hi, bi)| {
            let mut state = init();
            let mut events = 0u64;
            let mut skipped = 0u64;
            match &handles[hi] {
                // Borrowing visit: decoding reads the record in place, so the
                // sharded scan charges the same zero `alloc_bytes` as the
                // serial `next_record` scan — cost counters stay
                // worker-invariant.
                DayScanHandle::Row(handle) => {
                    handle.for_each_record(bi, |record| match ClientEvent::from_bytes(record) {
                        Ok(ev) => {
                            events += 1;
                            fold(&mut state, ev);
                        }
                        Err(_) => skipped += 1,
                    })?;
                }
                DayScanHandle::Col(handle) => {
                    let all = vec![true; handle.columns()];
                    let group = handle.read_group(bi, &all)?;
                    for row in 0..group.rows() {
                        match client_event_from_group(handle, &group, row) {
                            Some(ev) => {
                                events += 1;
                                fold(&mut state, ev);
                            }
                            None => skipped += 1,
                        }
                    }
                }
            }
            Ok::<_, uli_warehouse::WarehouseError>((state, events, skipped))
        });
        let mut states = Vec::with_capacity(results.len());
        let mut events = 0u64;
        let mut skipped = 0u64;
        for r in results {
            let (state, e, s) = r?;
            events += e;
            skipped += s;
            states.push(state);
        }
        Ok((states, events, skipped))
    }

    /// Pass 1: histogram + samples + dictionary, persisted under
    /// [`dictionary_dir`]. Returns the dictionary.
    ///
    /// With parallelism, per-shard histograms merge into one `BTreeMap` in
    /// scan order; counts are order-independent sums and samples keep the
    /// first `samples_per_event` occurrences in scan order, so the persisted
    /// dictionary and samples are byte-identical to a serial run. Rank order
    /// (count descending, ties by name ascending) is fixed by
    /// [`EventDictionary::from_counts`] and cannot depend on worker count.
    pub fn build_dictionary(&self, day_index: u64) -> WarehouseResult<EventDictionary> {
        let mut counts: BTreeMap<EventName, u64> = BTreeMap::new();
        let mut samples: BTreeMap<EventName, Vec<Vec<u8>>> = BTreeMap::new();
        let per_event = self.samples_per_event;
        if self.parallelism.is_serial() {
            self.scan_day(day_index, |ev| {
                *counts.entry(ev.name.clone()).or_insert(0) += 1;
                let bucket = samples.entry(ev.name.clone()).or_default();
                if bucket.len() < per_event {
                    bucket.push(ev.to_bytes());
                }
            })?;
        } else {
            type Shard = (BTreeMap<EventName, u64>, BTreeMap<EventName, Vec<Vec<u8>>>);
            let (shards, _, _) =
                self.scan_day_sharded(day_index, Shard::default, |(counts, samples), ev| {
                    *counts.entry(ev.name.clone()).or_insert(0) += 1;
                    let bucket = samples.entry(ev.name.clone()).or_default();
                    if bucket.len() < per_event {
                        bucket.push(ev.to_bytes());
                    }
                })?;
            for (shard_counts, shard_samples) in shards {
                for (name, n) in shard_counts {
                    *counts.entry(name).or_insert(0) += n;
                }
                for (name, bucket) in shard_samples {
                    let merged = samples.entry(name).or_default();
                    if merged.len() < per_event {
                        merged.extend(bucket);
                        merged.truncate(per_event);
                    }
                }
            }
        }
        let dict = EventDictionary::from_counts(counts.into_iter().collect());

        let dir = dictionary_dir(day_index);
        // Rebuild daily: drop yesterday's run of the same day if present.
        if self.warehouse.exists(&dir) {
            self.warehouse.delete_dir(&dir)?;
        }
        let mut w = self
            .warehouse
            .create(&dir.child("dictionary").expect("valid"))?;
        for rec in dict.to_records() {
            w.append_record(&rec);
        }
        w.finish()?;
        let mut w = self
            .warehouse
            .create(&dir.child("samples").expect("valid"))?;
        for bucket in samples.values() {
            for sample in bucket {
                w.append_record(sample);
            }
        }
        w.finish()?;
        Ok(dict)
    }

    /// Loads a previously persisted dictionary.
    pub fn load_dictionary(&self, day_index: u64) -> WarehouseResult<EventDictionary> {
        let file = dictionary_dir(day_index)
            .child("dictionary")
            .expect("valid");
        let records = self.warehouse.open(&file)?.read_all()?;
        Ok(EventDictionary::from_records(records))
    }

    /// Loads the persisted per-event samples (raw Thrift bytes).
    pub fn load_samples(&self, day_index: u64) -> WarehouseResult<Vec<ClientEvent>> {
        let file = dictionary_dir(day_index).child("samples").expect("valid");
        let records = self.warehouse.open(&file)?.read_all()?;
        Ok(records
            .iter()
            .filter_map(|r| ClientEvent::from_bytes(r).ok())
            .collect())
    }

    /// Parallel sessionization: events partition by a user-id hash, each
    /// shard sessionizes independently on the pool, and the shard outputs
    /// merge back into the serial output order.
    ///
    /// This is safe because a session never spans users — the group key is
    /// `(user_id, session_id)` — so hashing on user id puts every event of
    /// a group in exactly one shard. Each shard's output is already sorted
    /// by `(user_id, session_id)` (then start time within a group), and no
    /// group key appears in two shards, so a k-way merge on
    /// `(user_id, session_id)` reproduces the serial order byte for byte,
    /// independent of the worker count.
    fn sessionize_sharded(&self, events: Vec<ClientEvent>) -> Vec<SessionRecord> {
        let n = self.parallelism.workers().max(1);
        let mut shards: Vec<Vec<ClientEvent>> = (0..n).map(|_| Vec::new()).collect();
        for ev in events {
            // SplitMix-style mix so contiguous user ids spread over shards.
            let h = (ev.user_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            shards[(h >> 32) as usize % n].push(ev);
        }
        let sessionizer = self.sessionizer;
        let outs = ScanPool::new(self.parallelism)
            .map(shards, move |_, shard| sessionizer.sessionize(shard));

        // K-way merge by group key. Ties across shards are impossible (one
        // user, one shard), so the pick order is total and deterministic.
        let total = outs.iter().map(Vec::len).sum();
        let mut iters: Vec<_> = outs.into_iter().map(|o| o.into_iter().peekable()).collect();
        let mut merged = Vec::with_capacity(total);
        loop {
            let next = iters
                .iter_mut()
                .filter_map(|it| it.peek().map(|r| (r.user_id, r.session_id.clone())))
                .min();
            let Some(key) = next else { break };
            // Drain the whole group from its shard: sessions of one group
            // stay in shard-internal (start-time) order.
            for it in iters.iter_mut() {
                while it
                    .peek()
                    .is_some_and(|r| (r.user_id, r.session_id.as_str()) == (key.0, key.1.as_str()))
                {
                    merged.push(it.next().expect("peeked above"));
                }
            }
        }
        merged
    }

    /// Pass 2: reconstruct sessions, encode, and write the relation under
    /// [`sequences_dir`]. Requires the dictionary from pass 1.
    /// With parallelism, the scan shards per block (events concatenate in
    /// scan order, so sessionization sees the serial event order), the
    /// sessionize pass shards by user-id hash with a deterministic merge
    /// (see [`Self::sessionize_sharded`]), and the encode shards over fixed
    /// chunks of the session list; encoded records are written back in
    /// session order, so part files are byte-identical to a serial run.
    pub fn materialize_sequences(
        &self,
        day_index: u64,
        dict: &EventDictionary,
    ) -> WarehouseResult<MaterializeReport> {
        let mut all_events = Vec::new();
        let (events, skipped) = if self.parallelism.is_serial() {
            self.scan_day(day_index, |ev| all_events.push(ev))?
        } else {
            let (shards, events, skipped) =
                self.scan_day_sharded(day_index, Vec::new, |shard, ev| shard.push(ev))?;
            all_events = shards.into_iter().flatten().collect();
            (events, skipped)
        };
        let sessions = if self.parallelism.is_serial() {
            self.sessionizer.sessionize(all_events)
        } else {
            self.sessionize_sharded(all_events)
        };

        // Encode ahead of the write loop. `None` marks a session whose event
        // is missing from the dictionary (impossible when both passes saw
        // the same data; tolerated like the serial path).
        let encoded: Vec<Option<Vec<u8>>> = if self.parallelism.is_serial() {
            sessions
                .iter()
                .map(|s| SessionSequence::encode(s, dict).map(|seq| seq.to_bytes()))
                .collect()
        } else {
            let chunks: Vec<&[_]> = sessions.chunks(ENCODE_CHUNK).collect();
            ScanPool::new(self.parallelism)
                .map(chunks, |_, chunk| {
                    chunk
                        .iter()
                        .map(|s| SessionSequence::encode(s, dict).map(|seq| seq.to_bytes()))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
        };

        let dir = sequences_dir(day_index);
        if self.warehouse.exists(&dir) {
            self.warehouse.delete_dir(&dir)?;
        }
        let mut files_written = 0;
        let mut writer = None;
        let mut in_file = 0u64;
        let mut part = 0u64;
        let mut materialized = 0u64;
        for bytes in encoded {
            let Some(bytes) = bytes else {
                // Dictionary built from the same scan covers every event;
                // reaching here means passes saw different data.
                debug_assert!(false, "event missing from same-day dictionary");
                continue;
            };
            if writer.is_none() {
                let path = dir.child(&format!("part-{part:05}")).expect("valid");
                writer = Some(self.warehouse.create(&path)?);
                part += 1;
            }
            let w = writer.as_mut().expect("created above");
            w.append_record(&bytes);
            materialized += 1;
            in_file += 1;
            if in_file >= self.records_per_file {
                writer.take().expect("present").finish()?;
                files_written += 1;
                in_file = 0;
            }
        }
        if let Some(w) = writer.take() {
            w.finish()?;
            files_written += 1;
        } else {
            // Even an empty day leaves a marker directory so downstream jobs
            // can distinguish "no sessions" from "not yet materialized".
            self.warehouse.mkdirs(&dir)?;
        }

        let raw = self
            .warehouse
            .dir_meta(&day_dir(CLIENT_EVENTS_CATEGORY, day_index))
            .unwrap_or(uli_warehouse::FileMeta {
                blocks: 0,
                records: 0,
                compressed_bytes: 0,
                uncompressed_bytes: 0,
            });
        let seq_meta = self.warehouse.dir_meta(&dir)?;
        Ok(MaterializeReport {
            day_index,
            events,
            skipped,
            distinct_events: dict.len() as u64,
            sessions: materialized,
            raw_uncompressed_bytes: raw.uncompressed_bytes,
            raw_compressed_bytes: raw.compressed_bytes,
            sequences_compressed_bytes: seq_meta.compressed_bytes,
            files_written,
            spill_runs: 0,
            spill_bytes: 0,
            mem_high_water_bytes: 0,
        })
    }

    /// Streaming pass 2: identical output to [`Self::materialize_sequences`]
    /// without ever materializing the day's events or session list.
    ///
    /// Events are consumed one hour partition at a time. A bounded window of
    /// *open runs* (one per active `(user_id, session_id)` group) absorbs
    /// each hour's arrivals; once the hour watermark passes a run's last
    /// event by more than the inactivity gap, no future event can extend it
    /// (hour `H+1` events all have timestamps ≥ the watermark), so the run
    /// seals. Sealed sessions are dictionary-encoded immediately and fed to
    /// an external sorter keyed on `(user_id, session_id, start)` — the
    /// batch output order — which spills to scratch run files whenever
    /// `budget` is exceeded. Peak state is therefore one hour of arrivals +
    /// a ~`gap` window of open runs + the sorter's budget, independent of
    /// day size, and the part files come out byte-identical to the batch
    /// path at any worker count.
    pub fn materialize_sequences_streaming(
        &self,
        day_index: u64,
        dict: &EventDictionary,
        budget: Option<u64>,
    ) -> WarehouseResult<MaterializeReport> {
        let gap = self.sessionizer.gap_ms();
        let tracker = match budget {
            Some(b) => MemoryTracker::with_budget(b),
            None => MemoryTracker::unbounded(),
        };
        let mut sorter =
            ExternalByteSorter::new(self.warehouse.clone(), tracker.clone(), "sessionize");
        fn push_session(
            sorter: &mut ExternalByteSorter,
            user_id: i64,
            session_id: &str,
            run: Vec<ClientEvent>,
            dict: &EventDictionary,
        ) -> WarehouseResult<()> {
            let record = Sessionizer::seal(user_id, session_id, run);
            let Some(seq) = SessionSequence::encode(&record, dict) else {
                // Dictionary built from the same scan covers every event;
                // reaching here means passes saw different data.
                debug_assert!(false, "event missing from same-day dictionary");
                return Ok(());
            };
            let key = session_sort_key(record.user_id, &record.session_id, record.start.millis());
            sorter.push(key, seq.to_bytes())
        }

        let mut events = 0u64;
        let mut skipped = 0u64;
        let mut open: BTreeMap<(i64, String), Vec<ClientEvent>> = BTreeMap::new();
        for hour in day_index * 24..(day_index + 1) * 24 {
            let mut arrivals: BTreeMap<(i64, String), Vec<ClientEvent>> = BTreeMap::new();
            let (e, s) = self.scan_hour(hour, |ev| {
                arrivals
                    .entry((ev.user_id, ev.session_id.clone()))
                    .or_default()
                    .push(ev);
            })?;
            events += e;
            skipped += s;
            for ((user_id, session_id), mut new_evs) in arrivals {
                // Stable sort: equal timestamps keep arrival order, and all
                // prior hours' events sort strictly earlier, so appending to
                // the open run reproduces the batch group-wide stable sort.
                new_evs.sort_by_key(|ev| ev.timestamp);
                let run = open.entry((user_id, session_id.clone())).or_default();
                for ev in new_evs {
                    let split = run
                        .last()
                        .is_some_and(|prev| ev.timestamp.since(prev.timestamp) > gap);
                    if split {
                        push_session(&mut sorter, user_id, &session_id, std::mem::take(run), dict)?;
                    }
                    run.push(ev);
                }
            }
            // Bounded-window eviction: every event still to come has a
            // timestamp ≥ the watermark, so a run trailing it by more than
            // the gap is complete.
            let watermark = Timestamp::from_hour_index(hour + 1).millis();
            let expired: Vec<(i64, String)> = open
                .iter()
                .filter(|(_, run)| {
                    run.last()
                        .is_some_and(|last| watermark - last.timestamp.millis() > gap)
                })
                .map(|(k, _)| k.clone())
                .collect();
            for key in expired {
                let run = open.remove(&key).expect("selected above");
                push_session(&mut sorter, key.0, &key.1, run, dict)?;
            }
        }
        for ((user_id, session_id), run) in std::mem::take(&mut open) {
            push_session(&mut sorter, user_id, &session_id, run, dict)?;
        }

        let dir = sequences_dir(day_index);
        if self.warehouse.exists(&dir) {
            self.warehouse.delete_dir(&dir)?;
        }
        let mut sorted = sorter.finish()?;
        let mut files_written = 0;
        let mut writer = None;
        let mut in_file = 0u64;
        let mut part = 0u64;
        let mut materialized = 0u64;
        while let Some((_, bytes)) = sorted.next_entry()? {
            if writer.is_none() {
                let path = dir.child(&format!("part-{part:05}")).expect("valid");
                writer = Some(self.warehouse.create(&path)?);
                part += 1;
            }
            let w = writer.as_mut().expect("created above");
            w.append_record(&bytes);
            materialized += 1;
            in_file += 1;
            if in_file >= self.records_per_file {
                writer.take().expect("present").finish()?;
                files_written += 1;
                in_file = 0;
            }
        }
        drop(sorted);
        if let Some(w) = writer.take() {
            w.finish()?;
            files_written += 1;
        } else {
            self.warehouse.mkdirs(&dir)?;
        }

        let raw = self
            .warehouse
            .dir_meta(&day_dir(CLIENT_EVENTS_CATEGORY, day_index))
            .unwrap_or(uli_warehouse::FileMeta {
                blocks: 0,
                records: 0,
                compressed_bytes: 0,
                uncompressed_bytes: 0,
            });
        let seq_meta = self.warehouse.dir_meta(&dir)?;
        Ok(MaterializeReport {
            day_index,
            events,
            skipped,
            distinct_events: dict.len() as u64,
            sessions: materialized,
            raw_uncompressed_bytes: raw.uncompressed_bytes,
            raw_compressed_bytes: raw.compressed_bytes,
            sequences_compressed_bytes: seq_meta.compressed_bytes,
            files_written,
            spill_runs: tracker.spill_runs(),
            spill_bytes: tracker.spill_bytes(),
            mem_high_water_bytes: tracker.high_water(),
        })
    }

    /// Runs both passes for a day — what Oink schedules nightly.
    pub fn run_day(&self, day_index: u64) -> WarehouseResult<MaterializeReport> {
        let dict = self.build_dictionary(day_index)?;
        self.materialize_sequences(day_index, &dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventInitiator;
    use crate::time::Timestamp;

    fn n(s: &str) -> EventName {
        EventName::parse(s).unwrap()
    }

    /// Writes a day of synthetic client events into hour partitions.
    fn fixture(wh: &Warehouse, day: u64, users: i64, events_per_user: usize) -> u64 {
        let mut total = 0;
        for hour in day * 24..day * 24 + 2 {
            let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
            let mut w = wh.create(&dir.child("part-00000").unwrap()).unwrap();
            for u in 0..users {
                for i in 0..events_per_user {
                    let action = if i % 5 == 0 { "click" } else { "impression" };
                    let ev = ClientEvent::new(
                        EventInitiator::CLIENT_USER,
                        n(&format!("web:home:home:stream:tweet:{action}")),
                        u,
                        format!("s-{u}"),
                        "10.0.0.1",
                        Timestamp::from_hour_index(hour).plus(i as i64 * 1000),
                    );
                    w.append_record(&ev.to_bytes());
                    total += 1;
                }
            }
            w.finish().unwrap();
        }
        total
    }

    #[test]
    fn two_pass_pipeline_materializes_sessions() {
        let wh = Warehouse::new();
        let total = fixture(&wh, 0, 10, 20);
        let m = Materializer::new(wh.clone());
        let report = m.run_day(0).unwrap();
        assert_eq!(report.events, total);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.distinct_events, 2);
        // 10 users × 2 hours; the hour gap (> 30 min) splits sessions.
        assert_eq!(report.sessions, 20);
        assert!(report.files_written >= 1);
        assert!(wh.exists(&sequences_dir(0)));
    }

    #[test]
    fn sequences_are_dramatically_smaller() {
        let wh = Warehouse::new();
        fixture(&wh, 0, 20, 50);
        let report = Materializer::new(wh).run_day(0).unwrap();
        assert!(
            report.compression_factor() > 10.0,
            "expected a large compression factor, got {:.1}",
            report.compression_factor()
        );
    }

    #[test]
    fn dictionary_persists_and_reloads() {
        let wh = Warehouse::new();
        fixture(&wh, 0, 3, 10);
        let m = Materializer::new(wh);
        let dict = m.build_dictionary(0).unwrap();
        let reloaded = m.load_dictionary(0).unwrap();
        assert_eq!(reloaded.len(), dict.len());
        assert_eq!(reloaded.name_of(0), dict.name_of(0));
    }

    #[test]
    fn samples_are_capped_per_event() {
        let wh = Warehouse::new();
        fixture(&wh, 0, 5, 25);
        let m = Materializer::new(wh);
        m.build_dictionary(0).unwrap();
        let samples = m.load_samples(0).unwrap();
        // Two event types × at most 3 samples each.
        assert!(samples.len() <= 6);
        assert!(!samples.is_empty());
    }

    #[test]
    fn rerun_is_idempotent() {
        let wh = Warehouse::new();
        fixture(&wh, 0, 4, 10);
        let m = Materializer::new(wh);
        let r1 = m.run_day(0).unwrap();
        let r2 = m.run_day(0).unwrap();
        assert_eq!(r1.sessions, r2.sessions);
        assert_eq!(r1.sequences_compressed_bytes, r2.sequences_compressed_bytes);
    }

    #[test]
    fn empty_day_leaves_marker_directory() {
        let wh = Warehouse::new();
        let m = Materializer::new(wh.clone());
        let report = m.run_day(3).unwrap();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.events, 0);
        assert!(wh.exists(&sequences_dir(3)));
    }

    #[test]
    fn corrupt_records_are_counted_not_fatal() {
        let wh = Warehouse::new();
        fixture(&wh, 0, 2, 5);
        // Append a file of garbage into one hour.
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, 0).main_dir();
        let mut w = wh.create(&dir.child("garbage").unwrap()).unwrap();
        w.append_record(b"not a client event");
        w.finish().unwrap();
        let report = Materializer::new(wh).run_day(0).unwrap();
        assert_eq!(report.skipped, 1);
        assert!(report.sessions > 0);
    }

    /// Every persisted artifact of a day, as `(path, records)` pairs.
    fn day_artifacts(wh: &Warehouse, day: u64) -> Vec<(String, Vec<Vec<u8>>)> {
        let mut out = Vec::new();
        for dir in [sequences_dir(day), dictionary_dir(day)] {
            for file in wh.list_files_recursive(&dir).unwrap() {
                let records = wh.open(&file).unwrap().read_all().unwrap();
                out.push((file.as_str().to_string(), records));
            }
        }
        out
    }

    #[test]
    fn materialized_output_is_byte_identical_across_worker_counts() {
        // Enough users that the user-id hash spreads groups over every
        // shard, and a small file cap so multiple part files exist.
        let baseline = {
            let wh = Warehouse::new();
            fixture(&wh, 0, 24, 20);
            let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::serial());
            m.run_day(0).unwrap();
            day_artifacts(&wh, 0)
        };
        assert!(baseline.len() >= 3, "fixture must produce several files");
        for workers in [4usize, 8] {
            let wh = Warehouse::new();
            fixture(&wh, 0, 24, 20);
            let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
            let report = m.run_day(0).unwrap();
            assert!(report.sessions > 0);
            assert_eq!(
                day_artifacts(&wh, 0),
                baseline,
                "materialized files must be byte-identical at {workers} workers"
            );
        }
    }

    /// The same fixture events, landed columnar instead of row-format.
    fn fixture_columnar(wh: &Warehouse, day: u64, users: i64, events_per_user: usize) -> u64 {
        let mut total = 0;
        for hour in day * 24..day * 24 + 2 {
            let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
            let mut events = Vec::new();
            for u in 0..users {
                for i in 0..events_per_user {
                    let action = if i % 5 == 0 { "click" } else { "impression" };
                    events.push(ClientEvent::new(
                        EventInitiator::CLIENT_USER,
                        n(&format!("web:home:home:stream:tweet:{action}")),
                        u,
                        format!("s-{u}"),
                        "10.0.0.1",
                        Timestamp::from_hour_index(hour).plus(i as i64 * 1000),
                    ));
                    total += 1;
                }
            }
            crate::columnar::write_client_events_columnar(
                wh,
                &dir.child("part-00000").unwrap(),
                &events,
                true,
                64,
            )
            .unwrap();
        }
        total
    }

    #[test]
    fn columnar_landings_materialize_identically_to_row_landings() {
        // Same events, both layouts, every worker count: dictionary,
        // samples, and sequence files must all come out byte-identical.
        let baseline = {
            let wh = Warehouse::new();
            fixture(&wh, 0, 12, 20);
            Materializer::new(wh.clone())
                .with_parallelism(Parallelism::serial())
                .run_day(0)
                .unwrap();
            day_artifacts(&wh, 0)
        };
        for workers in [1usize, 4, 8] {
            let wh = Warehouse::new();
            let total = fixture_columnar(&wh, 0, 12, 20);
            let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
            let report = m.run_day(0).unwrap();
            assert_eq!(report.events, total);
            assert_eq!(report.skipped, 0);
            assert_eq!(
                day_artifacts(&wh, 0),
                baseline,
                "columnar landing must materialize identically at {workers} workers"
            );
        }
    }

    #[test]
    fn streaming_materialize_matches_batch_at_any_worker_count() {
        // Sessions that straddle hour boundaries (events 1s apart across
        // the hour edge) exercise the watermark window, and 24 users give
        // the batch shards real work. The streaming output must be
        // byte-identical to every batch configuration.
        let reference = {
            let wh = Warehouse::new();
            fixture(&wh, 0, 24, 20);
            let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::serial());
            m.run_day(0).unwrap();
            day_artifacts(&wh, 0)
        };
        for workers in [1usize, 4, 8] {
            let wh = Warehouse::new();
            fixture(&wh, 0, 24, 20);
            let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
            let dict = m.build_dictionary(0).unwrap();
            let report = m.materialize_sequences_streaming(0, &dict, None).unwrap();
            assert!(report.sessions > 0);
            assert_eq!(report.spill_runs, 0, "unbudgeted run must not spill");
            assert_eq!(
                day_artifacts(&wh, 0),
                reference,
                "streaming output diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn streaming_materialize_spills_under_budget_and_stays_identical() {
        let reference = {
            let wh = Warehouse::new();
            fixture(&wh, 0, 24, 20);
            Materializer::new(wh.clone()).run_day(0).unwrap();
            day_artifacts(&wh, 0)
        };
        let wh = Warehouse::new();
        fixture(&wh, 0, 24, 20);
        let m = Materializer::new(wh.clone());
        let dict = m.build_dictionary(0).unwrap();
        let budget = 2048;
        let report = m
            .materialize_sequences_streaming(0, &dict, Some(budget))
            .unwrap();
        assert!(report.spill_runs > 0, "tiny budget must force spills");
        assert!(report.spill_bytes > 0);
        assert!(report.mem_high_water_bytes <= budget);
        assert_eq!(day_artifacts(&wh, 0), reference);
        // Scratch runs are cleaned up even though we spilled.
        let spill_root = uli_warehouse::spill_root();
        assert!(
            !wh.exists(&spill_root) || wh.list_files_recursive(&spill_root).unwrap().is_empty(),
            "spill scratch files survived materialization"
        );
    }

    #[test]
    fn streaming_materialize_session_splits_match_batch_across_hours() {
        // A session idle for > gap inside the day must split identically in
        // both paths, including when the split crosses an hour boundary.
        let wh = Warehouse::new();
        let dir0 = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, 0).main_dir();
        let mut w = wh.create(&dir0.child("part-00000").unwrap()).unwrap();
        // Two bursts in hour 0 separated by > 30 min, then a burst in hour 2.
        for (t, action) in [
            (0, "click"),
            (1000, "impression"),
            (40 * 60 * 1000, "click"),
        ] {
            let ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                n(&format!("web:home:home:stream:tweet:{action}")),
                7,
                "s-weird",
                "10.0.0.1",
                Timestamp(t),
            );
            w.append_record(&ev.to_bytes());
        }
        w.finish().unwrap();
        let dir2 = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, 2).main_dir();
        let mut w = wh.create(&dir2.child("part-00000").unwrap()).unwrap();
        let ev = ClientEvent::new(
            EventInitiator::CLIENT_USER,
            n("web:home:home:stream:tweet:follow"),
            7,
            "s-weird",
            "10.0.0.1",
            Timestamp::from_hour_index(2).plus(5000),
        );
        w.append_record(&ev.to_bytes());
        w.finish().unwrap();

        let m = Materializer::new(wh.clone());
        let dict = m.build_dictionary(0).unwrap();
        let batch = m.materialize_sequences(0, &dict).unwrap();
        let batch_files = day_artifacts(&wh, 0);
        let streaming = m.materialize_sequences_streaming(0, &dict, None).unwrap();
        assert_eq!(batch.sessions, 3, "two idle gaps → three sessions");
        assert_eq!(streaming.sessions, batch.sessions);
        assert_eq!(day_artifacts(&wh, 0), batch_files);
    }

    #[test]
    fn sharded_sessionize_matches_serial_on_interleaved_users() {
        let wh = Warehouse::new();
        fixture(&wh, 0, 17, 9);
        let mut events = Vec::new();
        let serial = Materializer::new(wh.clone()).with_parallelism(Parallelism::serial());
        serial.scan_day(0, |ev| events.push(ev)).unwrap();
        let expected = serial.sessionizer.sessionize(events.clone());
        for workers in [2usize, 4, 8] {
            let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
            assert_eq!(
                m.sessionize_sharded(events.clone()),
                expected,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn directory_helpers_follow_the_calendar() {
        assert_eq!(
            day_dir(CLIENT_EVENTS_CATEGORY, 0).as_str(),
            "/logs/client_events/2012/08/01"
        );
        assert_eq!(sequences_dir(0).as_str(), "/session_sequences/2012/08/01");
        assert_eq!(dictionary_dir(1).as_str(), "/event_dictionary/2012/08/02");
    }
}
