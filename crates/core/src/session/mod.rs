//! Session sequences (§4): the pre-materialized digests of user sessions.

pub mod dictionary;
pub mod materialize;
pub mod sequence;
pub mod sessionize;

pub use dictionary::EventDictionary;
pub use materialize::{day_dir, dictionary_dir, sequences_dir, MaterializeReport, Materializer};
pub use sequence::{SessionSequence, SessionSequenceLoader, SESSION_SEQUENCE_SCHEMA};
pub use sessionize::{SessionRecord, Sessionizer};
