//! Application-specific logging: the "before" picture (§3.1).
//!
//! Before unified logging, "all applications, and in some cases, even parts
//! of applications, defined their own, custom structure". This module
//! recreates three representative categories with exactly the pathologies
//! the paper lists — conflicting field-name conventions (`userId` vs
//! `user_id` vs natural language), different timestamp resolutions, JSON
//! "nested several layers deep", and a category that never logged a session
//! id at all — so the E9 experiment can measure what those pathologies cost.

use std::collections::BTreeMap;
use std::fmt;

use uli_dataflow::{DataflowResult, Loader, Tuple, Value};

use crate::client_event::ClientEvent;
use crate::json::Json;
use crate::time::Timestamp;

/// The three legacy Scribe categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LegacyCategory {
    /// Frontend logs: deeply nested JSON, `userId` in camelCase, timestamps
    /// in *seconds* (losing millisecond ordering).
    WebFrontend,
    /// Search backend: tab-separated values, snake_case, millisecond
    /// timestamps — but **no session id was ever logged**.
    SearchBackend,
    /// Mobile client: "natural language" log lines where phrases serve as
    /// the delimiters.
    MobileClient,
}

impl LegacyCategory {
    /// All legacy categories.
    pub const ALL: [LegacyCategory; 3] = [
        LegacyCategory::WebFrontend,
        LegacyCategory::SearchBackend,
        LegacyCategory::MobileClient,
    ];

    /// The Scribe category string ("many non-intuitively named", §3.1 —
    /// these names deliberately do not reveal their contents).
    pub fn category_name(self) -> &'static str {
        match self {
            LegacyCategory::WebFrontend => "rainbird",
            LegacyCategory::SearchBackend => "quail_feed",
            LegacyCategory::MobileClient => "m5_events",
        }
    }

    /// Encodes a ground-truth event in this category's native format.
    pub fn encode(self, ev: &ClientEvent) -> Vec<u8> {
        let action = ev.name.action();
        match self {
            LegacyCategory::WebFrontend => {
                // Nested JSON; note userId casing and seconds resolution.
                let mut target = BTreeMap::new();
                target.insert("kind".to_string(), Json::String("tweet".into()));
                let mut evt = BTreeMap::new();
                evt.insert("action".to_string(), Json::String(action.to_string()));
                evt.insert("page".to_string(), Json::String(ev.name.page().to_string()));
                evt.insert("target".to_string(), Json::Object(target));
                let mut root = BTreeMap::new();
                root.insert("evt".to_string(), Json::Object(evt));
                root.insert("userId".to_string(), Json::Number(ev.user_id as f64));
                root.insert("sess".to_string(), Json::String(ev.session_id.clone()));
                root.insert(
                    "ts".to_string(),
                    Json::Number((ev.timestamp.millis() / 1000) as f64),
                );
                Json::Object(root).to_string().into_bytes()
            }
            LegacyCategory::SearchBackend => {
                // TSV; millisecond timestamps; no session id.
                format!(
                    "{}\t{}\t{}\t{}",
                    ev.user_id,
                    ev.timestamp.millis(),
                    action,
                    ev.ip
                )
                .into_bytes()
            }
            LegacyCategory::MobileClient => {
                // "Natural language" with phrase delimiters.
                format!(
                    "User {} performed {} on {} at {} [session {}]",
                    ev.user_id,
                    action,
                    ev.name.element(),
                    ev.timestamp.millis(),
                    ev.session_id
                )
                .into_bytes()
            }
        }
    }

    /// Decodes a record of this category into a normalized event, absorbing
    /// the per-category quirks. `None` for unparseable records.
    pub fn decode(self, record: &[u8]) -> Option<LegacyEvent> {
        let text = std::str::from_utf8(record).ok()?;
        match self {
            LegacyCategory::WebFrontend => {
                let j = Json::parse(text).ok()?;
                Some(LegacyEvent {
                    user_id: j.get("userId")?.as_f64()? as i64,
                    session_id: j.get("sess").and_then(Json::as_str).map(str::to_owned),
                    // Seconds → milliseconds: sub-second ordering is gone.
                    timestamp: Timestamp((j.get("ts")?.as_f64()? as i64) * 1000),
                    action: j.get_path("evt.action")?.as_str()?.to_owned(),
                })
            }
            LegacyCategory::SearchBackend => {
                let mut parts = text.split('\t');
                let user_id = parts.next()?.parse().ok()?;
                let ts: i64 = parts.next()?.parse().ok()?;
                let action = parts.next()?.to_owned();
                Some(LegacyEvent {
                    user_id,
                    session_id: None,
                    timestamp: Timestamp(ts),
                    action,
                })
            }
            LegacyCategory::MobileClient => {
                let rest = text.strip_prefix("User ")?;
                let (user, rest) = rest.split_once(" performed ")?;
                let (action, rest) = rest.split_once(" on ")?;
                let (_element, rest) = rest.split_once(" at ")?;
                let (ts, rest) = rest.split_once(" [session ")?;
                let session = rest.strip_suffix(']')?;
                Some(LegacyEvent {
                    user_id: user.parse().ok()?,
                    session_id: Some(session.to_owned()),
                    timestamp: Timestamp(ts.parse().ok()?),
                    action: action.to_owned(),
                })
            }
        }
    }
}

impl fmt::Display for LegacyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.category_name())
    }
}

/// An event recovered from a legacy log, normalized as far as the format
/// allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyEvent {
    /// The user (every category managed to log this, under three names).
    pub user_id: i64,
    /// Session id — absent where the category never logged one.
    pub session_id: Option<String>,
    /// Timestamp, at whatever resolution the category preserved.
    pub timestamp: Timestamp,
    /// The action string (no hierarchy; legacy logs predate the namespace).
    pub action: String,
}

/// Dataflow loader for one legacy category. Schema:
/// `user_id, session_id, timestamp, action` (session_id may be `Null`).
#[derive(Debug, Clone, Copy)]
pub struct LegacyLoader {
    category: LegacyCategory,
}

/// The schema produced by [`LegacyLoader`].
pub const LEGACY_SCHEMA: [&str; 4] = ["user_id", "session_id", "timestamp", "action"];

impl LegacyLoader {
    /// A loader for `category`.
    pub fn new(category: LegacyCategory) -> LegacyLoader {
        LegacyLoader { category }
    }
}

impl Loader for LegacyLoader {
    fn name(&self) -> &'static str {
        "LegacyLoader"
    }

    fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>> {
        let Some(ev) = self.category.decode(record) else {
            return Ok(None);
        };
        Ok(Some(vec![
            Value::Int(ev.user_id),
            ev.session_id.map_or(Value::Null, Value::Str),
            Value::Int(ev.timestamp.millis()),
            Value::Str(ev.action),
        ]))
    }
}

/// Best-effort sessionization for legacy events: since one category lacks
/// session ids entirely, the only cross-category key is the user id, and
/// sessions must be approximated by inactivity gaps alone. This loses
/// concurrent sessions (two devices at once merge) — the inaccuracy E9
/// quantifies against ground truth.
pub fn approximate_sessions(
    mut events: Vec<LegacyEvent>,
    gap_ms: i64,
) -> Vec<(i64, Vec<LegacyEvent>)> {
    events.sort_by_key(|e| (e.user_id, e.timestamp));
    let mut out: Vec<(i64, Vec<LegacyEvent>)> = Vec::new();
    for ev in events {
        let start_new = match out.last() {
            Some((uid, evs)) => {
                *uid != ev.user_id
                    || evs
                        .last()
                        .is_some_and(|p| ev.timestamp.since(p.timestamp) > gap_ms)
            }
            None => true,
        };
        if start_new {
            out.push((ev.user_id, vec![ev]));
        } else {
            out.last_mut().expect("checked above").1.push(ev);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventInitiator, EventName};

    fn ground_truth(user: i64, t_ms: i64, action: &str) -> ClientEvent {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap(),
            user,
            format!("s-{user}"),
            "10.0.0.1",
            Timestamp(t_ms),
        )
    }

    #[test]
    fn each_category_round_trips_what_it_preserves() {
        let ev = ground_truth(42, 1_345_500_123_456, "click");
        for cat in LegacyCategory::ALL {
            let rec = cat.encode(&ev);
            let got = cat
                .decode(&rec)
                .unwrap_or_else(|| panic!("{cat} failed to decode its own output"));
            assert_eq!(got.user_id, 42, "{cat}");
            assert_eq!(got.action, "click", "{cat}");
        }
    }

    #[test]
    fn frontend_loses_millisecond_resolution() {
        let ev = ground_truth(1, 1_345_500_123_456, "click");
        let got = LegacyCategory::WebFrontend
            .decode(&LegacyCategory::WebFrontend.encode(&ev))
            .unwrap();
        assert_eq!(got.timestamp.millis(), 1_345_500_123_000);
    }

    #[test]
    fn search_backend_has_no_session_id() {
        let ev = ground_truth(1, 1000, "search");
        let got = LegacyCategory::SearchBackend
            .decode(&LegacyCategory::SearchBackend.encode(&ev))
            .unwrap();
        assert_eq!(got.session_id, None);
        // Mobile keeps it.
        let got = LegacyCategory::MobileClient
            .decode(&LegacyCategory::MobileClient.encode(&ev))
            .unwrap();
        assert_eq!(got.session_id.as_deref(), Some("s-1"));
    }

    #[test]
    fn category_names_are_unintuitive_on_purpose() {
        // The resource-discovery problem: nothing in the name says "search".
        assert_eq!(LegacyCategory::SearchBackend.category_name(), "quail_feed");
    }

    #[test]
    fn decode_rejects_garbage() {
        for cat in LegacyCategory::ALL {
            assert_eq!(cat.decode(b"complete nonsense"), None, "{cat}");
            assert_eq!(cat.decode(&[0xff, 0x00]), None, "{cat}");
        }
    }

    #[test]
    fn loader_normalizes_with_null_sessions() {
        let ev = ground_truth(9, 5000, "click");
        let rec = LegacyCategory::SearchBackend.encode(&ev);
        let t = LegacyLoader::new(LegacyCategory::SearchBackend)
            .parse(&rec)
            .unwrap()
            .unwrap();
        assert_eq!(t[0], Value::Int(9));
        assert_eq!(t[1], Value::Null);
        assert_eq!(t[3], Value::str("click"));
    }

    #[test]
    fn approximate_sessionization_merges_concurrent_sessions() {
        // Ground truth: user 1 has TWO concurrent sessions (laptop+phone).
        let make = |sid: &str, t: i64| LegacyEvent {
            user_id: 1,
            session_id: Some(sid.to_string()),
            timestamp: Timestamp(t),
            action: "click".into(),
        };
        let events = vec![
            make("laptop", 0),
            make("phone", 10_000),
            make("laptop", 20_000),
            make("phone", 30_000),
        ];
        let approx = approximate_sessions(events, 30 * 60 * 1000);
        // The approximation cannot tell them apart: one merged session.
        assert_eq!(approx.len(), 1);
        assert_eq!(approx[0].1.len(), 4);
    }

    #[test]
    fn approximate_sessionization_splits_on_gaps() {
        let make = |t: i64| LegacyEvent {
            user_id: 1,
            session_id: None,
            timestamp: Timestamp(t),
            action: "x".into(),
        };
        let gap = 30 * 60 * 1000;
        let approx = approximate_sessions(vec![make(0), make(gap + 1), make(gap + 2)], gap);
        assert_eq!(approx.len(), 2);
    }
}
