//! Columnar warehouse layout for client events.
//!
//! The row-format warehouse stores one Thrift-encoded [`ClientEvent`] per
//! record, so even a query touching one field decompresses and walks every
//! byte of every record. This module defines the columnar-by-default
//! alternative: each of the seven Table 2 fields becomes its own column
//! chunk, the event-name column is dictionary-encoded with the same
//! frequency-ranked code assignment the session sequences use (§4.1 — small
//! codes for frequent events), and name predicates compare integer codes
//! instead of strings.
//!
//! Cell encodings are deliberately trivial — fixed-width integers and raw
//! UTF-8 — because the interesting compression already happens at two other
//! layers: the dictionary replaces repeated name strings with varint codes,
//! and the warehouse block compressor squeezes each column chunk (now full
//! of same-shaped values) far better than it does interleaved rows.

use std::collections::BTreeMap;

use uli_dataflow::{ColumnarCodec, Value};
use uli_thrift::ThriftRecord;
use uli_warehouse::{
    tag_hash, ColumnCell, ColumnGroup, ColumnarFile, ColumnarFileWriter, ColumnarLanding,
    Warehouse, WarehouseResult, WhPath,
};

use crate::client_event::ClientEvent;
use crate::event::{EventInitiator, EventName};
use crate::session::EventDictionary;
use crate::time::Timestamp;

/// Column index of the dictionary-encoded event name.
pub const NAME_COLUMN: usize = 1;

/// Rows per sealed row group. Matches the spirit of the row writer's block
/// target: large enough to amortize per-group footers, small enough that
/// zone maps prune at sub-file granularity.
pub const DEFAULT_ROWS_PER_GROUP: usize = 512;

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflows u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encodes one event as its seven column cells, index-aligned with
/// [`CLIENT_EVENT_SCHEMA`](crate::client_event::CLIENT_EVENT_SCHEMA):
/// initiator as its one-byte wire code, name as raw UTF-8 (the writer's
/// dictionary substitutes codes for known names), the two integers as
/// fixed 8-byte little-endian, the two strings raw, and details as a
/// varint-counted sequence of length-prefixed key/value pairs in map order.
pub fn client_event_cells(ev: &ClientEvent) -> [Vec<u8>; 7] {
    let mut details = Vec::new();
    write_varint(&mut details, ev.details.len() as u64);
    for (k, v) in &ev.details {
        write_varint(&mut details, k.len() as u64);
        details.extend_from_slice(k.as_bytes());
        write_varint(&mut details, v.len() as u64);
        details.extend_from_slice(v.as_bytes());
    }
    [
        vec![ev.initiator.code() as u8],
        ev.name.as_str().as_bytes().to_vec(),
        ev.user_id.to_le_bytes().to_vec(),
        ev.session_id.as_bytes().to_vec(),
        ev.ip.as_bytes().to_vec(),
        ev.timestamp.millis().to_le_bytes().to_vec(),
        details,
    ]
}

/// Columnar codec for client events: decodes the cells written by
/// [`client_event_cells`] into exactly the tuple
/// [`ClientEventLoader::parse`](crate::client_event::ClientEventLoader)
/// produces from a Thrift record, so row and columnar scans of the same
/// events are byte-identical. Any malformed cell returns `None`, dropping
/// the whole row — the columnar analogue of the tolerant row loader
/// skipping an undecodable record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientEventColumnar;

/// Shared codec instance for [`Loader::columnar`](uli_dataflow::Loader)
/// implementations, which hand out `&'static dyn ColumnarCodec`.
pub static CLIENT_EVENT_COLUMNAR: ClientEventColumnar = ClientEventColumnar;

impl ColumnarCodec for ClientEventColumnar {
    fn columns(&self) -> usize {
        7
    }

    fn decode(&self, col: usize, bytes: &[u8]) -> Option<Value> {
        match col {
            0 => {
                let [code] = bytes else { return None };
                let initiator = EventInitiator::from_code(*code as i8)?;
                Some(Value::Str(initiator.to_string()))
            }
            1 => {
                let s = std::str::from_utf8(bytes).ok()?;
                // Same validation as the Thrift readers: a string that is
                // not a six-level name drops the record.
                EventName::is_valid(s).then(|| Value::Str(s.to_string()))
            }
            2 | 5 => {
                let fixed: [u8; 8] = bytes.try_into().ok()?;
                Some(Value::Int(i64::from_le_bytes(fixed)))
            }
            3 | 4 => {
                let s = std::str::from_utf8(bytes).ok()?;
                Some(Value::Str(s.to_string()))
            }
            6 => {
                let details = parse_details(bytes)?;
                Some(Value::Map(
                    details
                        .into_iter()
                        .map(|(k, v)| (k, Value::Str(v)))
                        .collect(),
                ))
            }
            _ => None,
        }
    }
}

fn parse_details(bytes: &[u8]) -> Option<BTreeMap<String, String>> {
    let mut pos = 0usize;
    let count = read_varint(bytes, &mut pos)?;
    // A count can't exceed the remaining bytes (each pair costs at least
    // two length bytes) — reject before reserving.
    if count > bytes.len() as u64 {
        return None;
    }
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let k = read_slice(bytes, &mut pos)?;
        let v = read_slice(bytes, &mut pos)?;
        map.insert(k.to_string(), v.to_string());
    }
    (pos == bytes.len()).then_some(map)
}

fn cell_bytes<'a>(
    file: &'a ColumnarFile,
    group: &'a ColumnGroup,
    col: usize,
    row: usize,
) -> Option<&'a [u8]> {
    match group.cell(col, row)? {
        ColumnCell::Bytes(b) => Some(b),
        ColumnCell::Code(c) => file.dictionary_value(c),
    }
}

/// Decodes one row of a fully projected group back into a [`ClientEvent`]
/// struct — the form the materializer and log mover work in, as opposed to
/// the dataflow tuple the codec produces. `None` drops the row, exactly as
/// `ClientEvent::from_bytes` failing drops a row-format record.
pub fn client_event_from_group(
    file: &ColumnarFile,
    group: &ColumnGroup,
    row: usize,
) -> Option<ClientEvent> {
    let [code] = cell_bytes(file, group, 0, row)? else {
        return None;
    };
    let initiator = EventInitiator::from_code(*code as i8)?;
    let name =
        EventName::parse(std::str::from_utf8(cell_bytes(file, group, 1, row)?).ok()?).ok()?;
    let user_id = i64::from_le_bytes(cell_bytes(file, group, 2, row)?.try_into().ok()?);
    let session_id = std::str::from_utf8(cell_bytes(file, group, 3, row)?).ok()?;
    let ip = std::str::from_utf8(cell_bytes(file, group, 4, row)?).ok()?;
    let millis = i64::from_le_bytes(cell_bytes(file, group, 5, row)?.try_into().ok()?);
    let details = parse_details(cell_bytes(file, group, 6, row)?)?;
    Some(ClientEvent {
        initiator,
        name,
        user_id,
        session_id: session_id.to_string(),
        ip: ip.to_string(),
        timestamp: Timestamp(millis),
        details,
    })
}

fn read_slice<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    let len = read_varint(bytes, pos)?;
    let end = pos.checked_add(usize::try_from(len).ok()?)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    std::str::from_utf8(slice).ok()
}

/// Builds the per-file name dictionary: frequency-ranked over this file's
/// events via [`EventDictionary::from_counts`], entries in rank order so
/// entry index = code. Frequent names get small codes, exactly the
/// variable-length-coding argument the session dictionary makes.
pub fn name_dictionary(events: &[ClientEvent]) -> Vec<Vec<u8>> {
    let mut counts: BTreeMap<&EventName, u64> = BTreeMap::new();
    for ev in events {
        *counts.entry(&ev.name).or_insert(0) += 1;
    }
    let dict =
        EventDictionary::from_counts(counts.into_iter().map(|(n, c)| (n.clone(), c)).collect());
    dict.iter()
        .map(|(_, name, _)| name.as_str().as_bytes().to_vec())
        .collect()
}

/// Writes events to one columnar file. With `dictionary` set, the name
/// column is dictionary-encoded from this file's own frequency histogram;
/// without, every name is stored inline (the E19 ablation arm). Every row
/// carries the same zone annotations as the row-format writer — timestamp
/// as the key dimension, event name as the tag dimension — so zone-map
/// pruning works identically across layouts.
pub fn write_client_events_columnar(
    warehouse: &Warehouse,
    path: &WhPath,
    events: &[ClientEvent],
    dictionary: bool,
    rows_per_group: usize,
) -> WarehouseResult<u64> {
    let entries = dictionary.then(|| name_dictionary(events));
    let mut w = ColumnarFileWriter::create(
        warehouse,
        path,
        7,
        rows_per_group,
        entries.as_deref().map(|e| (NAME_COLUMN, e)),
    )?;
    for ev in events {
        let cells = client_event_cells(ev);
        let refs: Vec<&[u8]> = cells.iter().map(Vec::as_slice).collect();
        w.append_row_annotated(
            &refs,
            ev.timestamp.millis(),
            tag_hash(ev.name.as_str().as_bytes()),
        );
    }
    w.finish()?;
    Ok(events.len() as u64)
}

/// The log mover's columnar landing for the client-events category:
/// Thrift payloads decode to [`ClientEvent`]s and land through
/// [`write_client_events_columnar`]; payloads that fail to decode are
/// reported back so the mover keeps them in a row-format sibling file.
#[derive(Debug, Clone)]
pub struct ClientEventLanding {
    /// Dictionary-encode the name column from each file's own histogram.
    pub dictionary: bool,
    /// Rows per sealed row group.
    pub rows_per_group: usize,
}

impl Default for ClientEventLanding {
    fn default() -> Self {
        ClientEventLanding {
            dictionary: true,
            rows_per_group: DEFAULT_ROWS_PER_GROUP,
        }
    }
}

impl ColumnarLanding for ClientEventLanding {
    fn write_file(
        &self,
        warehouse: &Warehouse,
        path: &WhPath,
        payloads: &[Vec<u8>],
    ) -> WarehouseResult<Vec<usize>> {
        let mut events = Vec::with_capacity(payloads.len());
        let mut rejected = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            match ClientEvent::from_bytes(p) {
                Ok(ev) => events.push(ev),
                Err(_) => rejected.push(i),
            }
        }
        write_client_events_columnar(
            warehouse,
            path,
            &events,
            self.dictionary,
            self.rows_per_group,
        )?;
        Ok(rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client_event::ClientEventLoader;
    use crate::time::Timestamp;
    use uli_dataflow::{scan_group, Loader, ScanSpec};

    fn sample(i: i64) -> ClientEvent {
        let name = if i % 3 == 0 {
            "web:home:home:stream:tweet:click"
        } else {
            "web:home:home:stream:tweet:impression"
        };
        ClientEvent::new(
            EventInitiator::from_code((i % 4) as i8).unwrap(),
            EventName::parse(name).unwrap(),
            i,
            format!("s-{i}"),
            format!("10.0.0.{}", i % 256),
            Timestamp(1_000_000 + i),
        )
        .with_detail("rank", format!("{}", i % 7))
        .with_detail("lang", "en")
    }

    #[test]
    fn cells_decode_to_the_row_loader_tuple() {
        for i in 0..20 {
            let ev = sample(i);
            let expected = ClientEventLoader.parse(&ev.to_bytes()).unwrap().unwrap();
            let cells = client_event_cells(&ev);
            for (col, cell) in cells.iter().enumerate() {
                assert_eq!(
                    CLIENT_EVENT_COLUMNAR.decode(col, cell).as_ref(),
                    Some(&expected[col]),
                    "column {col} of event {i}"
                );
            }
        }
    }

    #[test]
    fn empty_details_decode_to_an_empty_map() {
        let mut ev = sample(1);
        ev.details.clear();
        let cells = client_event_cells(&ev);
        assert_eq!(
            CLIENT_EVENT_COLUMNAR.decode(6, &cells[6]),
            Some(Value::Map(BTreeMap::new()))
        );
    }

    #[test]
    fn malformed_cells_decode_to_none() {
        let c = &CLIENT_EVENT_COLUMNAR;
        assert_eq!(c.decode(0, &[9]), None, "invalid initiator code");
        assert_eq!(c.decode(0, &[0, 0]), None, "overlong initiator");
        assert_eq!(c.decode(0, b""), None, "empty initiator");
        assert_eq!(c.decode(1, b"not-six-components"), None, "invalid name");
        assert_eq!(c.decode(1, &[0xff, 0xfe]), None, "non-UTF-8 name");
        assert_eq!(c.decode(2, &[1, 2, 3]), None, "short integer");
        assert_eq!(c.decode(3, &[0xff, 0xfe]), None, "non-UTF-8 string");
        assert_eq!(c.decode(6, &[5]), None, "truncated details");
        assert_eq!(c.decode(6, &[0, 0]), None, "trailing bytes after details");
        // A hostile count larger than the buffer is rejected outright.
        let mut hostile = Vec::new();
        write_varint(&mut hostile, u64::MAX);
        assert_eq!(c.decode(6, &hostile), None, "absurd pair count");
        assert_eq!(c.decode(7, b""), None, "column out of range");
    }

    #[test]
    fn dictionary_ranks_by_frequency() {
        let events: Vec<ClientEvent> = (0..9).map(sample).collect();
        // impression appears 6 times, click 3 — impression gets code 0.
        let entries = name_dictionary(&events);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], b"web:home:home:stream:tweet:impression");
        assert_eq!(entries[1], b"web:home:home:stream:tweet:click");
    }

    #[test]
    fn columnar_file_round_trips_through_the_vectorized_scan() {
        let wh = Warehouse::new();
        let path = WhPath::parse("/logs/ce/part-0").unwrap();
        let events: Vec<ClientEvent> = (0..100).map(sample).collect();
        write_client_events_columnar(&wh, &path, &events, true, 32).unwrap();

        let file = ColumnarFile::open(&wh, &path).unwrap();
        assert_eq!(file.columns(), 7);
        assert_eq!(file.dict_column(), Some(NAME_COLUMN));
        let mut rows = Vec::new();
        for g in 0..file.group_count() {
            let (tuples, skipped) =
                scan_group(&file, g, &CLIENT_EVENT_COLUMNAR, &ScanSpec::eager(7)).unwrap();
            assert_eq!(skipped, 0);
            rows.extend(tuples);
        }
        assert_eq!(rows.len(), events.len());
        for (row, ev) in rows.iter().zip(&events) {
            let expected = ClientEventLoader.parse(&ev.to_bytes()).unwrap().unwrap();
            assert_eq!(row, &expected);
        }
    }

    #[test]
    fn no_dictionary_layout_round_trips_too() {
        let wh = Warehouse::new();
        let path = WhPath::parse("/logs/ce/part-0").unwrap();
        let events: Vec<ClientEvent> = (0..40).map(sample).collect();
        write_client_events_columnar(&wh, &path, &events, false, 16).unwrap();
        let file = ColumnarFile::open(&wh, &path).unwrap();
        assert_eq!(file.dict_column(), None);
        let (tuples, _) =
            scan_group(&file, 0, &CLIENT_EVENT_COLUMNAR, &ScanSpec::eager(7)).unwrap();
        let expected = ClientEventLoader.parse(&events[0].to_bytes()).unwrap();
        assert_eq!(tuples.first(), expected.as_ref());
    }

    #[test]
    fn landing_rejects_undecodable_payloads_and_lands_the_rest() {
        let wh = Warehouse::new();
        let path = WhPath::parse("/logs/ce/part-0").unwrap();
        let events: Vec<ClientEvent> = (0..5).map(sample).collect();
        let mut payloads: Vec<Vec<u8>> = events.iter().map(|e| e.to_bytes()).collect();
        payloads.insert(2, b"not thrift".to_vec());
        let rejected = ClientEventLanding::default()
            .write_file(&wh, &path, &payloads)
            .unwrap();
        assert_eq!(rejected, vec![2]);
        let file = ColumnarFile::open(&wh, &path).unwrap();
        let all = vec![true; file.columns()];
        let group = file.read_group(0, &all).unwrap();
        assert_eq!(group.rows(), 5);
        assert_eq!(
            client_event_from_group(&file, &group, 0).as_ref(),
            Some(&events[0])
        );
    }

    #[test]
    fn events_reconstruct_from_groups() {
        let wh = Warehouse::new();
        let path = WhPath::parse("/logs/ce/part-0").unwrap();
        let events: Vec<ClientEvent> = (0..50).map(sample).collect();
        write_client_events_columnar(&wh, &path, &events, true, 16).unwrap();
        let file = ColumnarFile::open(&wh, &path).unwrap();
        let all = vec![true; file.columns()];
        let mut back = Vec::new();
        for g in 0..file.group_count() {
            let group = file.read_group(g, &all).unwrap();
            for row in 0..group.rows() {
                back.push(client_event_from_group(&file, &group, row).unwrap());
            }
        }
        assert_eq!(back, events);
    }

    #[test]
    fn zone_maps_carry_timestamp_and_name() {
        let wh = Warehouse::new();
        let path = WhPath::parse("/logs/ce/part-0").unwrap();
        let events: Vec<ClientEvent> = (0..64).map(sample).collect();
        write_client_events_columnar(&wh, &path, &events, true, 32).unwrap();
        let file = ColumnarFile::open(&wh, &path).unwrap();
        assert_eq!(file.group_count(), 2);
        let z = file.zone_map(0).expect("annotated group has a zone map");
        assert_eq!(z.min_key, 1_000_000);
        assert_eq!(z.max_key, 1_000_031);
        assert!(z.may_contain_tag(tag_hash(b"web:home:home:stream:tweet:click")));
    }
}
