//! Format scraping for legacy logs (§3.1).
//!
//! Before unified logging, "engineers on the analytics team often had to …
//! induce the message format manually by writing Pig jobs that scraped
//! large numbers of messages to produce key-value histograms. Needless to
//! say, both of these alternatives are slow and error-prone." This module
//! is that scraper: it walks a category of JSON logs and reports, per
//! dotted key path, how often the key appears, the value types seen, and a
//! few sample values — the archaeology the client event catalog made
//! unnecessary.

use std::collections::BTreeMap;

use crate::json::Json;

/// What the scraper learned about one key path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyProfile {
    /// Messages in which the path was present.
    pub present: u64,
    /// Occurrences per JSON type name.
    pub types: BTreeMap<&'static str, u64>,
    /// Up to a handful of distinct rendered sample values.
    pub samples: Vec<String>,
}

/// Aggregated scrape of a message corpus.
#[derive(Debug, Clone, Default)]
pub struct FormatScrape {
    /// Messages scanned.
    pub messages: u64,
    /// Messages that failed to parse at all.
    pub unparseable: u64,
    /// Per-path profiles (paths are dotted, arrays contribute `[]`).
    pub keys: BTreeMap<String, KeyProfile>,
}

const MAX_SAMPLES: usize = 3;

fn type_name(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Number(_) => "number",
        Json::String(_) => "string",
        Json::Array(_) => "array",
        Json::Object(_) => "object",
    }
}

impl FormatScrape {
    /// An empty scrape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scans one raw message.
    pub fn scan(&mut self, message: &[u8]) {
        self.messages += 1;
        let Ok(text) = std::str::from_utf8(message) else {
            self.unparseable += 1;
            return;
        };
        let Ok(parsed) = Json::parse(text) else {
            self.unparseable += 1;
            return;
        };
        self.walk("", &parsed);
    }

    fn walk(&mut self, path: &str, value: &Json) {
        match value {
            Json::Object(map) => {
                for (key, child) in map {
                    let child_path = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    self.record(&child_path, child);
                    self.walk(&child_path, child);
                }
            }
            Json::Array(items) => {
                let child_path = format!("{path}[]");
                for item in items {
                    self.record(&child_path, item);
                    self.walk(&child_path, item);
                }
            }
            _ => {}
        }
    }

    fn record(&mut self, path: &str, value: &Json) {
        let profile = self.keys.entry(path.to_string()).or_default();
        profile.present += 1;
        *profile.types.entry(type_name(value)).or_insert(0) += 1;
        if profile.samples.len() < MAX_SAMPLES {
            let rendered = value.to_string();
            if !profile.samples.contains(&rendered) {
                profile.samples.push(rendered);
            }
        }
    }

    /// Keys present in fewer than `threshold` of messages — the "which keys
    /// are optional?" question the paper says scrapers answered badly.
    pub fn optional_keys(&self, threshold: f64) -> Vec<&str> {
        let floor = (self.messages as f64 * threshold) as u64;
        self.keys
            .iter()
            .filter(|(_, p)| p.present < floor)
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Keys observed with more than one JSON type — the schema-drift smell.
    pub fn inconsistent_keys(&self) -> Vec<&str> {
        self.keys
            .iter()
            .filter(|(_, p)| p.types.len() > 1)
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Renders the histogram report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scraped {} messages ({} unparseable); {} distinct key paths\n",
            self.messages,
            self.unparseable,
            self.keys.len()
        );
        for (path, p) in &self.keys {
            let types: Vec<String> = p.types.iter().map(|(t, c)| format!("{t}x{c}")).collect();
            out.push_str(&format!(
                "  {path:<32} {:>6} ({:.0}%)  {}  e.g. {}\n",
                p.present,
                100.0 * p.present as f64 / self.messages.max(1) as f64,
                types.join("/"),
                p.samples.first().cloned().unwrap_or_default()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(messages: &[&str]) -> FormatScrape {
        let mut s = FormatScrape::new();
        for m in messages {
            s.scan(m.as_bytes());
        }
        s
    }

    #[test]
    fn histograms_count_presence_and_types() {
        let s = scrape(&[
            r#"{"userId":1,"evt":{"action":"click"}}"#,
            r#"{"userId":2,"evt":{"action":"hover","extra":true}}"#,
            r#"{"userId":"three"}"#,
        ]);
        assert_eq!(s.messages, 3);
        assert_eq!(s.keys["userId"].present, 3);
        assert_eq!(s.keys["userId"].types["number"], 2);
        assert_eq!(s.keys["userId"].types["string"], 1);
        assert_eq!(s.keys["evt.action"].present, 2);
        assert_eq!(s.keys["evt.extra"].present, 1);
    }

    #[test]
    fn optional_and_inconsistent_detection() {
        let s = scrape(&[
            r#"{"always":1,"sometimes":1}"#,
            r#"{"always":2}"#,
            r#"{"always":"two"}"#,
            r#"{"always":4}"#,
        ]);
        let optional = s.optional_keys(0.9);
        assert!(optional.contains(&"sometimes"));
        assert!(!optional.contains(&"always"));
        assert_eq!(s.inconsistent_keys(), vec!["always"]);
    }

    #[test]
    fn arrays_contribute_bracket_paths() {
        let s = scrape(&[r#"{"tags":["a","b"],"nested":[{"id":1}]}"#]);
        assert_eq!(s.keys["tags[]"].present, 2);
        assert_eq!(s.keys["nested[].id"].present, 1);
    }

    #[test]
    fn unparseable_messages_are_counted_not_fatal() {
        let mut s = FormatScrape::new();
        s.scan(b"not json at all");
        s.scan(&[0xff, 0xfe]);
        s.scan(br#"{"ok":true}"#);
        assert_eq!(s.messages, 3);
        assert_eq!(s.unparseable, 2);
        assert_eq!(s.keys["ok"].present, 1);
    }

    #[test]
    fn samples_are_capped_and_distinct() {
        let msgs: Vec<String> = (0..10).map(|i| format!(r#"{{"k":{i}}}"#)).collect();
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let s = scrape(&refs);
        assert_eq!(s.keys["k"].samples.len(), 3);
    }

    #[test]
    fn render_reads_like_a_report() {
        let s = scrape(&[r#"{"evt":{"action":"click"}}"#]);
        let text = s.render();
        assert!(text.contains("1 messages"));
        assert!(text.contains("evt.action"));
        assert!(text.contains("100%"));
    }

    #[test]
    fn scrapes_the_legacy_frontend_format() {
        use crate::client_event::ClientEvent;
        use crate::event::{EventInitiator, EventName};
        use crate::legacy::LegacyCategory;
        use crate::time::Timestamp;
        let mut s = FormatScrape::new();
        for i in 0..20 {
            let ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                EventName::parse("web:home:home:stream:tweet:click").unwrap(),
                i,
                format!("s-{i}"),
                "1.2.3.4",
                Timestamp(i * 1000),
            );
            s.scan(&LegacyCategory::WebFrontend.encode(&ev));
        }
        assert_eq!(s.unparseable, 0);
        // The scraper rediscovers the camelCase field the paper grumbles
        // about — and the nested evt.* structure.
        assert_eq!(s.keys["userId"].present, 20);
        assert_eq!(s.keys["evt.action"].present, 20);
        assert_eq!(s.keys["evt.target.kind"].present, 20);
    }
}
