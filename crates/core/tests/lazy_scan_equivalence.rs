//! Property tests for the pushdown scan path: the lazy [`FieldCursor`]
//! decode in `ClientEventLoader::scan` must agree with the eager
//! `ClientEvent::read` on every input — well-formed records, records with
//! missing/duplicate/unknown fields (v1 readers meeting v2 writers and vice
//! versa), type drift, truncation, and raw byte soup — and a whole query
//! under projection + predicate pushdown must return byte-identical rows to
//! the eager plan at every worker count.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use uli_core::client_event::{ClientEvent, ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::event::{EventInitiator, EventName};
use uli_core::session::day_dir;
use uli_core::time::Timestamp;
use uli_dataflow::{Agg, Engine, Expr, Loader, Parallelism, Plan, Pushdown, ScanSpec, Value};
use uli_thrift::{CompactWriter, ThriftRecord};
use uli_warehouse::{tag_hash, Warehouse};

/// One wire field of a synthetic record. Known ids may carry the declared
/// type or a drifted one; unknown ids model a newer (v2) writer.
#[derive(Debug, Clone)]
enum Field {
    Initiator(i8),
    Name(String),
    UserId(i64),
    SessionId(String),
    Ip(String),
    Ts(i64),
    Details(BTreeMap<String, String>),
    /// A field id this reader does not know (8..), string payload.
    UnknownString(i16, String),
    /// A field id this reader does not know (8..), i64 payload.
    UnknownI64(i16, i64),
    /// Type drift: a string where field 3/6 expect an i64.
    DriftString(i16, String),
    /// Type drift: an i64 where field 2/4/5 expect a string.
    DriftI64(i16, i64),
}

fn encode(fields: &[Field]) -> Vec<u8> {
    let mut w = CompactWriter::new();
    w.struct_begin();
    for f in fields {
        match f {
            Field::Initiator(c) => w.field_i8(1, *c),
            Field::Name(s) => w.field_string(2, s),
            Field::UserId(v) => w.field_i64(3, *v),
            Field::SessionId(s) => w.field_string(4, s),
            Field::Ip(s) => w.field_string(5, s),
            Field::Ts(v) => w.field_i64(6, *v),
            Field::Details(m) => w.field_string_map(7, m),
            Field::UnknownString(id, s) => w.field_string(*id, s),
            Field::UnknownI64(id, v) => w.field_i64(*id, *v),
            Field::DriftString(id, s) => w.field_string(*id, s),
            Field::DriftI64(id, v) => w.field_i64(*id, *v),
        }
    }
    w.struct_end();
    w.into_bytes()
}

/// Deterministic Fisher–Yates driven by a generated seed (the vendored
/// proptest has no `prop_shuffle`).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        // xorshift64*
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

/// Event names that are valid about half the time.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        // Valid: six lowercase components, non-empty action.
        ("[a-z0-9_]{1,5}", "[a-z0-9_]{0,4}", "[a-z0-9_]{1,6}")
            .prop_map(|(c, mid, action)| format!("{c}:{mid}:{mid}::tweet:{action}")),
        // Wrong arity, bad characters, empty action.
        "[a-zA-Z:_ ]{0,24}",
    ]
}

fn arb_field() -> BoxedStrategy<Field> {
    prop_oneof![
        (-1i8..6).prop_map(Field::Initiator).boxed(),
        arb_name().prop_map(Field::Name).boxed(),
        any::<i64>().prop_map(Field::UserId).boxed(),
        "[a-z0-9-]{0,12}".prop_map(Field::SessionId).boxed(),
        "[0-9.]{0,15}".prop_map(Field::Ip).boxed(),
        any::<i64>().prop_map(Field::Ts).boxed(),
        prop::collection::btree_map("[a-z]{1,6}", "[a-z0-9 ]{0,8}", 0..4)
            .prop_map(Field::Details)
            .boxed(),
        (8i16..40, "[a-z]{0,8}")
            .prop_map(|(id, s)| Field::UnknownString(id, s))
            .boxed(),
        (8i16..40, any::<i64>())
            .prop_map(|(id, v)| Field::UnknownI64(id, v))
            .boxed(),
        (prop_oneof![Just(3i16), Just(6i16)], "[a-z]{0,6}")
            .prop_map(|(id, s)| Field::DriftString(id, s))
            .boxed(),
        (
            prop_oneof![Just(2i16), Just(4i16), Just(5i16)],
            any::<i64>()
        )
            .prop_map(|(id, v)| Field::DriftI64(id, v))
            .boxed(),
    ]
    .boxed()
}

/// A complete, decodable record: all six required fields valid, details and
/// unknown (v2) fields optional, field order shuffled.
fn arb_complete_record() -> impl Strategy<Value = Vec<u8>> {
    (
        (
            0i8..4,
            ("[a-z]{1,5}", "[a-z]{1,6}").prop_map(|(p, a)| format!("web:{p}:{p}:stream:tweet:{a}")),
            any::<i64>(),
            "[a-z0-9-]{1,12}",
            "[0-9.]{1,15}",
            any::<i64>(),
        ),
        prop_oneof![
            prop::collection::btree_map("[a-z]{1,6}", "[a-z0-9]{0,8}", 0..4)
                .prop_map(Some)
                .boxed(),
            Just(None).boxed(),
        ],
        prop::collection::vec((8i16..40, "[a-z]{0,8}"), 0..3),
        any::<u64>(),
    )
        .prop_map(
            |((init, name, uid, sid, ip, ts), details, unknowns, seed)| {
                let mut fields = vec![
                    Field::Initiator(init),
                    Field::Name(name),
                    Field::UserId(uid),
                    Field::SessionId(sid),
                    Field::Ip(ip),
                    Field::Ts(ts),
                ];
                if let Some(m) = details {
                    fields.push(Field::Details(m));
                }
                for (id, s) in unknowns {
                    fields.push(Field::UnknownString(id, s));
                }
                shuffle(&mut fields, seed);
                encode(&fields)
            },
        )
}

/// Any record: complete, arbitrary field soup (missing/duplicate/drifting
/// fields in any order), a truncated encoding, or raw bytes.
fn arb_record() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        arb_complete_record().boxed(),
        (prop::collection::vec(arb_field(), 0..10), any::<u64>())
            .prop_map(|(mut fields, seed)| {
                shuffle(&mut fields, seed);
                encode(&fields)
            })
            .boxed(),
        (arb_complete_record(), 0usize..101)
            .prop_map(|(bytes, pct)| {
                let cut = bytes.len() * pct / 100;
                bytes[..cut].to_vec()
            })
            .boxed(),
        prop::collection::vec(any::<u8>(), 0..64).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Full-projection lazy scan is the eager parse, bit for bit: the same
    /// records decode, the same records are dropped, the same tuples come
    /// out, and nothing is counted as skipped.
    #[test]
    fn lazy_full_scan_equals_eager(bytes in arb_record()) {
        let eager = ClientEventLoader.parse(&bytes).unwrap();
        let lazy = ClientEventLoader.scan(&bytes, &ScanSpec::eager(7)).unwrap();
        prop_assert_eq!(&lazy.tuple, &eager);
        prop_assert_eq!(lazy.fields_skipped, 0);
        prop_assert!(!lazy.skipped_by_predicate);
    }

    /// Under a random keep-mask the lazy scan admits exactly the records the
    /// eager parse admits, matches it on every kept column, and nulls the
    /// rest.
    #[test]
    fn projected_scan_agrees_on_kept_columns(
        bytes in arb_record(),
        mask_bits in any::<u8>(),
    ) {
        let mask: Vec<bool> = (0..7).map(|i| mask_bits & (1 << i) != 0).collect();
        let eager = ClientEventLoader.parse(&bytes).unwrap();
        let spec = ScanSpec {
            projection: Some(mask.clone()),
            predicate: vec![],
            width: 7,
        };
        let lazy = ClientEventLoader.scan(&bytes, &spec).unwrap();
        match (&eager, &lazy.tuple) {
            (None, None) => {
                prop_assert_eq!(lazy.fields_skipped, 0, "dropped records count nothing");
            }
            (Some(e), Some(l)) => {
                for (i, keep) in mask.iter().enumerate() {
                    if *keep {
                        prop_assert_eq!(&l[i], &e[i], "column {} diverged", i);
                    } else {
                        prop_assert_eq!(&l[i], &Value::Null, "column {} not nulled", i);
                    }
                }
                if mask.iter().all(|k| *k) {
                    prop_assert_eq!(lazy.fields_skipped, 0);
                }
            }
            (e, l) => prop_assert!(false, "admit diverged: eager {:?}, lazy {:?}", e, l),
        }
    }

    /// A pushed predicate drops exactly the records a post-parse FILTER
    /// would, and flags them as predicate-skipped rather than undecodable.
    #[test]
    fn pushed_predicate_agrees_with_post_filter(
        bytes in arb_record(),
        threshold in any::<i64>(),
    ) {
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(2).ge(Expr::lit(threshold))],
            width: 7,
        };
        let eager = ClientEventLoader.parse(&bytes).unwrap();
        let lazy = ClientEventLoader.scan(&bytes, &spec).unwrap();
        match eager {
            None => {
                prop_assert!(lazy.tuple.is_none());
                prop_assert!(!lazy.skipped_by_predicate);
            }
            Some(t) => {
                let passes = matches!(t[2], Value::Int(v) if v >= threshold);
                prop_assert_eq!(lazy.tuple.is_some(), passes);
                prop_assert_eq!(lazy.skipped_by_predicate, !passes);
            }
        }
    }
}

/// Lands a batch of valid events through the annotated path, as
/// `write_client_events` does.
fn land(events: &[ClientEvent]) -> Warehouse {
    let wh = Warehouse::with_block_capacity(1024);
    let dir = day_dir("client_events", 0);
    let mut w = wh.create(&dir.child("part-00000").unwrap()).unwrap();
    for ev in events {
        w.append_record_annotated(
            &ev.to_bytes(),
            ev.timestamp.millis(),
            tag_hash(ev.name.as_str().as_bytes()),
        );
    }
    w.finish().unwrap();
    wh
}

fn arb_event() -> impl Strategy<Value = ClientEvent> {
    (
        0i8..4,
        prop_oneof![
            Just("web:home:feed:stream:tweet:click"),
            Just("web:home:feed:stream:tweet:impression"),
            Just("iphone:profile:::tweet:follow"),
        ],
        0i64..40,
        0i64..10_000,
        prop_oneof![
            ("[a-z]{1,5}", "[a-z0-9]{0,6}").prop_map(Some).boxed(),
            Just(None).boxed(),
        ],
    )
        .prop_map(|(init, name, uid, ts, detail)| {
            let mut ev = ClientEvent::new(
                EventInitiator::from_code(init).expect("0..4 are valid"),
                EventName::parse(name).expect("pool names are valid"),
                uid,
                format!("s-{uid}"),
                "10.0.0.1",
                Timestamp(ts),
            );
            if let Some((k, v)) = detail {
                ev = ev.with_detail(k, v);
            }
            ev
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End to end: a selective 2-column query returns byte-identical rows
    /// under every pushdown layer and worker count, with the pushed run
    /// doing provably less decode work.
    #[test]
    fn query_rows_identical_eager_vs_pushdown(
        events in prop::collection::vec(arb_event(), 1..120),
        t0 in 0i64..10_000,
        window in 1i64..10_000,
    ) {
        let plan = Plan::load(
            day_dir("client_events", 0),
            Arc::new(ClientEventLoader),
            CLIENT_EVENT_SCHEMA.to_vec(),
        )
        .filter(
            Expr::col(5)
                .ge(Expr::lit(t0))
                .and(Expr::col(5).le(Expr::lit(t0.saturating_add(window)))),
        )
        .filter(Expr::col(1).eq(Expr::lit("web:home:feed:stream:tweet:click")))
        .foreach(vec![("user_id", Expr::col(2)), ("name", Expr::col(1))])
        .aggregate_by(vec![0], vec![Agg::count()]);

        let mut reference: Option<Vec<Vec<Value>>> = None;
        for pushdown in [Pushdown::disabled(), Pushdown::default()] {
            for workers in [1usize, 4] {
                let engine = Engine::new(land(&events))
                    .with_parallelism(Parallelism::fixed(workers))
                    .with_pushdown(pushdown);
                let result = engine.run(&plan).expect("query runs");
                if pushdown.any() {
                    // Unprojected: initiator, session_id, ip always on the
                    // wire, details only when non-empty — 3 or 4 skips per
                    // scanned record.
                    prop_assert!(
                        result.stats.fields_skipped >= result.stats.input_records * 3
                            && result.stats.fields_skipped <= result.stats.input_records * 4,
                        "expected 3..=4 skips per record, got {} over {} records",
                        result.stats.fields_skipped,
                        result.stats.input_records
                    );
                }
                match &reference {
                    None => reference = Some(result.rows),
                    Some(rows) => prop_assert_eq!(
                        rows,
                        &result.rows,
                        "diverged at pushdown={:?} workers={}",
                        pushdown,
                        workers
                    ),
                }
            }
        }
    }
}
