//! Serial/parallel equivalence of the sharded materializer: for seeded
//! random days, every worker count must produce the same report, the same
//! dictionary (codes and rank order), the same samples, and byte-identical
//! part files.

use rand::{Rng, SeedableRng};
use uli_core::client_event::{ClientEvent, CLIENT_EVENTS_CATEGORY};
use uli_core::event::{EventInitiator, EventName};
use uli_core::session::{sequences_dir, MaterializeReport, Materializer};
use uli_core::time::Timestamp;
use uli_thrift::ThriftRecord;
use uli_warehouse::{HourlyPartition, Parallelism, Warehouse, WhPath};

/// Writes a seeded random day of client events: several hours, several
/// files per hour, event names with skewed frequencies, sessions that
/// straddle hour boundaries.
fn seeded_day(seed: u64) -> Warehouse {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let wh = Warehouse::with_block_capacity(1024);
    let pages = ["home", "profile", "search", "connect", "discover"];
    let actions = ["impression", "click", "follow", "hover"];
    for hour in 0..4u64 {
        let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, hour).main_dir();
        for part in 0..2 {
            let mut w = wh
                .create(&dir.child(&format!("part-{part:05}")).unwrap())
                .unwrap();
            let n = 120 + rng.gen_range(0..80);
            for _ in 0..n {
                let user = rng.gen_range(0..15i64);
                let page = pages[rng.gen_range(0..pages.len())];
                let action = actions[rng.gen_range(0..actions.len())];
                let name =
                    EventName::parse(&format!("web:{page}:{page}:stream:tweet:{action}")).unwrap();
                let ev = ClientEvent::new(
                    EventInitiator::CLIENT_USER,
                    name,
                    user,
                    format!("s-{user}"),
                    "10.0.0.1",
                    Timestamp::from_hour_index(hour).plus(rng.gen_range(0..3_600_000i64)),
                );
                w.append_record(&ev.to_bytes());
            }
            w.finish().unwrap();
        }
    }
    wh
}

fn run_day(seed: u64, workers: usize) -> (Warehouse, MaterializeReport) {
    let wh = seeded_day(seed);
    let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
    let report = m.run_day(0).unwrap();
    (wh, report)
}

/// Every record of every file under `dir`, tagged with its path.
fn dump_dir(wh: &Warehouse, dir: &WhPath) -> Vec<(String, Vec<Vec<u8>>)> {
    wh.list_files_recursive(dir)
        .unwrap()
        .into_iter()
        .map(|f| {
            let records = wh.open(&f).unwrap().read_all().unwrap();
            (f.as_str().to_string(), records)
        })
        .collect()
}

#[test]
fn parallel_day_is_byte_identical_to_serial() {
    for seed in [11u64, 23, 59] {
        let (serial_wh, serial_report) = run_day(seed, 1);
        let serial_seqs = dump_dir(&serial_wh, &sequences_dir(0));
        let serial_dict = dump_dir(&serial_wh, &uli_core::session::dictionary_dir(0));
        assert!(serial_report.sessions > 0);
        for workers in [2usize, 4, 8] {
            let (par_wh, par_report) = run_day(seed, workers);
            assert_eq!(
                serial_report, par_report,
                "report diverged: seed {seed}, {workers} workers"
            );
            assert_eq!(
                serial_report.compression_factor(),
                par_report.compression_factor()
            );
            assert_eq!(
                serial_seqs,
                dump_dir(&par_wh, &sequences_dir(0)),
                "sequence files diverged: seed {seed}, {workers} workers"
            );
            assert_eq!(
                serial_dict,
                dump_dir(&par_wh, &uli_core::session::dictionary_dir(0)),
                "dictionary/samples diverged: seed {seed}, {workers} workers"
            );
        }
    }
}

#[test]
fn dictionary_rank_order_is_worker_independent() {
    // Force count ties: two event names with identical frequencies must
    // rank by name ascending no matter how the histogram was sharded.
    let wh = Warehouse::with_block_capacity(256);
    let dir = HourlyPartition::from_hour_index(CLIENT_EVENTS_CATEGORY, 0).main_dir();
    let mut w = wh.create(&dir.child("part-00000").unwrap()).unwrap();
    for i in 0..60 {
        for action in ["click", "impression"] {
            let name = EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap();
            let ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                name,
                i % 5,
                format!("s-{}", i % 5),
                "10.0.0.1",
                Timestamp::from_hour_index(0).plus(i * 500),
            );
            w.append_record(&ev.to_bytes());
        }
    }
    w.finish().unwrap();

    let mut dicts = Vec::new();
    for workers in [1usize, 2, 8] {
        let m = Materializer::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
        let dict = m.build_dictionary(0).unwrap();
        dicts.push((workers, dict));
    }
    let (_, reference) = &dicts[0];
    assert_eq!(reference.len(), 2);
    // Tie broken by name: "click" sorts before "impression".
    assert!(reference.name_of(0).unwrap().as_str().contains("click"));
    for (workers, dict) in &dicts[1..] {
        assert_eq!(dict.len(), reference.len(), "{workers} workers");
        for code in 0..reference.len() as u32 {
            assert_eq!(
                dict.name_of(code),
                reference.name_of(code),
                "code {code} diverged at {workers} workers"
            );
        }
    }
}
