//! Property tests for the columnar read path: a query over a columnar
//! landing must return byte-identical rows to the same query over a
//! row-format landing of the same events — regardless of the thrift field
//! order the row writer happened to use, of which event names made the
//! embedded dictionary (misses fall back to the inline-encoded cell), and
//! of the worker count {1, 4, 8} or pushdown configuration.

use std::sync::Arc;

use proptest::prelude::*;

use uli_core::client_event::{ClientEvent, ClientEventLoader, CLIENT_EVENT_SCHEMA};
use uli_core::columnar::{client_event_cells, NAME_COLUMN};
use uli_core::event::{EventInitiator, EventName};
use uli_core::session::day_dir;
use uli_core::time::Timestamp;
use uli_dataflow::{Agg, Engine, Expr, Parallelism, Plan, Pushdown, Value};
use uli_thrift::CompactWriter;
use uli_warehouse::{tag_hash, ColumnarFileWriter, Warehouse};

/// The name pool: queries select the first entry; the dictionary subset is
/// chosen per case, so any of these can be an unknown (inline) name.
const NAMES: [&str; 3] = [
    "web:home:feed:stream:tweet:click",
    "web:home:feed:stream:tweet:impression",
    "iphone:profile:::tweet:follow",
];

/// Deterministic Fisher–Yates driven by a generated seed (the vendored
/// proptest has no `prop_shuffle`).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        // xorshift64*
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

/// Encodes one event with its seven thrift fields in a shuffled order — the
/// row loader must not care, and the columnar landing never sees wire order
/// at all.
type FieldWriter<'a> = Box<dyn Fn(&mut CompactWriter) + 'a>;

fn encode_shuffled(ev: &ClientEvent, seed: u64) -> Vec<u8> {
    let mut fields: Vec<FieldWriter> = vec![
        Box::new(|w| w.field_i8(1, ev.initiator.code())),
        Box::new(|w| w.field_string(2, ev.name.as_str())),
        Box::new(|w| w.field_i64(3, ev.user_id)),
        Box::new(|w| w.field_string(4, &ev.session_id)),
        Box::new(|w| w.field_string(5, &ev.ip)),
        Box::new(|w| w.field_i64(6, ev.timestamp.millis())),
        Box::new(|w| w.field_string_map(7, &ev.details)),
    ];
    shuffle(&mut fields, seed);
    let mut w = CompactWriter::new();
    w.struct_begin();
    for f in &fields {
        f(&mut w);
    }
    w.struct_end();
    w.into_bytes()
}

/// Lands the events as annotated row blocks, one record per event, with a
/// per-record shuffled field order.
fn land_rows(events: &[ClientEvent], seed: u64) -> Warehouse {
    let wh = Warehouse::with_block_capacity(1024);
    let dir = day_dir("client_events", 0);
    let mut w = wh.create(&dir.child("part-00000").unwrap()).unwrap();
    for (i, ev) in events.iter().enumerate() {
        w.append_record_annotated(
            &encode_shuffled(ev, seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ev.timestamp.millis(),
            tag_hash(ev.name.as_str().as_bytes()),
        );
    }
    w.finish().unwrap();
    wh
}

/// Lands the same events columnar, with only the dictionary subset of the
/// name pool dictionary-coded — every other name is an inline miss cell.
fn land_columnar(events: &[ClientEvent], dict_names: &[&str], rows_per_group: usize) -> Warehouse {
    let wh = Warehouse::new();
    let dir = day_dir("client_events", 0);
    let entries: Vec<Vec<u8>> = dict_names.iter().map(|n| n.as_bytes().to_vec()).collect();
    let dictionary = (!entries.is_empty()).then_some((NAME_COLUMN, entries.as_slice()));
    let mut w = ColumnarFileWriter::create(
        &wh,
        &dir.child("part-00000").unwrap(),
        CLIENT_EVENT_SCHEMA.len(),
        rows_per_group,
        dictionary,
    )
    .unwrap();
    for ev in events {
        let cells = client_event_cells(ev);
        let refs: Vec<&[u8]> = cells.iter().map(Vec::as_slice).collect();
        w.append_row_annotated(
            &refs,
            ev.timestamp.millis(),
            tag_hash(ev.name.as_str().as_bytes()),
        );
    }
    w.finish().unwrap();
    wh
}

fn arb_event() -> impl Strategy<Value = ClientEvent> {
    (
        0i8..4,
        0usize..NAMES.len(),
        0i64..40,
        0i64..10_000,
        prop_oneof![
            ("[a-z]{1,5}", "[a-z0-9]{0,6}").prop_map(Some).boxed(),
            Just(None).boxed(),
        ],
    )
        .prop_map(|(init, name, uid, ts, detail)| {
            let mut ev = ClientEvent::new(
                EventInitiator::from_code(init).expect("0..4 are valid"),
                EventName::parse(NAMES[name]).expect("pool names are valid"),
                uid,
                format!("s-{uid}"),
                "10.0.0.1",
                Timestamp(ts),
            );
            if let Some((k, v)) = detail {
                ev = ev.with_detail(k, v);
            }
            ev
        })
}

/// The selective query shape every experiment uses: a timestamp window AND
/// one event name, projected to (user_id, name), counted per user.
fn selective_plan(name: &str, t0: i64, t1: i64) -> Plan {
    Plan::load(
        day_dir("client_events", 0),
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .filter(
        Expr::col(5)
            .ge(Expr::lit(t0))
            .and(Expr::col(5).le(Expr::lit(t1))),
    )
    .filter(Expr::col(1).eq(Expr::lit(name)))
    .foreach(vec![("user_id", Expr::col(2)), ("name", Expr::col(1))])
    .aggregate_by(vec![0], vec![Agg::count()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eager-row, pushdown-row, and columnar-vectorized runs of the same
    /// selective query return byte-identical rows at workers {1, 4, 8},
    /// whatever the row field order, the dictionary subset (the queried
    /// name itself may be a dictionary miss), or the row-group size.
    #[test]
    fn columnar_scan_equals_row_scan(
        events in prop::collection::vec(arb_event(), 1..120),
        order_seed in any::<u64>(),
        (dict_mask, queried) in (0u8..8, 0usize..NAMES.len()),
        rows_per_group in 1usize..40,
        t0 in 0i64..10_000,
        window in 1i64..10_000,
    ) {
        let dict_names: Vec<&str> = NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| dict_mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect();
        let plan = selective_plan(NAMES[queried], t0, t0.saturating_add(window));

        let row_wh = land_rows(&events, order_seed);
        let col_wh = land_columnar(&events, &dict_names, rows_per_group);

        let mut reference: Option<Vec<Vec<Value>>> = None;
        for (wh, label) in [(&row_wh, "row"), (&col_wh, "columnar")] {
            for pushdown in [Pushdown::disabled(), Pushdown::default()] {
                for workers in [1usize, 4, 8] {
                    let engine = Engine::new(wh.clone())
                        .with_parallelism(Parallelism::fixed(workers))
                        .with_pushdown(pushdown);
                    let result = engine.run(&plan).expect("query runs");
                    match &reference {
                        None => reference = Some(result.rows),
                        Some(rows) => prop_assert_eq!(
                            rows,
                            &result.rows,
                            "diverged at {} pushdown={:?} workers={}",
                            label,
                            pushdown,
                            workers
                        ),
                    }
                }
            }
        }
    }
}
