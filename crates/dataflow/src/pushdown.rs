//! Scan pushdown: projections, predicates, and zone-map constraints.
//!
//! The paper's queries "performing large amounts of brute force scans"
//! (§4.1) decode every column of every record before the first FILTER runs.
//! This module carries the planner's pushdown decisions to the loader: a
//! [`ScanSpec`] names the columns a query actually touches and the cheap
//! predicates it can evaluate on lazily-decoded fields, and
//! [`zone_constraints`] derives the block-level [`ZoneMapPruner`] that skips
//! whole blocks before decompression.
//!
//! Everything fails open. A loader that cannot decode lazily ignores the
//! projection; a predicate the analyzer cannot prove total stays out of the
//! zone pruner; a block without a zone map is always read.

use uli_warehouse::ZoneMapPruner;

use crate::error::{DataflowError, DataflowResult};
use crate::expr::{BinOp, Expr};
use crate::value::{Tuple, Value};

/// Which pushdown layers the engine applies. Mirrors the `--workers` knob:
/// experiments toggle layers individually, the CLI flips all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pushdown {
    /// Push FOREACH column sets into the loader (lazy decoding).
    pub projection: bool,
    /// Push UDF-free FILTER predicates below tuple materialization.
    pub predicate: bool,
    /// Skip blocks whose zone maps disprove the pushed predicates.
    pub zone_maps: bool,
}

impl Default for Pushdown {
    fn default() -> Self {
        Pushdown {
            projection: true,
            predicate: true,
            zone_maps: true,
        }
    }
}

impl Pushdown {
    /// Every layer off — the eager scan path, bit for bit.
    pub fn disabled() -> Pushdown {
        Pushdown {
            projection: false,
            predicate: false,
            zone_maps: false,
        }
    }

    /// True when any layer is on.
    pub fn any(&self) -> bool {
        self.projection || self.predicate || self.zone_maps
    }
}

/// What one scan asks of its loader: the columns to materialize and the
/// predicates to evaluate before a tuple is surfaced.
#[derive(Debug, Clone, Default)]
pub struct ScanSpec {
    /// Keep-mask over the load schema, or `None` for all columns. Columns
    /// masked out may come back as [`Value::Null`]; the planner only masks
    /// columns no downstream operator reads.
    pub projection: Option<Vec<bool>>,
    /// Pushed FILTER predicates, outermost-last — evaluated in order with
    /// FILTER semantics (`true` keeps, `false`/`Null` drops, else a type
    /// error), exactly as the peeled Filter nodes would have.
    pub predicate: Vec<Expr>,
    /// Width of the load schema, for the malformed-record check that eager
    /// parsing performs before any predicate runs.
    pub width: usize,
}

impl ScanSpec {
    /// A spec that pushes nothing down (eager behavior) for `width` columns.
    pub fn eager(width: usize) -> ScanSpec {
        ScanSpec {
            projection: None,
            predicate: Vec::new(),
            width,
        }
    }

    /// True when the spec changes nothing about a plain scan.
    pub fn is_trivial(&self) -> bool {
        self.projection.is_none() && self.predicate.is_empty()
    }

    /// Evaluates the pushed predicates against a materialized tuple with
    /// FILTER semantics. `Ok(true)` surfaces the tuple, `Ok(false)` drops it.
    pub fn admit(&self, tuple: &Tuple) -> DataflowResult<bool> {
        for pred in &self.predicate {
            match pred.eval(tuple)? {
                Value::Bool(true) => {}
                Value::Bool(false) | Value::Null => return Ok(false),
                _ => return Err(DataflowError::TypeError { context: "FILTER" }),
            }
        }
        Ok(true)
    }
}

/// What one record became under a [`ScanSpec`].
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// The materialized tuple, or `None` when the record was dropped (loader
    /// skip or pushed predicate).
    pub tuple: Option<Tuple>,
    /// Fields the loader skipped without materializing.
    pub fields_skipped: u64,
    /// True when a pushed predicate (not the loader) dropped the record.
    pub skipped_by_predicate: bool,
}

impl ScanOutcome {
    /// A record the loader itself skipped (marker, tolerated corruption).
    pub fn skipped() -> ScanOutcome {
        ScanOutcome {
            tuple: None,
            fields_skipped: 0,
            skipped_by_predicate: false,
        }
    }
}

/// The zone-map dimension a loader column maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneColumn {
    /// The block's min/max key range (the event timestamp).
    Key,
    /// The block's tag bitmap (the event name).
    Tag,
}

/// True when `expr` contains a UDF call anywhere — such predicates never
/// push down (a UDF may panic, keep state, or inspect columns dynamically).
pub fn expr_has_udf(expr: &Expr) -> bool {
    match expr {
        Expr::Col(_) | Expr::Lit(_) => false,
        Expr::Bin(_, a, b) => expr_has_udf(a) || expr_has_udf(b),
        Expr::Not(e) => expr_has_udf(e),
        Expr::Udf(..) => true,
    }
}

/// Collects every column index `expr` reads into `out`.
pub fn collect_columns(expr: &Expr, out: &mut Vec<usize>) {
    match expr {
        Expr::Col(i) => out.push(*i),
        Expr::Lit(_) => {}
        Expr::Bin(_, a, b) => {
            collect_columns(a, out);
            collect_columns(b, out);
        }
        Expr::Not(e) => collect_columns(e, out),
        Expr::Udf(_, args) => {
            for a in args {
                collect_columns(a, out);
            }
        }
    }
}

/// True when `expr` evaluates to a boolean without ever erroring, for any
/// tuple of width `width`: comparisons over columns/literals (total over
/// [`Value`]'s ordering) composed with AND/OR/NOT over other total booleans.
///
/// Only such predicates feed the zone analyzer — a pruned block can then
/// never hide an evaluation error the eager path would have surfaced.
pub fn total_boolean(expr: &Expr, width: usize) -> bool {
    fn total_operand(e: &Expr, width: usize) -> bool {
        match e {
            Expr::Col(i) => *i < width,
            Expr::Lit(_) => true,
            _ => false,
        }
    }
    match expr {
        Expr::Lit(Value::Bool(_)) => true,
        Expr::Not(e) => total_boolean(e, width),
        Expr::Bin(BinOp::And | BinOp::Or, a, b) => {
            total_boolean(a, width) && total_boolean(b, width)
        }
        Expr::Bin(BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, a, b) => {
            total_operand(a, width) && total_operand(b, width)
        }
        _ => false,
    }
}

/// Key-range and tag-set constraints extracted from one conjunct.
#[derive(Debug, Default, Clone)]
struct Constraint {
    min_key: Option<i64>,
    max_key: Option<i64>,
    tags: Option<Vec<u64>>,
}

/// Derives block-skipping constraints from the pushed predicates.
///
/// `key_col` is the column that zone maps track as the key (min/max range);
/// `tag_col` the column behind the tag bitmap. Analysis is conservative:
/// each predicate is flattened into conjuncts, and a conjunct contributes
/// only when it provably restricts a zone dimension — `key_col <cmp> int`
/// tightens the key range, and an OR-chain of `tag_col == "literal"` tests
/// (the shape query builders emit for dictionary matches) yields a tag set.
/// Anything else contributes nothing, which keeps every block. Returns
/// `None` when no constraint at all was derived.
///
/// Callers must pre-filter with [`total_boolean`]: pruning assumes the
/// predicates cannot error, otherwise a skipped block could hide a type
/// error the eager scan would have raised.
pub fn zone_constraints(
    predicates: &[Expr],
    key_col: Option<usize>,
    tag_col: Option<usize>,
) -> Option<ZoneMapPruner> {
    let mut c = Constraint::default();
    for pred in predicates {
        let mut conjuncts = Vec::new();
        flatten_and(pred, &mut conjuncts);
        for conjunct in conjuncts {
            if let Some(col) = key_col {
                apply_key_bound(conjunct, col, &mut c);
            }
            if let Some(col) = tag_col {
                if let Some(tags) = tag_set(conjunct, col) {
                    intersect_tags(&mut c.tags, tags);
                }
            }
        }
    }
    if c.min_key.is_none() && c.max_key.is_none() && c.tags.is_none() {
        return None;
    }
    Some(ZoneMapPruner {
        min_key: c.min_key,
        max_key: c.max_key,
        tags: c.tags,
    })
}

/// Splits nested ANDs into their conjuncts.
fn flatten_and<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Bin(BinOp::And, a, b) = expr {
        flatten_and(a, out);
        flatten_and(b, out);
    } else {
        out.push(expr);
    }
}

/// Tightens the key range if `conjunct` is `key_col <cmp> int-literal` (or
/// the mirrored literal-first form). Bounds that would overflow i64 fail
/// open (contribute nothing) rather than wrap.
fn apply_key_bound(conjunct: &Expr, key_col: usize, c: &mut Constraint) {
    let Expr::Bin(op, a, b) = conjunct else {
        return;
    };
    // Normalize to (col <op> lit).
    let (op, lit) = match (&**a, &**b) {
        (Expr::Col(i), Expr::Lit(Value::Int(v))) if *i == key_col => (*op, *v),
        (Expr::Lit(Value::Int(v)), Expr::Col(i)) if *i == key_col => {
            let mirrored = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                BinOp::Eq => BinOp::Eq,
                _ => return,
            };
            (mirrored, *v)
        }
        _ => return,
    };
    let (lo, hi) = match op {
        BinOp::Eq => (Some(lit), Some(lit)),
        BinOp::Ge => (Some(lit), None),
        BinOp::Le => (None, Some(lit)),
        BinOp::Gt => match lit.checked_add(1) {
            Some(v) => (Some(v), None),
            None => return, // col > i64::MAX is unsatisfiable; fail open
        },
        BinOp::Lt => match lit.checked_sub(1) {
            Some(v) => (None, Some(v)),
            None => return,
        },
        _ => return,
    };
    if let Some(lo) = lo {
        c.min_key = Some(c.min_key.map_or(lo, |cur| cur.max(lo)));
    }
    if let Some(hi) = hi {
        c.max_key = Some(c.max_key.map_or(hi, |cur| cur.min(hi)));
    }
}

/// Extracts the tag set if `conjunct` is an OR-chain of `tag_col == "str"`
/// equalities, tolerating `Lit(false)` identity terms (query builders seed
/// OR-chains with `false`). Returns `None` when the conjunct has any other
/// shape.
fn tag_set(conjunct: &Expr, tag_col: usize) -> Option<Vec<u64>> {
    let mut tags = Vec::new();
    collect_tag_terms(conjunct, tag_col, &mut tags).then_some(tags)
}

fn collect_tag_terms(expr: &Expr, tag_col: usize, out: &mut Vec<u64>) -> bool {
    match expr {
        Expr::Lit(Value::Bool(false)) => true, // OR identity
        Expr::Bin(BinOp::Or, a, b) => {
            collect_tag_terms(a, tag_col, out) && collect_tag_terms(b, tag_col, out)
        }
        Expr::Bin(BinOp::Eq, a, b) => {
            let tag = match (&**a, &**b) {
                (Expr::Col(i), Expr::Lit(Value::Str(s))) if *i == tag_col => s,
                (Expr::Lit(Value::Str(s)), Expr::Col(i)) if *i == tag_col => s,
                _ => return false,
            };
            out.push(uli_warehouse::tag_hash(tag.as_bytes()));
            true
        }
        _ => false,
    }
}

/// Narrows `acc` to the intersection of tag sets seen so far.
fn intersect_tags(acc: &mut Option<Vec<u64>>, new: Vec<u64>) {
    match acc {
        None => *acc = Some(new),
        Some(cur) => cur.retain(|t| new.contains(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_warehouse::{tag_hash, ZoneMap};

    #[test]
    fn spec_admit_has_filter_semantics() {
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(0).gt(Expr::lit(5i64))],
            width: 2,
        };
        assert!(spec.admit(&vec![Value::Int(9), Value::Null]).unwrap());
        assert!(!spec.admit(&vec![Value::Int(3), Value::Null]).unwrap());
        // Null comparison result never happens for Gt (total), but a pushed
        // predicate yielding Null must drop like FILTER does.
        let null_spec = ScanSpec {
            predicate: vec![Expr::lit(Value::Null)],
            ..ScanSpec::eager(2)
        };
        assert!(!null_spec.admit(&vec![Value::Int(1), Value::Null]).unwrap());
        // Non-boolean predicate values are type errors, like FILTER.
        let bad = ScanSpec {
            predicate: vec![Expr::lit(7i64)],
            ..ScanSpec::eager(2)
        };
        assert!(matches!(
            bad.admit(&vec![Value::Int(1), Value::Null]),
            Err(DataflowError::TypeError { context: "FILTER" })
        ));
    }

    #[test]
    fn admit_evaluates_predicates_in_order() {
        // First predicate drops the row before the second (erroring) one
        // runs — exactly like two chained Filter nodes.
        let spec = ScanSpec {
            predicate: vec![Expr::lit(false), Expr::lit(7i64)],
            ..ScanSpec::eager(1)
        };
        assert!(!spec.admit(&vec![Value::Int(1)]).unwrap());
    }

    #[test]
    fn udf_detection_and_column_collection() {
        use crate::udf::ScalarUdf;
        use std::sync::Arc;
        struct Nop;
        impl ScalarUdf for Nop {
            fn name(&self) -> &'static str {
                "NOP"
            }
            fn eval(&self, _: &[Value]) -> DataflowResult<Value> {
                Ok(Value::Null)
            }
        }
        let plain = Expr::col(1).eq(Expr::lit("x")).and(Expr::col(3).not());
        assert!(!expr_has_udf(&plain));
        let mut cols = Vec::new();
        collect_columns(&plain, &mut cols);
        assert_eq!(cols, vec![1, 3]);
        let with_udf = Expr::udf(Arc::new(Nop), vec![Expr::col(2)]).eq(Expr::lit(1i64));
        assert!(expr_has_udf(&with_udf));
    }

    #[test]
    fn total_boolean_accepts_comparisons_rejects_arithmetic() {
        assert!(total_boolean(&Expr::col(0).eq(Expr::lit("x")), 2));
        assert!(total_boolean(
            &Expr::col(0)
                .lt(Expr::lit(3i64))
                .and(Expr::col(1).ne(Expr::lit(4i64)).not()),
            2
        ));
        assert!(total_boolean(
            &Expr::lit(false).or(Expr::col(1).eq(Expr::lit("y"))),
            2
        ));
        // Arithmetic can type-error; AND over non-booleans can type-error.
        assert!(!total_boolean(&Expr::col(0).add(Expr::lit(1i64)), 2));
        assert!(!total_boolean(&Expr::col(0).and(Expr::col(1)), 2));
        // Out-of-range columns error at eval; not total.
        assert!(!total_boolean(&Expr::col(5).eq(Expr::lit(1i64)), 2));
        // Comparison over a computed operand is total-boolean only for
        // col/lit operands under this conservative analysis.
        assert!(!total_boolean(
            &Expr::col(0).add(Expr::lit(1i64)).gt(Expr::lit(2i64)),
            2
        ));
    }

    #[test]
    fn zone_constraints_extract_key_bounds() {
        let preds = vec![
            Expr::col(5).ge(Expr::lit(100i64)),
            Expr::col(5).le(Expr::lit(200i64)),
        ];
        let p = zone_constraints(&preds, Some(5), None).unwrap();
        assert_eq!((p.min_key, p.max_key), (Some(100), Some(200)));
        // Strict bounds tighten by one.
        let strict = vec![Expr::col(5)
            .gt(Expr::lit(100i64))
            .and(Expr::col(5).lt(Expr::lit(200i64)))];
        let p = zone_constraints(&strict, Some(5), None).unwrap();
        assert_eq!((p.min_key, p.max_key), (Some(101), Some(199)));
        // Mirrored literal-first form.
        let mirrored = vec![Expr::lit(100i64).le(Expr::col(5))];
        let p = zone_constraints(&mirrored, Some(5), None).unwrap();
        assert_eq!(p.min_key, Some(100));
        // Eq pins both bounds.
        let eq = vec![Expr::col(5).eq(Expr::lit(150i64))];
        let p = zone_constraints(&eq, Some(5), None).unwrap();
        assert_eq!((p.min_key, p.max_key), (Some(150), Some(150)));
    }

    #[test]
    fn zone_constraints_extract_tag_or_chains() {
        let pred = Expr::lit(false)
            .or(Expr::col(1).eq(Expr::lit("web:home:x:y:z:click")))
            .or(Expr::col(1).eq(Expr::lit("web:home:x:y:z:view")));
        let p = zone_constraints(&[pred], None, Some(1)).unwrap();
        let tags = p.tags.unwrap();
        assert_eq!(tags.len(), 2);
        assert!(tags.contains(&tag_hash(b"web:home:x:y:z:click")));
        // A conjunct mixing tag tests with anything else yields no tag set.
        let mixed = Expr::col(1)
            .eq(Expr::lit("a"))
            .or(Expr::col(2).eq(Expr::lit("b")));
        assert!(zone_constraints(&[mixed], None, Some(1)).is_none());
    }

    #[test]
    fn zone_constraints_intersect_tag_conjuncts() {
        let a = Expr::col(1)
            .eq(Expr::lit("x"))
            .or(Expr::col(1).eq(Expr::lit("y")));
        let b = Expr::col(1)
            .eq(Expr::lit("y"))
            .or(Expr::col(1).eq(Expr::lit("z")));
        let p = zone_constraints(&[a.and(b)], None, Some(1)).unwrap();
        assert_eq!(p.tags.unwrap(), vec![tag_hash(b"y")]);
    }

    #[test]
    fn zone_constraints_overflow_fails_open() {
        let preds = vec![Expr::col(5).gt(Expr::lit(i64::MAX))];
        assert!(zone_constraints(&preds, Some(5), None).is_none());
        let preds = vec![Expr::col(5).lt(Expr::lit(i64::MIN))];
        assert!(zone_constraints(&preds, Some(5), None).is_none());
    }

    #[test]
    fn derived_pruner_skips_disjoint_zone() {
        let preds = vec![
            Expr::col(5).ge(Expr::lit(1000i64)),
            Expr::lit(false).or(Expr::col(1).eq(Expr::lit("click"))),
        ];
        let p = zone_constraints(&preds, Some(5), Some(1)).unwrap();
        let mut z = ZoneMap::empty();
        z.fold(500, tag_hash(b"click"));
        assert!(!p.keep(Some(&z)), "key range disjoint");
        let mut z2 = ZoneMap::empty();
        z2.fold(1500, tag_hash(b"view"));
        assert_eq!(
            p.keep(Some(&z2)),
            tag_hash(b"view") % 64 == tag_hash(b"click") % 64,
            "kept only on bitmap collision"
        );
        let mut z3 = ZoneMap::empty();
        z3.fold(1500, tag_hash(b"click"));
        assert!(p.keep(Some(&z3)));
    }
}
