//! Logical plans and the fluent builder.
//!
//! The operator set matches the Pig Latin primitives the paper's scripts
//! use: "projection, selection, group, join, etc." (§3). Plans are trees;
//! shuffle-inducing operators (GROUP, JOIN, ORDER, DISTINCT, holistic
//! aggregates) become simulated MapReduce jobs in [`crate::exec`].

use std::sync::Arc;

use uli_warehouse::WhPath;

use crate::expr::Expr;
use crate::loader::{BlockPruner, Loader};
use crate::udf::AggFunc;
use crate::value::Tuple;

/// Sort direction for ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One aggregate in an [`Plan::aggregate`] call.
#[derive(Debug, Clone)]
pub struct Agg {
    /// The function.
    pub func: AggFunc,
    /// Input column (ignored by COUNT).
    pub col: usize,
    /// Output column name.
    pub name: String,
}

impl Agg {
    /// `COUNT(*)`
    pub fn count() -> Agg {
        Agg {
            func: AggFunc::Count,
            col: 0,
            name: "count".into(),
        }
    }

    /// `SUM($col)`
    pub fn sum(col: usize) -> Agg {
        Agg {
            func: AggFunc::Sum,
            col,
            name: "sum".into(),
        }
    }

    /// `MIN($col)`
    pub fn min(col: usize) -> Agg {
        Agg {
            func: AggFunc::Min,
            col,
            name: "min".into(),
        }
    }

    /// `MAX($col)`
    pub fn max(col: usize) -> Agg {
        Agg {
            func: AggFunc::Max,
            col,
            name: "max".into(),
        }
    }

    /// `AVG($col)`
    pub fn avg(col: usize) -> Agg {
        Agg {
            func: AggFunc::Avg,
            col,
            name: "avg".into(),
        }
    }

    /// `COUNT(DISTINCT $col)` — holistic, defeats the combiner.
    pub fn count_distinct(col: usize) -> Agg {
        Agg {
            func: AggFunc::CountDistinct,
            col,
            name: "count_distinct".into(),
        }
    }

    /// `APPROX_COUNT_DISTINCT($col)` — HyperLogLog sketch: fixed 4 KiB of
    /// state per group, algebraic (combiner-friendly), ~1.6% standard error.
    /// The opt-in bounded-memory alternative to [`Agg::count_distinct`].
    pub fn approx_count_distinct(col: usize) -> Agg {
        Agg {
            func: AggFunc::ApproxCountDistinct,
            col,
            name: "approx_count_distinct".into(),
        }
    }

    /// `APPROX_PERCENTILE($col, q)` — log-linear histogram sketch; `q` in
    /// `[0, 1]` (0.5 = median). Never under-reports; over-reports by at
    /// most the ~25% bucket width.
    pub fn approx_percentile(col: usize, q: f64) -> Agg {
        let q_bp = (q.clamp(0.0, 1.0) * 10_000.0).round() as u32;
        Agg {
            func: AggFunc::ApproxPercentile(q_bp),
            col,
            name: format!("approx_p{q_bp}"),
        }
    }

    /// Renames the output column.
    pub fn named(mut self, name: impl Into<String>) -> Agg {
        self.name = name.into();
        self
    }
}

/// Plan node. Public so the executor and external optimizers can walk it.
pub enum PlanNode {
    /// Scan every record file under `dir`.
    Load {
        /// Directory to scan recursively.
        dir: WhPath,
        /// Record parser.
        loader: Arc<dyn Loader>,
        /// Output column names.
        schema: Vec<String>,
        /// Optional index-pushdown hook.
        pruner: Option<Arc<dyn BlockPruner>>,
    },
    /// Inline rows (small dimension tables, tests).
    Values {
        /// Column names.
        schema: Vec<String>,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// Row predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Keep rows where this evaluates to `Bool(true)`.
        predicate: Expr,
    },
    /// FOREACH … GENERATE: projection with expressions.
    Foreach {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns as (name, expression).
        exprs: Vec<(String, Expr)>,
    },
    /// GROUP BY returning (keys…, bag-of-input-tuples).
    GroupBy {
        /// Input plan.
        input: Box<Plan>,
        /// Key columns; empty = GROUP ALL.
        keys: Vec<usize>,
    },
    /// GROUP BY + aggregates (with a map-side combiner when algebraic).
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Key columns; empty = GROUP ALL.
        keys: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<Agg>,
    },
    /// Equi-join (reduce-side).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join keys on the left.
        left_keys: Vec<usize>,
        /// Join keys on the right.
        right_keys: Vec<usize>,
    },
    /// Total sort.
    OrderBy {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys with direction.
        keys: Vec<(usize, SortOrder)>,
    },
    /// Duplicate elimination over whole tuples.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Bag union (schemas must have equal width).
    Union {
        /// Input plans.
        inputs: Vec<Plan>,
    },
    /// First `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row cap.
        n: usize,
    },
}

/// A logical plan with its output schema.
pub struct Plan {
    /// Root node.
    pub node: PlanNode,
    schema: Vec<String>,
}

impl Plan {
    /// LOAD: scan `dir` with `loader`, producing the named columns.
    pub fn load(dir: WhPath, loader: Arc<dyn Loader>, schema: Vec<impl Into<String>>) -> Plan {
        let schema: Vec<String> = schema.into_iter().map(Into::into).collect();
        assert!(
            !schema.is_empty(),
            "load schema must name at least one column"
        );
        Plan {
            node: PlanNode::Load {
                dir,
                loader,
                schema: schema.clone(),
                pruner: None,
            },
            schema,
        }
    }

    /// Inline rows with the given column names.
    pub fn values(schema: Vec<impl Into<String>>, rows: Vec<Tuple>) -> Plan {
        let schema: Vec<String> = schema.into_iter().map(Into::into).collect();
        for row in &rows {
            assert_eq!(row.len(), schema.len(), "row width must match schema");
        }
        Plan {
            node: PlanNode::Values {
                schema: schema.clone(),
                rows,
            },
            schema,
        }
    }

    /// Attaches an index-pushdown pruner to a LOAD plan.
    ///
    /// # Panics
    /// If the plan root is not a LOAD.
    pub fn with_pruner(mut self, pruner: Arc<dyn BlockPruner>) -> Plan {
        match &mut self.node {
            PlanNode::Load { pruner: slot, .. } => *slot = Some(pruner),
            _ => panic!("with_pruner applies only to LOAD plans"),
        }
        self
    }

    /// Output column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// Resolves a column name to its index.
    ///
    /// # Panics
    /// If the name is absent — a plan-authoring bug, akin to a Pig script
    /// referencing a missing alias.
    pub fn col(&self, name: &str) -> usize {
        self.schema
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema {:?}", self.schema))
    }

    fn assert_col(&self, idx: usize) {
        assert!(
            idx < self.schema.len(),
            "column ${idx} out of range for schema {:?}",
            self.schema
        );
    }

    /// FILTER BY `predicate`.
    pub fn filter(self, predicate: Expr) -> Plan {
        let schema = self.schema.clone();
        Plan {
            node: PlanNode::Filter {
                input: Box::new(self),
                predicate,
            },
            schema,
        }
    }

    /// FOREACH … GENERATE the named expressions.
    pub fn foreach(self, exprs: Vec<(impl Into<String>, Expr)>) -> Plan {
        let exprs: Vec<(String, Expr)> = exprs.into_iter().map(|(n, e)| (n.into(), e)).collect();
        assert!(
            !exprs.is_empty(),
            "foreach must generate at least one column"
        );
        let schema = exprs.iter().map(|(n, _)| n.clone()).collect();
        Plan {
            node: PlanNode::Foreach {
                input: Box::new(self),
                exprs,
            },
            schema,
        }
    }

    /// GROUP BY `keys`: output is the key columns plus a `bag` column
    /// holding the full input tuples of the group.
    pub fn group_by(self, keys: Vec<usize>) -> Plan {
        for k in &keys {
            self.assert_col(*k);
        }
        let mut schema: Vec<String> = keys.iter().map(|k| self.schema[*k].clone()).collect();
        schema.push("bag".to_string());
        Plan {
            node: PlanNode::GroupBy {
                input: Box::new(self),
                keys,
            },
            schema,
        }
    }

    /// GROUP ALL: a single group containing every row.
    pub fn group_all(self) -> Plan {
        self.group_by(Vec::new())
    }

    /// GROUP BY `keys` and compute aggregates. With `keys` empty this is the
    /// paper's `group … all` + `SUM`/`COUNT` pattern. GROUP ALL on a
    /// [`Plan::group_all`] result is unnecessary — call this directly.
    pub fn aggregate(self, aggs: Vec<Agg>) -> Plan {
        self.aggregate_by(Vec::new(), aggs)
    }

    /// GROUP BY `keys` with aggregates.
    pub fn aggregate_by(self, keys: Vec<usize>, aggs: Vec<Agg>) -> Plan {
        for k in &keys {
            self.assert_col(*k);
        }
        for a in &aggs {
            if a.func != AggFunc::Count {
                self.assert_col(a.col);
            }
        }
        assert!(!aggs.is_empty(), "aggregate needs at least one function");
        let mut schema: Vec<String> = keys.iter().map(|k| self.schema[*k].clone()).collect();
        schema.extend(aggs.iter().map(|a| a.name.clone()));
        Plan {
            node: PlanNode::Aggregate {
                input: Box::new(self),
                keys,
                aggs,
            },
            schema,
        }
    }

    /// Equi-JOIN with `right` on the given key columns.
    pub fn join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        assert_eq!(left_keys.len(), right_keys.len(), "key arity must match");
        assert!(!left_keys.is_empty(), "join needs at least one key");
        for k in &left_keys {
            self.assert_col(*k);
        }
        for k in &right_keys {
            right.assert_col(*k);
        }
        let mut schema = self.schema.clone();
        schema.extend(right.schema.iter().cloned());
        Plan {
            node: PlanNode::Join {
                left: Box::new(self),
                right: Box::new(right),
                left_keys,
                right_keys,
            },
            schema,
        }
    }

    /// ORDER BY the given keys.
    pub fn order_by(self, keys: Vec<(usize, SortOrder)>) -> Plan {
        for (k, _) in &keys {
            self.assert_col(*k);
        }
        assert!(!keys.is_empty(), "order_by needs at least one key");
        let schema = self.schema.clone();
        Plan {
            node: PlanNode::OrderBy {
                input: Box::new(self),
                keys,
            },
            schema,
        }
    }

    /// DISTINCT over whole tuples.
    pub fn distinct(self) -> Plan {
        let schema = self.schema.clone();
        Plan {
            node: PlanNode::Distinct {
                input: Box::new(self),
            },
            schema,
        }
    }

    /// UNION of this plan with others (equal widths required).
    pub fn union(self, others: Vec<Plan>) -> Plan {
        let schema = self.schema.clone();
        for o in &others {
            assert_eq!(
                o.schema.len(),
                schema.len(),
                "union inputs must have equal width"
            );
        }
        let mut inputs = vec![self];
        inputs.extend(others);
        Plan {
            node: PlanNode::Union { inputs },
            schema,
        }
    }

    /// LIMIT to the first `n` rows.
    pub fn limit(self, n: usize) -> Plan {
        let schema = self.schema.clone();
        Plan {
            node: PlanNode::Limit {
                input: Box::new(self),
                n,
            },
            schema,
        }
    }

    /// Renders the plan tree — Pig's EXPLAIN, with shuffle boundaries
    /// marked (each is one simulated MapReduce job).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let schema = self.schema.join(", ");
        match &self.node {
            PlanNode::Load {
                dir,
                loader,
                pruner,
                ..
            } => {
                let pruned = if pruner.is_some() {
                    " [index-pruned]"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "{indent}LOAD {dir} USING {}{pruned} -> ({schema})",
                    loader.name()
                );
            }
            PlanNode::Values { rows, .. } => {
                let _ = writeln!(out, "{indent}VALUES [{} rows] -> ({schema})", rows.len());
            }
            PlanNode::Filter { input, predicate } => {
                let _ = writeln!(out, "{indent}FILTER BY {predicate:?}");
                input.explain_into(depth + 1, out);
            }
            PlanNode::Foreach { input, exprs } => {
                let gens: Vec<String> =
                    exprs.iter().map(|(n, e)| format!("{e:?} AS {n}")).collect();
                let _ = writeln!(out, "{indent}FOREACH GENERATE {}", gens.join(", "));
                input.explain_into(depth + 1, out);
            }
            PlanNode::GroupBy { input, keys } => {
                let _ = writeln!(out, "{indent}GROUP BY {keys:?} [SHUFFLE] -> ({schema})");
                input.explain_into(depth + 1, out);
            }
            PlanNode::Aggregate { input, keys, aggs } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                let _ = writeln!(
                    out,
                    "{indent}AGGREGATE BY {keys:?} {{{}}} [SHUFFLE+COMBINER] -> ({schema})",
                    names.join(", ")
                );
                input.explain_into(depth + 1, out);
            }
            PlanNode::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let _ = writeln!(
                    out,
                    "{indent}JOIN BY {left_keys:?} = {right_keys:?} [SHUFFLE] -> ({schema})"
                );
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PlanNode::OrderBy { input, keys } => {
                let _ = writeln!(out, "{indent}ORDER BY {keys:?} [SHUFFLE]");
                input.explain_into(depth + 1, out);
            }
            PlanNode::Distinct { input } => {
                let _ = writeln!(out, "{indent}DISTINCT [SHUFFLE+COMBINER]");
                input.explain_into(depth + 1, out);
            }
            PlanNode::Union { inputs } => {
                let _ = writeln!(out, "{indent}UNION [{} inputs]", inputs.len());
                for i in inputs {
                    i.explain_into(depth + 1, out);
                }
            }
            PlanNode::Limit { input, n } => {
                let _ = writeln!(out, "{indent}LIMIT {n}");
                input.explain_into(depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::CsvLoader;
    use crate::value::Value;

    fn base() -> Plan {
        Plan::load(
            WhPath::parse("/x").unwrap(),
            Arc::new(CsvLoader::new(3)),
            vec!["a", "b", "c"],
        )
    }

    #[test]
    fn schemas_propagate() {
        let p = base();
        assert_eq!(p.schema(), ["a", "b", "c"]);
        assert_eq!(p.col("b"), 1);

        let p = base().filter(Expr::col(0).gt(Expr::lit(1i64)));
        assert_eq!(p.schema(), ["a", "b", "c"]);

        let p = base().foreach(vec![("x", Expr::col(2))]);
        assert_eq!(p.schema(), ["x"]);

        let p = base().group_by(vec![0, 2]);
        assert_eq!(p.schema(), ["a", "c", "bag"]);

        let p = base().aggregate_by(vec![1], vec![Agg::count(), Agg::sum(0).named("total")]);
        assert_eq!(p.schema(), ["b", "count", "total"]);

        let q = base().join(base(), vec![0], vec![0]);
        assert_eq!(q.schema(), ["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn explain_renders_the_tree_with_shuffle_markers() {
        let p = base()
            .filter(Expr::col(0).gt(Expr::lit(1i64)))
            .aggregate_by(vec![1], vec![Agg::count()]);
        let text = p.explain();
        assert!(text.contains("AGGREGATE BY [1]"));
        assert!(text.contains("[SHUFFLE+COMBINER]"));
        assert!(text.contains("FILTER BY"));
        assert!(text.contains("LOAD /x USING CsvLoader"));
        // Indentation reflects depth: LOAD is deepest.
        let load_line = text.lines().find(|l| l.contains("LOAD")).unwrap();
        assert!(load_line.starts_with("    "));
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        base().col("zz");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_group_key_panics() {
        base().group_by(vec![7]);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn union_width_mismatch_panics() {
        let narrow = Plan::values(vec!["x"], vec![vec![Value::Int(1)]]);
        base().union(vec![narrow]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn values_width_checked() {
        Plan::values(vec!["x", "y"], vec![vec![Value::Int(1)]]);
    }
}
