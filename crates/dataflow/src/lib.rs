//! A Pig-like dataflow engine over the warehouse, executed as simulated
//! MapReduce jobs with an explicit cost model.
//!
//! The paper's analytics platform runs Pig scripts that compile to Hadoop
//! jobs (§3). Its performance arguments are phrased in that execution
//! model's currency: "these jobs routinely spawned tens of thousands of
//! mappers", "Hadoop tasks have relatively high startup costs", "the early
//! projection and filtering keeps the amount of data shuffling … to a
//! reasonable amount" (§4). This crate reproduces the model:
//!
//! * [`value`]: dynamically-typed tuples (atoms, tuples, bags, maps) in the
//!   spirit of Pig Latin's data model;
//! * [`expr`]: projection/selection expressions and scalar UDFs;
//! * [`udf`]: the UDF traits plus built-in algebraic aggregates;
//! * [`plan`]: the logical operators — LOAD, FILTER, FOREACH…GENERATE,
//!   GROUP, JOIN, ORDER, DISTINCT, UNION, LIMIT — with a fluent builder;
//! * [`loader`]: Pig-style `LoadFunc`s that parse warehouse records into
//!   tuples, with an optional block-pruning hook for index pushdown;
//! * [`exec`]: the engine: every shuffle boundary becomes one simulated
//!   MapReduce job; map-task counts derive from input blocks, shuffle
//!   volumes from serialized tuple sizes, and a [`exec::CostModel`] converts
//!   the counts into estimated cluster time.
//!
//! # Example: the paper's event-counting script shape
//!
//! ```
//! use uli_dataflow::prelude::*;
//! use uli_warehouse::{Warehouse, WhPath};
//! use std::sync::Arc;
//!
//! let wh = Warehouse::new();
//! let dir = WhPath::parse("/logs/demo").unwrap();
//! let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
//! for i in 0..100i64 {
//!     w.append_record(format!("{},click", i).as_bytes());
//! }
//! w.finish().unwrap();
//!
//! let plan = Plan::load(dir, Arc::new(CsvLoader::new(2)), vec!["id", "action"])
//!     .filter(Expr::col(1).eq(Expr::lit("click")))
//!     .aggregate(vec![Agg::count()]); // Pig's `group … all` + COUNT
//! let engine = Engine::new(wh);
//! let result = engine.run(&plan).unwrap();
//! assert_eq!(result.rows[0][0], Value::Int(100));
//! assert!(result.stats.map_tasks >= 1);
//! ```

pub mod batch;
pub mod error;
pub mod exec;
pub mod expr;
pub mod loader;
pub mod plan;
pub mod pushdown;
pub mod script;
pub mod sketch;
pub(crate) mod spill;
pub mod udf;
pub mod value;
pub mod wire;

pub use batch::{scan_group, ColumnBatch, ColumnarCodec, TextCodec};
pub use error::{DataflowError, DataflowResult};
pub use exec::{CostModel, Engine, JobStats, QueryResult};
pub use expr::Expr;
pub use loader::{BlockPruner, CsvLoader, Loader};
pub use plan::{Agg, Plan, SortOrder};
pub use pushdown::{Pushdown, ScanOutcome, ScanSpec, ZoneColumn};
pub use script::{ScriptError, ScriptOutput, ScriptRunner};
pub use udf::{AggFunc, ScalarUdf};
pub use uli_warehouse::{Parallelism, ScanPool};
pub use value::{Tuple, Value};

/// Convenient glob import for query-building code.
pub mod prelude {
    pub use crate::exec::{CostModel, Engine, JobStats, QueryResult};
    pub use crate::expr::Expr;
    pub use crate::loader::{BlockPruner, CsvLoader, Loader};
    pub use crate::plan::{Agg, Plan, SortOrder};
    pub use crate::pushdown::{Pushdown, ScanOutcome, ScanSpec, ZoneColumn};
    pub use crate::script::{ScriptError, ScriptOutput, ScriptRunner};
    pub use crate::udf::{AggFunc, ScalarUdf};
    pub use crate::value::{Tuple, Value};
    pub use uli_warehouse::{Parallelism, ScanPool};
}
