//! Bounded-memory aggregate sketches: HyperLogLog distinct counts,
//! log-linear-bucket percentiles, Count-Min frequency estimates, and a
//! Count-Min-backed TopK heavy-hitter tracker.
//!
//! Exact DISTINCT and exact percentiles are *holistic* — their state grows
//! with the number of distinct inputs, which is exactly the O(day)
//! structure the bounded-memory work bans. The sketches here are
//! fixed-size (HLL 4 KiB, percentiles 2 KiB, Count-Min 16 KiB), and all
//! merge **deterministically**: the merge is commutative, associative, and
//! idempotent-friendly (register max / bucket add / counter add), so
//! map-side partials combined in any grouping produce the same final
//! state as a single serial pass. That determinism is what lets the
//! approximate plan nodes ride the existing parallel-combine machinery
//! without violating the engine's byte-identical-across-workers contract,
//! and what lets the streaming layer (`uli-stream`) converge shard states
//! in arbitrary merge order.
//!
//! The percentile sketch reuses `uli-obs`'s log-linear bucket layout
//! ([`uli_obs::metric::bucket_index`]): 256 buckets, exact below 16, four
//! linear sub-buckets per octave, ≤ 25% relative error per bucket.

use std::collections::BTreeSet;

use crate::value::Value;

/// Precision: 2^12 = 4096 registers, ~1.6% relative standard error.
const HLL_P: u32 = 12;
/// Number of HLL registers.
pub const HLL_REGISTERS: usize = 1 << HLL_P;

/// FNV-1a 64-bit over a byte slice, with a murmur3-style finalizer. Plain
/// FNV's high bits barely move when inputs differ only in trailing bytes
/// (e.g. small consecutive ints), and HLL takes its register index from the
/// top bits — the finalizer's shift-xor-multiply rounds avalanche every
/// input bit across the whole word. Deterministic and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a with a caller-chosen offset basis, for families of independent
/// hash functions (one per Count-Min row). Same finalizer as [`fnv1a`].
fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A HyperLogLog distinct-count sketch (p = 12, 4096 one-byte registers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    registers: Vec<u8>,
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    /// An empty sketch.
    pub fn new() -> Hll {
        Hll {
            registers: vec![0u8; HLL_REGISTERS],
        }
    }

    /// Folds in one value. Values hash via their wire encoding, so any two
    /// equal `Value`s (including across clones) collide by construction.
    pub fn insert(&mut self, v: &Value) {
        let mut bytes = Vec::with_capacity(16);
        crate::wire::encode_value(v, &mut bytes);
        self.insert_hash(fnv1a(&bytes));
    }

    /// Folds in a pre-computed 64-bit hash.
    pub fn insert_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - HLL_P)) as usize;
        let rest = hash << HLL_P;
        // Rank: position of the first 1-bit in the remaining 52 bits.
        let rank = (rest.leading_zeros().min(64 - HLL_P) + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merges another sketch in (register-wise max): commutative,
    /// associative, and exactly equal to having inserted both input
    /// streams into one sketch.
    pub fn merge(&mut self, other: &Hll) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// The cardinality estimate, with linear-counting correction for the
    /// small range.
    pub fn estimate(&self) -> u64 {
        let m = HLL_REGISTERS as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting dominates in the small range.
            (m * (m / zeros as f64).ln()).round() as u64
        } else {
            raw.round() as u64
        }
    }

    /// Fixed-size serialization (the raw registers) for spill run files.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.registers.clone()
    }

    /// Inverse of [`Hll::to_bytes`]; `None` when the length is wrong.
    pub fn from_bytes(bytes: &[u8]) -> Option<Hll> {
        if bytes.len() != HLL_REGISTERS {
            return None;
        }
        Some(Hll {
            registers: bytes.to_vec(),
        })
    }

    /// Deterministic memory cost charged against the operator budget.
    pub fn cost_bytes() -> u64 {
        HLL_REGISTERS as u64
    }
}

/// A fixed-size percentile sketch over the `uli-obs` log-linear buckets.
///
/// Samples are taken as non-negative integers (doubles round, negatives
/// clamp to zero — the intended domain is latencies/sizes/counts). The
/// quantile estimate is the **upper bound** of the bucket holding the
/// target rank, so it never under-reports and over-reports by at most the
/// bucket width (≤ 25% relative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PercentileSketch {
    counts: Vec<u64>,
    total: u64,
}

impl Default for PercentileSketch {
    fn default() -> Self {
        PercentileSketch::new()
    }
}

impl PercentileSketch {
    /// An empty sketch.
    pub fn new() -> PercentileSketch {
        PercentileSketch {
            counts: vec![0u64; uli_obs::metric::BUCKETS as usize],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.counts[uli_obs::metric::bucket_index(sample) as usize] += 1;
        self.total += 1;
    }

    /// Records a `Value` (ints/doubles; doubles round, negatives clamp).
    pub fn record_value(&mut self, v: &Value) {
        if let Some(d) = v.as_double() {
            self.record(d.round().max(0.0) as u64);
        }
    }

    /// Merges another sketch in (element-wise add): commutative and
    /// associative.
    pub fn merge(&mut self, other: &PercentileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The value at quantile `q_bp` (basis points: 5000 = median, 9900 =
    /// p99), or `None` when empty. Returns the containing bucket's upper
    /// bound.
    pub fn quantile_bp(&self, q_bp: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        // Target rank, 1-based: ceil(q * total), at least 1.
        let rank = ((self.total as u128 * q_bp as u128).div_ceil(10_000) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(uli_obs::metric::bucket_bounds(i as u32).1);
            }
        }
        Some(uli_obs::metric::bucket_bounds(uli_obs::metric::BUCKETS - 1).1)
    }

    /// Serialization for spill run files: total then each bucket, all
    /// big-endian u64.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (1 + self.counts.len()));
        out.extend_from_slice(&self.total.to_be_bytes());
        for &c in &self.counts {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Inverse of [`PercentileSketch::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<PercentileSketch> {
        let want = 8 * (1 + uli_obs::metric::BUCKETS as usize);
        if bytes.len() != want {
            return None;
        }
        let total = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let counts: Vec<u64> = bytes[8..]
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
            .collect();
        Some(PercentileSketch { counts, total })
    }

    /// Deterministic memory cost charged against the operator budget.
    pub fn cost_bytes() -> u64 {
        8 * (1 + uli_obs::metric::BUCKETS as u64)
    }
}

/// Count-Min width: 512 counters per row. ε = e / width ≈ 0.53% of the
/// stream total is the additive over-count bound per row.
pub const CM_WIDTH: usize = 512;
/// Count-Min depth: 4 independent rows. δ = e^-depth ≈ 1.8% is the
/// probability the ε bound is exceeded.
pub const CM_DEPTH: usize = 4;

/// Per-row FNV offset bases (arbitrary distinct odd constants).
const CM_SEEDS: [u64; CM_DEPTH] = [
    0xcbf2_9ce4_8422_2325,
    0x9e37_79b9_7f4a_7c15,
    0xa076_1d64_78bd_642f,
    0xe703_7ed1_a0b4_28db,
];

/// A Count-Min frequency sketch: `depth` rows of `width` counters, each
/// key hashed once per row, point query = min over rows.
///
/// Guarantees (the classic Cormode–Muthukrishnan bounds):
/// * `estimate(k)` **never under-reports**: it is ≥ the true count of `k`.
/// * With probability ≥ 1 − e^-depth (≈ 98.2%), the over-count is at most
///   (e / width) · total ≈ 0.0053 · total.
///
/// The merge is an element-wise counter add plus a total add — a
/// commutative, associative monoid with the empty sketch as identity, so
/// shard partials combine in any order to the byte-identical state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMin {
    rows: Vec<u64>, // CM_DEPTH * CM_WIDTH, row-major
    total: u64,
}

impl Default for CountMin {
    fn default() -> Self {
        CountMin::new()
    }
}

impl CountMin {
    /// An empty sketch.
    pub fn new() -> CountMin {
        CountMin {
            rows: vec![0u64; CM_DEPTH * CM_WIDTH],
            total: 0,
        }
    }

    fn slot(row: usize, key: &[u8]) -> usize {
        row * CM_WIDTH + (fnv1a_seeded(CM_SEEDS[row], key) as usize & (CM_WIDTH - 1))
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: &[u8], count: u64) {
        for row in 0..CM_DEPTH {
            self.rows[CountMin::slot(row, key)] += count;
        }
        self.total += count;
    }

    /// Adds one occurrence of `key`.
    pub fn insert(&mut self, key: &[u8]) {
        self.add(key, 1);
    }

    /// Point estimate for `key`: min over the rows. Never below the true
    /// count; above it by at most ε·total with probability ≥ 1 − δ.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        (0..CM_DEPTH)
            .map(|row| self.rows[CountMin::slot(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Total weight added (exact — kept alongside the counters).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The additive error bound `ε·total` that point estimates respect
    /// with probability ≥ 1 − e^-depth.
    pub fn error_bound(&self) -> u64 {
        (std::f64::consts::E / CM_WIDTH as f64 * self.total as f64).ceil() as u64
    }

    /// Merges another sketch in (element-wise add): commutative,
    /// associative, identity = empty, and exactly equal to having added
    /// both input streams into one sketch.
    pub fn merge(&mut self, other: &CountMin) {
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Serialization: total then each counter, all big-endian u64.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (1 + self.rows.len()));
        out.extend_from_slice(&self.total.to_be_bytes());
        for &c in &self.rows {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Inverse of [`CountMin::to_bytes`]; `None` when the length is wrong.
    pub fn from_bytes(bytes: &[u8]) -> Option<CountMin> {
        if bytes.len() != 8 * (1 + CM_DEPTH * CM_WIDTH) {
            return None;
        }
        let total = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let rows: Vec<u64> = bytes[8..]
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
            .collect();
        Some(CountMin { rows, total })
    }

    /// Deterministic memory cost charged against the operator budget.
    pub fn cost_bytes() -> u64 {
        8 * (1 + (CM_DEPTH * CM_WIDTH) as u64)
    }
}

/// Candidate-set capacity for [`TopK`]. While the number of distinct keys
/// stays at or below this (true of the bounded event-name domain TopK is
/// built for — the default workload universe is ~370 names), merges are
/// *exactly* order-invariant; past it, a deterministic prune keeps the
/// sketch bounded.
pub const TOPK_CANDIDATES: usize = 512;

/// A Count-Min-backed heavy-hitter tracker (the Algebird `TopCMS` idiom):
/// a [`CountMin`] for frequencies plus a bounded candidate key set, with
/// `top()` reading the k keys with the highest estimates.
///
/// Merge is the Count-Min merge plus candidate-set union, then a
/// deterministic prune (keep the [`TOPK_CANDIDATES`] best by
/// (estimate desc, key asc)). While distinct keys ≤ the candidate
/// capacity the union never prunes, so the merge is a commutative,
/// associative monoid with order-invariant byte-identical state — the
/// regime the monoid-law tests pin. Ranked counts inherit the Count-Min
/// bound: never under the true count, over by ≤ ε·total w.h.p.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopK {
    k: usize,
    cms: CountMin,
    candidates: BTreeSet<Vec<u8>>,
}

impl TopK {
    /// An empty tracker reporting the top `k` keys.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            cms: CountMin::new(),
            candidates: BTreeSet::new(),
        }
    }

    /// How many keys `top()` reports.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The backing frequency sketch.
    pub fn cms(&self) -> &CountMin {
        &self.cms
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: &[u8], count: u64) {
        self.cms.add(key, count);
        if !self.candidates.contains(key) {
            self.candidates.insert(key.to_vec());
            self.prune();
        }
    }

    /// Adds one occurrence of `key`.
    pub fn insert(&mut self, key: &[u8]) {
        self.add(key, 1);
    }

    /// Merges another tracker in (same `k` expected; the larger wins so
    /// the merge stays commutative).
    pub fn merge(&mut self, other: &TopK) {
        self.k = self.k.max(other.k);
        self.cms.merge(&other.cms);
        for key in &other.candidates {
            self.candidates.insert(key.clone());
        }
        self.prune();
    }

    /// Deterministic prune: keep the best `TOPK_CANDIDATES` candidates by
    /// (estimate desc, key asc). No-op while the set fits.
    fn prune(&mut self) {
        if self.candidates.len() <= TOPK_CANDIDATES {
            return;
        }
        let mut ranked: Vec<(u64, Vec<u8>)> = self
            .candidates
            .iter()
            .map(|key| (self.cms.estimate(key), key.clone()))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        ranked.truncate(TOPK_CANDIDATES);
        self.candidates = ranked.into_iter().map(|(_, key)| key).collect();
    }

    /// The top `k` (key, estimated count) pairs, highest first, ties
    /// broken by ascending key so the listing is deterministic.
    pub fn top(&self) -> Vec<(Vec<u8>, u64)> {
        let mut ranked: Vec<(Vec<u8>, u64)> = self
            .candidates
            .iter()
            .map(|key| (key.clone(), self.cms.estimate(key)))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(self.k);
        ranked
    }

    /// Serialization: k, CMS block, candidate count, then each candidate
    /// length-prefixed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.k as u64).to_be_bytes());
        let cms = self.cms.to_bytes();
        out.extend_from_slice(&cms);
        out.extend_from_slice(&(self.candidates.len() as u64).to_be_bytes());
        for key in &self.candidates {
            out.extend_from_slice(&(key.len() as u32).to_be_bytes());
            out.extend_from_slice(key);
        }
        out
    }

    /// Inverse of [`TopK::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<TopK> {
        let cms_len = 8 * (1 + CM_DEPTH * CM_WIDTH);
        if bytes.len() < 8 + cms_len + 8 {
            return None;
        }
        let k = u64::from_be_bytes(bytes[..8].try_into().unwrap()) as usize;
        let cms = CountMin::from_bytes(&bytes[8..8 + cms_len])?;
        let mut at = 8 + cms_len;
        let n = u64::from_be_bytes(bytes[at..at + 8].try_into().ok()?) as usize;
        at += 8;
        let mut candidates = BTreeSet::new();
        for _ in 0..n {
            if bytes.len() < at + 4 {
                return None;
            }
            let len = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            if bytes.len() < at + len {
                return None;
            }
            candidates.insert(bytes[at..at + len].to_vec());
            at += len;
        }
        if at != bytes.len() {
            return None;
        }
        Some(TopK { k, cms, candidates })
    }

    /// Memory cost: the CMS plus the bounded candidate slots (each
    /// charged one cache line's worth for the key bytes).
    pub fn cost_bytes() -> u64 {
        CountMin::cost_bytes() + (TOPK_CANDIDATES as u64) * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hll_small_counts_are_near_exact() {
        let mut h = Hll::new();
        for i in 0..100i64 {
            h.insert(&Value::Int(i));
            h.insert(&Value::Int(i)); // duplicates must not count
        }
        let est = h.estimate();
        assert!((95..=105).contains(&est), "estimate {est} for 100 distinct");
    }

    #[test]
    fn hll_error_is_bounded_at_10k_distinct() {
        let mut h = Hll::new();
        for i in 0..10_000i64 {
            h.insert(&Value::Int(i * 7919));
        }
        let est = h.estimate() as f64;
        let err = (est - 10_000.0).abs() / 10_000.0;
        assert!(
            err < 0.05,
            "relative error {err:.3} out of bounds (est {est})"
        );
    }

    #[test]
    fn hll_merge_equals_single_stream() {
        let mut all = Hll::new();
        let mut left = Hll::new();
        let mut right = Hll::new();
        for i in 0..5_000i64 {
            let v = Value::Int(i % 3_000); // overlap between halves
            all.insert(&v);
            if i % 2 == 0 {
                left.insert(&v);
            } else {
                right.insert(&v);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, all, "merge must equal single-stream state");
        assert_eq!(rl, all, "merge must be commutative");
    }

    #[test]
    fn hll_roundtrips_bytes() {
        let mut h = Hll::new();
        for i in 0..500i64 {
            h.insert(&Value::Int(i));
        }
        assert_eq!(Hll::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(Hll::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn percentile_upper_bound_never_under_reports() {
        let mut s = PercentileSketch::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 13 % 4096).collect();
        for &v in &samples {
            s.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q_bp in [5000u32, 9500, 9900] {
            let rank = ((sorted.len() as u64 * q_bp as u64).div_ceil(10_000)).max(1) as usize;
            let exact = sorted[rank - 1];
            let est = s.quantile_bp(q_bp).unwrap();
            assert!(est >= exact, "q{q_bp}: est {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * 1.25 + 1.0,
                "q{q_bp}: est {est} above 25% bound of exact {exact}"
            );
        }
    }

    #[test]
    fn percentile_merge_matches_single_sketch() {
        let mut all = PercentileSketch::new();
        let mut a = PercentileSketch::new();
        let mut b = PercentileSketch::new();
        for i in 0..2_000u64 {
            let v = (i * 31) % 10_000;
            all.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn percentile_roundtrips_bytes_and_handles_empty() {
        let empty = PercentileSketch::new();
        assert_eq!(empty.quantile_bp(5000), None);
        let mut s = PercentileSketch::new();
        s.record(42);
        s.record(7);
        assert_eq!(PercentileSketch::from_bytes(&s.to_bytes()).unwrap(), s);
        assert!(PercentileSketch::from_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn countmin_never_under_reports_and_respects_bound() {
        let mut cm = CountMin::new();
        let mut truth = std::collections::BTreeMap::new();
        for i in 0..20_000u64 {
            // Zipf-ish: low keys are hot.
            let key = format!("key-{}", (i * i + i) % 97 % (1 + i % 40));
            cm.insert(key.as_bytes());
            *truth.entry(key).or_insert(0u64) += 1;
        }
        assert_eq!(cm.total(), 20_000);
        let bound = cm.error_bound();
        let mut violations = 0usize;
        for (key, &count) in &truth {
            let est = cm.estimate(key.as_bytes());
            assert!(est >= count, "{key}: est {est} < true {count}");
            if est > count + bound {
                violations += 1;
            }
        }
        // δ ≈ 1.8% per key; allow a small absolute slack over the keyset.
        assert!(
            violations <= truth.len() / 10,
            "{violations}/{} keys above the ε bound",
            truth.len()
        );
    }

    #[test]
    fn countmin_merge_equals_single_stream() {
        let mut all = CountMin::new();
        let mut a = CountMin::new();
        let mut b = CountMin::new();
        for i in 0..5_000u64 {
            let key = format!("k{}", i % 137);
            all.insert(key.as_bytes());
            if i % 2 == 0 {
                a.insert(key.as_bytes());
            } else {
                b.insert(key.as_bytes());
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn countmin_roundtrips_bytes() {
        let mut cm = CountMin::new();
        for i in 0..100u64 {
            cm.add(format!("x{i}").as_bytes(), i + 1);
        }
        assert_eq!(CountMin::from_bytes(&cm.to_bytes()).unwrap(), cm);
        assert!(CountMin::from_bytes(&[0u8; 9]).is_none());
    }

    #[test]
    fn topk_finds_heavy_hitters_exactly_on_skewed_stream() {
        let mut t = TopK::new(3);
        // 3 heavy keys far above the noise floor, 50 light keys.
        for _ in 0..5_000 {
            t.insert(b"hot-a");
        }
        for _ in 0..3_000 {
            t.insert(b"hot-b");
        }
        for _ in 0..2_000 {
            t.insert(b"hot-c");
        }
        for i in 0..50u64 {
            for _ in 0..10 {
                t.insert(format!("cold-{i}").as_bytes());
            }
        }
        let top = t.top();
        let names: Vec<&[u8]> = top.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(names, vec![&b"hot-a"[..], &b"hot-b"[..], &b"hot-c"[..]]);
        let bound = t.cms().error_bound();
        for ((_, est), truth) in top.iter().zip([5_000u64, 3_000, 2_000]) {
            assert!(*est >= truth && *est <= truth + bound);
        }
    }

    #[test]
    fn topk_merge_is_order_invariant_within_capacity() {
        let build = |range: std::ops::Range<u64>| {
            let mut t = TopK::new(5);
            for i in range {
                t.add(format!("name-{}", i % 60).as_bytes(), 1 + i % 7);
            }
            t
        };
        let (a, b, c) = (build(0..400), build(400..900), build(900..1500));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        let mut ba = b.clone();
        ba.merge(&a);
        c_ba.merge(&ba);
        assert_eq!(ab_c, c_ba, "merge must be associative + commutative");
        let mut whole = build(0..1500);
        whole.k = 5;
        assert_eq!(ab_c, whole, "merged shards must equal the single pass");
    }

    #[test]
    fn topk_prunes_deterministically_past_capacity() {
        let mut t = TopK::new(4);
        for _ in 0..100 {
            t.insert(b"keeper");
        }
        for i in 0..(TOPK_CANDIDATES as u64 + 200) {
            t.insert(format!("flood-{i}").as_bytes());
        }
        assert!(t.candidates.len() <= TOPK_CANDIDATES);
        assert_eq!(t.top()[0].0, b"keeper".to_vec());
    }

    #[test]
    fn topk_roundtrips_bytes() {
        let mut t = TopK::new(7);
        for i in 0..40u64 {
            t.add(format!("ev{i}").as_bytes(), i);
        }
        assert_eq!(TopK::from_bytes(&t.to_bytes()).unwrap(), t);
        assert!(TopK::from_bytes(&[1, 2, 3]).is_none());
    }
}
