//! Bounded-memory aggregate sketches: HyperLogLog distinct counts and
//! log-linear-bucket percentiles.
//!
//! Exact DISTINCT and exact percentiles are *holistic* — their state grows
//! with the number of distinct inputs, which is exactly the O(day)
//! structure the bounded-memory work bans. Both sketches here are
//! fixed-size (4 KiB and 2 KiB respectively), and both merge
//! **deterministically**: the merge is commutative, associative, and
//! idempotent-friendly (register max / bucket add), so map-side partials
//! combined in any grouping produce the same final state as a single
//! serial pass. That determinism is what lets the approximate plan nodes
//! ride the existing parallel-combine machinery without violating the
//! engine's byte-identical-across-workers contract.
//!
//! The percentile sketch reuses `uli-obs`'s log-linear bucket layout
//! ([`uli_obs::metric::bucket_index`]): 256 buckets, exact below 16, four
//! linear sub-buckets per octave, ≤ 25% relative error per bucket.

use crate::value::Value;

/// Precision: 2^12 = 4096 registers, ~1.6% relative standard error.
const HLL_P: u32 = 12;
/// Number of HLL registers.
pub const HLL_REGISTERS: usize = 1 << HLL_P;

/// FNV-1a 64-bit over a byte slice, with a murmur3-style finalizer. Plain
/// FNV's high bits barely move when inputs differ only in trailing bytes
/// (e.g. small consecutive ints), and HLL takes its register index from the
/// top bits — the finalizer's shift-xor-multiply rounds avalanche every
/// input bit across the whole word. Deterministic and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A HyperLogLog distinct-count sketch (p = 12, 4096 one-byte registers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    registers: Vec<u8>,
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    /// An empty sketch.
    pub fn new() -> Hll {
        Hll {
            registers: vec![0u8; HLL_REGISTERS],
        }
    }

    /// Folds in one value. Values hash via their wire encoding, so any two
    /// equal `Value`s (including across clones) collide by construction.
    pub fn insert(&mut self, v: &Value) {
        let mut bytes = Vec::with_capacity(16);
        crate::wire::encode_value(v, &mut bytes);
        self.insert_hash(fnv1a(&bytes));
    }

    /// Folds in a pre-computed 64-bit hash.
    pub fn insert_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - HLL_P)) as usize;
        let rest = hash << HLL_P;
        // Rank: position of the first 1-bit in the remaining 52 bits.
        let rank = (rest.leading_zeros().min(64 - HLL_P) + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merges another sketch in (register-wise max): commutative,
    /// associative, and exactly equal to having inserted both input
    /// streams into one sketch.
    pub fn merge(&mut self, other: &Hll) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// The cardinality estimate, with linear-counting correction for the
    /// small range.
    pub fn estimate(&self) -> u64 {
        let m = HLL_REGISTERS as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting dominates in the small range.
            (m * (m / zeros as f64).ln()).round() as u64
        } else {
            raw.round() as u64
        }
    }

    /// Fixed-size serialization (the raw registers) for spill run files.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.registers.clone()
    }

    /// Inverse of [`Hll::to_bytes`]; `None` when the length is wrong.
    pub fn from_bytes(bytes: &[u8]) -> Option<Hll> {
        if bytes.len() != HLL_REGISTERS {
            return None;
        }
        Some(Hll {
            registers: bytes.to_vec(),
        })
    }

    /// Deterministic memory cost charged against the operator budget.
    pub fn cost_bytes() -> u64 {
        HLL_REGISTERS as u64
    }
}

/// A fixed-size percentile sketch over the `uli-obs` log-linear buckets.
///
/// Samples are taken as non-negative integers (doubles round, negatives
/// clamp to zero — the intended domain is latencies/sizes/counts). The
/// quantile estimate is the **upper bound** of the bucket holding the
/// target rank, so it never under-reports and over-reports by at most the
/// bucket width (≤ 25% relative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PercentileSketch {
    counts: Vec<u64>,
    total: u64,
}

impl Default for PercentileSketch {
    fn default() -> Self {
        PercentileSketch::new()
    }
}

impl PercentileSketch {
    /// An empty sketch.
    pub fn new() -> PercentileSketch {
        PercentileSketch {
            counts: vec![0u64; uli_obs::metric::BUCKETS as usize],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.counts[uli_obs::metric::bucket_index(sample) as usize] += 1;
        self.total += 1;
    }

    /// Records a `Value` (ints/doubles; doubles round, negatives clamp).
    pub fn record_value(&mut self, v: &Value) {
        if let Some(d) = v.as_double() {
            self.record(d.round().max(0.0) as u64);
        }
    }

    /// Merges another sketch in (element-wise add): commutative and
    /// associative.
    pub fn merge(&mut self, other: &PercentileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The value at quantile `q_bp` (basis points: 5000 = median, 9900 =
    /// p99), or `None` when empty. Returns the containing bucket's upper
    /// bound.
    pub fn quantile_bp(&self, q_bp: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        // Target rank, 1-based: ceil(q * total), at least 1.
        let rank = ((self.total as u128 * q_bp as u128).div_ceil(10_000) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(uli_obs::metric::bucket_bounds(i as u32).1);
            }
        }
        Some(uli_obs::metric::bucket_bounds(uli_obs::metric::BUCKETS - 1).1)
    }

    /// Serialization for spill run files: total then each bucket, all
    /// big-endian u64.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (1 + self.counts.len()));
        out.extend_from_slice(&self.total.to_be_bytes());
        for &c in &self.counts {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Inverse of [`PercentileSketch::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<PercentileSketch> {
        let want = 8 * (1 + uli_obs::metric::BUCKETS as usize);
        if bytes.len() != want {
            return None;
        }
        let total = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let counts: Vec<u64> = bytes[8..]
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
            .collect();
        Some(PercentileSketch { counts, total })
    }

    /// Deterministic memory cost charged against the operator budget.
    pub fn cost_bytes() -> u64 {
        8 * (1 + uli_obs::metric::BUCKETS as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hll_small_counts_are_near_exact() {
        let mut h = Hll::new();
        for i in 0..100i64 {
            h.insert(&Value::Int(i));
            h.insert(&Value::Int(i)); // duplicates must not count
        }
        let est = h.estimate();
        assert!((95..=105).contains(&est), "estimate {est} for 100 distinct");
    }

    #[test]
    fn hll_error_is_bounded_at_10k_distinct() {
        let mut h = Hll::new();
        for i in 0..10_000i64 {
            h.insert(&Value::Int(i * 7919));
        }
        let est = h.estimate() as f64;
        let err = (est - 10_000.0).abs() / 10_000.0;
        assert!(
            err < 0.05,
            "relative error {err:.3} out of bounds (est {est})"
        );
    }

    #[test]
    fn hll_merge_equals_single_stream() {
        let mut all = Hll::new();
        let mut left = Hll::new();
        let mut right = Hll::new();
        for i in 0..5_000i64 {
            let v = Value::Int(i % 3_000); // overlap between halves
            all.insert(&v);
            if i % 2 == 0 {
                left.insert(&v);
            } else {
                right.insert(&v);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, all, "merge must equal single-stream state");
        assert_eq!(rl, all, "merge must be commutative");
    }

    #[test]
    fn hll_roundtrips_bytes() {
        let mut h = Hll::new();
        for i in 0..500i64 {
            h.insert(&Value::Int(i));
        }
        assert_eq!(Hll::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(Hll::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn percentile_upper_bound_never_under_reports() {
        let mut s = PercentileSketch::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 13 % 4096).collect();
        for &v in &samples {
            s.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q_bp in [5000u32, 9500, 9900] {
            let rank = ((sorted.len() as u64 * q_bp as u64).div_ceil(10_000)).max(1) as usize;
            let exact = sorted[rank - 1];
            let est = s.quantile_bp(q_bp).unwrap();
            assert!(est >= exact, "q{q_bp}: est {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * 1.25 + 1.0,
                "q{q_bp}: est {est} above 25% bound of exact {exact}"
            );
        }
    }

    #[test]
    fn percentile_merge_matches_single_sketch() {
        let mut all = PercentileSketch::new();
        let mut a = PercentileSketch::new();
        let mut b = PercentileSketch::new();
        for i in 0..2_000u64 {
            let v = (i * 31) % 10_000;
            all.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
    }

    #[test]
    fn percentile_roundtrips_bytes_and_handles_empty() {
        let empty = PercentileSketch::new();
        assert_eq!(empty.quantile_bp(5000), None);
        let mut s = PercentileSketch::new();
        s.record(42);
        s.record(7);
        assert_eq!(PercentileSketch::from_bytes(&s.to_bytes()).unwrap(), s);
        assert!(PercentileSketch::from_bytes(&[1, 2, 3]).is_none());
    }
}
