//! Loaders: Pig-style `LoadFunc`s parsing warehouse records into tuples.
//!
//! "Elephant Bird … automatically generates Hadoop record readers and
//! writers for arbitrary Protocol Buffer and Thrift messages" (§3). Here a
//! [`Loader`] fills that role: each domain crate provides one (client event
//! loader, session sequence loader, legacy format loaders).
//!
//! [`BlockPruner`] is the Elephant Twin integration point (§6): indexes
//! "integrate with Hadoop at the level of InputFormats", so a pruner decides
//! per file which blocks a scan may skip *before* decompression.

use crate::batch::{ColumnarCodec, TextCodec};
use crate::error::{DataflowError, DataflowResult};
use crate::pushdown::{ScanOutcome, ScanSpec, ZoneColumn};
use crate::value::{Tuple, Value};
use uli_warehouse::{Warehouse, WhPath};

/// Parses raw warehouse records into tuples.
pub trait Loader: Send + Sync {
    /// Name for diagnostics.
    fn name(&self) -> &'static str;

    /// Parses one record. `Ok(None)` skips the record silently (e.g. a
    /// marker or corrupt line the loader chooses to tolerate).
    fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>>;

    /// True when this loader honors [`ScanSpec::projection`] by decoding
    /// lazily. The default eager loader ignores projections, so the planner
    /// must not mask columns for it.
    fn supports_projection(&self) -> bool {
        false
    }

    /// Maps a load-schema column to the zone-map dimension the writer
    /// annotated it with, if any. Only loaders whose records are written
    /// through the annotated path return `Some`.
    fn zone_column(&self, _col: usize) -> Option<ZoneColumn> {
        None
    }

    /// The codec for this loader's columnar warehouse layout, when one
    /// exists. The executor sniffs each file in a load directory and scans
    /// columnar files through [`ColumnBatch`](crate::batch::ColumnBatch)
    /// with this codec; `None` (the default) makes it treat them as opaque
    /// row files, whose undecodable records the loader then skips.
    fn columnar(&self) -> Option<&dyn ColumnarCodec> {
        None
    }

    /// Scans one record under a [`ScanSpec`]: parse (lazily, if supported),
    /// evaluate pushed predicates, and report what was skipped. The default
    /// implementation parses eagerly and applies the predicates afterwards —
    /// byte-identical to the unpushed path for any loader.
    fn scan(&self, record: &[u8], spec: &ScanSpec) -> DataflowResult<ScanOutcome> {
        let Some(tuple) = self.parse(record)? else {
            return Ok(ScanOutcome::skipped());
        };
        if tuple.len() != spec.width {
            return Err(DataflowError::MalformedRecord {
                loader: self.name(),
            });
        }
        if !spec.admit(&tuple)? {
            return Ok(ScanOutcome {
                tuple: None,
                fields_skipped: 0,
                skipped_by_predicate: true,
            });
        }
        Ok(ScanOutcome {
            tuple: Some(tuple),
            fields_skipped: 0,
            skipped_by_predicate: false,
        })
    }
}

/// Decides which blocks of a file a scan must read.
pub trait BlockPruner: Send + Sync {
    /// Returns a keep-mask of length `block_count`, or `None` to read all.
    fn prune(&self, warehouse: &Warehouse, file: &WhPath, block_count: usize) -> Option<Vec<bool>>;
}

/// A simple comma-separated loader used by tests, examples, and docs.
///
/// Fields parse as `Int` when possible, else `Double`, else `Str`. Records
/// with the wrong number of fields are skipped (a real Pig loader would
/// likewise drop malformed rows into a sink).
#[derive(Debug, Clone)]
pub struct CsvLoader {
    fields: usize,
    codec: TextCodec,
}

impl CsvLoader {
    /// A loader expecting `fields` comma-separated columns.
    pub fn new(fields: usize) -> Self {
        assert!(fields > 0);
        CsvLoader {
            fields,
            codec: TextCodec::new(fields),
        }
    }
}

impl Loader for CsvLoader {
    fn name(&self) -> &'static str {
        "CsvLoader"
    }

    fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>> {
        let Ok(text) = std::str::from_utf8(record) else {
            return Ok(None);
        };
        let parts: Vec<&str> = text.split(',').collect();
        if parts.len() != self.fields {
            return Ok(None);
        }
        let tuple = parts
            .into_iter()
            .map(|p| {
                if let Ok(i) = p.parse::<i64>() {
                    Value::Int(i)
                } else if let Ok(d) = p.parse::<f64>() {
                    Value::Double(d)
                } else {
                    Value::str(p)
                }
            })
            .collect();
        Ok(Some(tuple))
    }

    fn columnar(&self) -> Option<&dyn ColumnarCodec> {
        Some(&self.codec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_parses_types() {
        let l = CsvLoader::new(3);
        let t = l.parse(b"42,3.5,hello").unwrap().unwrap();
        assert_eq!(
            t,
            vec![Value::Int(42), Value::Double(3.5), Value::str("hello")]
        );
    }

    #[test]
    fn csv_skips_malformed() {
        let l = CsvLoader::new(2);
        assert_eq!(l.parse(b"only_one_field").unwrap(), None);
        assert_eq!(l.parse(b"a,b,c").unwrap(), None);
        assert_eq!(l.parse(&[0xff, 0xfe]).unwrap(), None);
    }
}
